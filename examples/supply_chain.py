"""Supply-chain provenance — range queries and phantom protection.

A chaincode tracks assets and their custody history. Custody records are
stored under ordered composite keys (``hist_<asset>_<seq>``) so an audit
is a *range scan* over the asset's history prefix. Fabric records range
scans with their exact results; a concurrent custody transfer that
inserts a new history record is a **phantom** for an in-flight audit and
invalidates it — serializability holds even for scans.

This example runs the chaincode on the real pipeline with two orgs and
demonstrates:

1. registering assets and transferring custody (point reads/writes),
2. an audit (range scan) committing when nothing interferes, and
3. the same audit losing to a concurrent transfer in the same block —
   the phantom is detected at validation.

Run with::

    python examples/supply_chain.py
"""

from repro import Chaincode, FabricConfig, TxOutcome
from repro.crypto.identity import IdentityRegistry
from repro.errors import ChaincodeError
from repro.fabric.chaincode import ChaincodeRegistry
from repro.fabric.metrics import PipelineMetrics
from repro.fabric.peer import Peer
from repro.fabric.policy import AllOrgs
from repro.fabric.transaction import Proposal, Transaction
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.sim.engine import Environment


def asset_key(asset_id):
    return f"asset_{asset_id}"


def history_key(asset_id, sequence):
    return f"hist_{asset_id}_{sequence:06d}"


def history_prefix(asset_id):
    return f"hist_{asset_id}_"


class SupplyChain(Chaincode):
    """Asset registry with append-only custody history."""

    name = "supplychain"

    def invoke(self, stub, function, args):
        if function == "register":
            asset_id, owner = args
            if stub.get_state(asset_key(asset_id)) is not None:
                raise ChaincodeError(f"asset {asset_id} already registered")
            stub.put_state(asset_key(asset_id), {"owner": owner, "transfers": 0})
            stub.put_state(history_key(asset_id, 0), f"registered->{owner}")
            return owner
        if function == "transfer":
            asset_id, new_owner = args
            record = stub.get_state(asset_key(asset_id))
            if record is None:
                raise ChaincodeError(f"asset {asset_id} not registered")
            sequence = record["transfers"] + 1
            stub.put_state(
                asset_key(asset_id),
                {"owner": new_owner, "transfers": sequence},
            )
            stub.put_state(
                history_key(asset_id, sequence),
                f"{record['owner']}->{new_owner}",
            )
            return new_owner
        if function == "audit":
            (asset_id,) = args
            history = stub.get_state_by_range(
                history_prefix(asset_id), history_prefix(asset_id) + "\x7f"
            )
            return [entry for _key, entry in history]
        raise ChaincodeError(f"unknown function {function!r}")

    def operation_count(self, function, args):
        return 4


def build_network():
    env = Environment()
    registry = IdentityRegistry()
    config = FabricConfig(num_orgs=2, peers_per_org=1)
    policy = AllOrgs("OrgA", "OrgB")
    chaincodes = ChaincodeRegistry()
    chaincodes.install(SupplyChain())
    metrics = PipelineMetrics()
    outcomes = {}
    peers = []
    for org in ("OrgA", "OrgB"):
        identity = registry.register(f"peer0.{org}", org)
        peer = Peer(env, identity, config, registry)
        peer.join_channel("ch0", chaincodes, policy, initial_state={})
        peers.append(peer)
    peers[0].attach_reference_hooks(
        lambda tx_id, outcome: outcomes.__setitem__(tx_id, outcome), metrics
    )
    return env, peers, outcomes


def submit(env, peers, tx_id, function, args):
    proposal = Proposal(
        tx_id, "client", "ch0", "supplychain", function, args,
        submitted_at=env.now,
    )
    handles = [peer.endorse("ch0", proposal) for peer in peers]
    env.run()
    endorsements = [handle.value.endorsement for handle in handles]
    return Transaction(tx_id, proposal, endorsements[0].rwset, endorsements)


def commit_block(env, peers, block_id, transactions):
    tip = peers[0].channels["ch0"].ledger.tip_hash
    block = Block.create(block_id, tip, transactions)
    for peer in peers:
        peer.deliver_block("ch0", block)
    env.run()
    return block


def main():
    env, peers, outcomes = build_network()

    # Block 1: register two crates, transfer one.
    register_a = submit(env, peers, "reg-A", "register", ("crateA", "Farm"))
    register_b = submit(env, peers, "reg-B", "register", ("crateB", "Farm"))
    commit_block(env, peers, 1, [register_a, register_b])
    transfer_1 = submit(env, peers, "xfer-1", "transfer", ("crateA", "Carrier"))
    commit_block(env, peers, 2, [transfer_1])
    print("custody so far:",
          peers[0].channels["ch0"].state.get_value(asset_key("crateA")))

    # Block 3: a clean audit commits.
    audit_ok = submit(env, peers, "audit-1", "audit", ("crateA",))
    commit_block(env, peers, 3, [audit_ok])
    print(f"audit-1 -> {outcomes['audit-1'].value}; observed history:",
          [key for key, _ in audit_ok.rwset.range_reads[0].results])

    # Block 4: an audit races a transfer in the same block. The transfer
    # inserts hist_crateA_000002 — a phantom for the audit's scan.
    audit_racing = submit(env, peers, "audit-2", "audit", ("crateA",))
    transfer_2 = submit(env, peers, "xfer-2", "transfer", ("crateA", "Shop"))
    commit_block(env, peers, 4, [transfer_2, audit_racing])
    print(f"xfer-2  -> {outcomes['xfer-2'].value}")
    print(f"audit-2 -> {outcomes['audit-2'].value}  "
          "(phantom: the scan missed the new custody record)")
    assert outcomes["audit-2"] is TxOutcome.ABORT_MVCC

    # Note: Fabric++'s reordering works on *keys*, and a phantom insert
    # touches a key the scan never observed — so the orderer cannot
    # rescue audit-2 by reordering (had the transfer *updated* an
    # observed history record instead, it would). The client simply
    # resubmits; the fresh audit sees the full history and commits.
    audit_retry = submit(env, peers, "audit-3", "audit", ("crateA",))
    commit_block(env, peers, 5, [audit_retry])
    print(f"audit-3 (resubmitted) -> {outcomes['audit-3'].value}; history:",
          [key for key, _ in audit_retry.rwset.range_reads[0].results])
    assert outcomes["audit-3"] is TxOutcome.COMMITTED


if __name__ == "__main__":
    main()
