"""Algorithm 1, step by step, on the paper's worked example (Section 5.1.1).

Reproduces Tables 3-4 and Figures 3-5: six transactions T0..T5 over keys
K0..K9, their conflict graph, the strongly connected subgraphs, the three
cycles, the greedy aborts (T0 and T2), and the final serializable schedule
T5 => T1 => T3 => T4.

Run with::

    python examples/reordering_walkthrough.py
"""

from repro.core.conflict_graph import build_conflict_graph
from repro.core.reorder import reorder
from repro.graphalgo import simple_cycles, strongly_connected_components
from repro.testing import count_valid_in_order, paper_table3_rwsets


def main():
    block = paper_table3_rwsets()

    print("Table 3 — read/write sets:")
    for index, rwset in enumerate(block):
        reads = ",".join(sorted(rwset.reads)) or "-"
        writes = ",".join(sorted(rwset.writes)) or "-"
        print(f"  T{index}: reads {{{reads}}}  writes {{{writes}}}")

    graph = build_conflict_graph(block)
    print("\nStep 1 — conflict graph edges (Ti -> Tj: Ti writes a key Tj reads):")
    for source, target in sorted(graph.edges()):
        print(f"  T{source} -> T{target}")

    print("\nStep 2 — strongly connected subgraphs (Figure 4):")
    for component in strongly_connected_components(graph):
        print(f"  {{{', '.join(f'T{n}' for n in sorted(component))}}}")

    print("\n          cycles within the subgraphs:")
    for component in strongly_connected_components(graph):
        if len(component) < 2:
            continue
        for cycle in simple_cycles(graph.subgraph(component)):
            arrows = " -> ".join(f"T{n}" for n in cycle)
            print(f"  {arrows} -> T{cycle[0]}")

    result = reorder(block)
    print("\nSteps 3+4 — greedy cycle breaking aborts:",
          ", ".join(f"T{i}" for i in result.aborted))

    schedule = " => ".join(f"T{i}" for i in result.schedule)
    print(f"\nStep 5 — final serializable schedule: {schedule}")
    assert result.schedule == [5, 1, 3, 4], "should match the paper exactly"

    arrival_valid = count_valid_in_order(block, range(len(block)))
    reordered_valid = count_valid_in_order(block, result.schedule)
    print(f"\nwithin-block validation: arrival order commits {arrival_valid}/6, "
          f"reordered schedule commits {reordered_valid}/6 "
          f"(plus {len(result.aborted)} early-aborted instead of wasted)")


if __name__ == "__main__":
    main()
