"""Bottleneck analysis: observe where the pipeline saturates.

Attaches a sampler to a running network and reports CPU occupancy and
queue build-up across peers, the orderer, and the validators — first for
vanilla Fabric, then for Fabric++. This shows the paper's Figure 1
claim *from the inside*: the endorsers' CPUs (cryptography) and the
validator pipeline carry the load, while transaction logic is negligible;
and it shows how Fabric++'s early aborts relieve the validation stage.

Run with::

    python examples/bottleneck_analysis.py
"""

from repro import CustomWorkload, CustomWorkloadParams, FabricConfig, FabricNetwork
from repro.bench.charts import sparkline
from repro.bench.report import format_table
from repro.sim.monitor import Sampler, attach_network_probes

DURATION = 3.0


def analyse(label, config):
    workload = CustomWorkload(
        CustomWorkloadParams(
            num_accounts=10_000,
            reads_writes=8,
            prob_hot_read=0.40,
            prob_hot_write=0.10,
            hot_set_fraction=0.01,
        ),
        seed=23,
    )
    network = FabricNetwork(config, workload)
    sampler = Sampler(network.env, interval=0.05)
    attach_network_probes(sampler, network)
    sampler.start()
    metrics = network.run(duration=DURATION)

    print(f"\n=== {label} ===")
    print(f"successful tps: {metrics.successful_tps():.1f}   "
          f"failed tps: {metrics.failed_tps():.1f}")
    print(format_table(sampler.summary()[:6], title="hottest probes (avg/peak)"))
    reference = network.reference_peer.name
    print(f"\n{reference} CPU busy over time: "
          f"{sparkline(sampler.series(f'{reference}.cpu_busy'))}")
    print(f"orderer pending batch:      "
          f"{sparkline(sampler.series('orderer.ch0.batch'))}")
    timeseries = metrics.throughput_timeseries(bucket_seconds=0.5)
    print(f"successful tps (0.5s buckets): "
          f"{sparkline([b['successful_tps'] for b in timeseries])}")


def main():
    analyse("Vanilla Fabric", FabricConfig())
    analyse("Fabric++", FabricConfig().with_fabric_plus_plus())


if __name__ == "__main__":
    main()
