"""Asset transfer between two organizations — the paper's Appendix A story.

Implements the money-transfer smart contract from the running example
(BalA -= amount, BalB += amount), endorsed by one peer of each org, and
walks three transactions through the pipeline:

- T7: an honest transfer that commits;
- T8: a *malicious* transaction whose client swapped in a forged write
  set — caught by the endorsement-policy/signature check;
- T9: a transfer that simulated against stale balances — caught by the
  serializability conflict check.

Run with::

    python examples/asset_transfer.py
"""

from repro import Chaincode, FabricConfig, TxOutcome
from repro.crypto.identity import IdentityRegistry
from repro.fabric.chaincode import ChaincodeRegistry
from repro.fabric.metrics import PipelineMetrics
from repro.fabric.peer import Peer
from repro.fabric.policy import AllOrgs
from repro.fabric.transaction import Proposal, Transaction
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.sim.engine import Environment


class MoneyTransfer(Chaincode):
    """The Appendix A smart contract."""

    name = "transfer"

    def invoke(self, stub, function, args):
        source, destination, amount = args
        source_balance = stub.get_state(source)
        destination_balance = stub.get_state(destination)
        stub.put_state(source, source_balance - amount)
        stub.put_state(destination, destination_balance + amount)

    def operation_count(self, function, args):
        return 4


def build_network():
    env = Environment()
    registry = IdentityRegistry()
    config = FabricConfig(num_orgs=2, peers_per_org=1)
    policy = AllOrgs("OrgA", "OrgB")
    chaincodes = ChaincodeRegistry()
    chaincodes.install(MoneyTransfer())
    metrics = PipelineMetrics()
    outcomes = {}

    peers = []
    for org in ("OrgA", "OrgB"):
        identity = registry.register(f"peer0.{org}", org)
        peer = Peer(env, identity, config, registry)
        peer.join_channel(
            "ch0", chaincodes, policy, initial_state={"BalA": 100, "BalB": 50}
        )
        peers.append(peer)
    peers[0].attach_reference_hooks(
        lambda tx_id, outcome: outcomes.__setitem__(tx_id, outcome), metrics
    )
    return env, peers, outcomes


def endorse(env, peers, proposal):
    handles = [peer.endorse("ch0", proposal) for peer in peers]
    env.run()
    replies = [handle.value for handle in handles]
    endorsements = [reply.endorsement for reply in replies]
    return Transaction(
        tx_id=proposal.proposal_id,
        proposal=proposal,
        rwset=endorsements[0].rwset,
        endorsements=endorsements,
    )


def proposal(env, tx_id, amount):
    return Proposal(
        tx_id, "client1", "ch0", "transfer", "move",
        ("BalA", "BalB", amount), submitted_at=env.now,
    )


def main():
    env, peers, outcomes = build_network()
    reference_state = peers[0].channels["ch0"].state
    print(f"initial state: BalA={reference_state.get_value('BalA')}, "
          f"BalB={reference_state.get_value('BalB')}")

    # T7: honest transfer of 30.
    t7 = endorse(env, peers, proposal(env, "T7", 30))
    print(f"\nT7 simulated: reads={dict(t7.rwset.reads)} "
          f"writes={t7.rwset.writes}")

    # T8: the client packs a forged write set (Appendix A.3.1).
    t8 = endorse(env, peers, proposal(env, "T8", 70))
    forged = t8.rwset.copy()
    forged.record_write("BalA", 100)  # "keep my balance, thanks"
    t8.rwset = forged
    print(f"T8 forged write set: {t8.rwset.writes} "
          "(signatures still cover the honest one)")

    # T9: simulates against the same initial state as T7; by the time it
    # validates, T7 has already moved the balances (Appendix A.3.2).
    t9 = endorse(env, peers, proposal(env, "T9", 100))
    print(f"T9 simulated (stale): writes={t9.rwset.writes}")

    # Ordering: one block containing all three, T7 first.
    block = Block.create(1, GENESIS_HASH, [t7, t8, t9])
    for peer in peers:
        peer.deliver_block("ch0", block)
    env.run()

    print("\nvalidation outcomes:")
    for tx_id in ("T7", "T8", "T9"):
        print(f"  {tx_id}: {outcomes[tx_id].value}")
    assert outcomes["T7"] is TxOutcome.COMMITTED
    assert outcomes["T8"] is TxOutcome.ABORT_POLICY
    assert outcomes["T9"] is TxOutcome.ABORT_MVCC

    print(f"\nfinal state: BalA={reference_state.get_value('BalA')}, "
          f"BalB={reference_state.get_value('BalB')}")
    ledger = peers[0].channels["ch0"].ledger
    print(f"ledger height: {ledger.height}, chain intact: {ledger.verify_chain()}")
    print("the block keeps ALL three transactions, flagged:",
          {tx_id: block.is_valid(tx_id) for tx_id in ("T7", "T8", "T9")})


if __name__ == "__main__":
    main()
