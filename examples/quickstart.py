"""Quickstart: run vanilla Fabric and Fabric++ side by side on Smallbank.

Builds the paper's network topology (two organizations with two peers
each, one ordering service, four clients), fires the Smallbank workload
under moderate skew for a few simulated seconds, and prints the headline
comparison: successful/failed throughput and commit latency.

Run with::

    python examples/quickstart.py
"""

from repro import (
    FabricConfig,
    FabricNetwork,
    SmallbankParams,
    SmallbankWorkload,
)
from repro.bench.charts import sparkline

DURATION = 3.0  # simulated seconds


def run_system(label, config):
    workload = SmallbankWorkload(
        SmallbankParams(num_users=10_000, prob_write=0.95, s_value=1.4),
        seed=7,
    )
    network = FabricNetwork(config, workload)
    metrics = network.run(duration=DURATION)
    latency = metrics.latency()
    phases = metrics.phase_breakdown()
    trend = [
        bucket["successful_tps"]
        for bucket in metrics.throughput_timeseries(bucket_seconds=0.25)
    ]
    print(f"\n=== {label} ===")
    print(f"  fired proposals : {metrics.fired}")
    print(f"  successful tps  : {metrics.successful_tps():8.1f}   "
          f"trend {sparkline(trend)}")
    print(f"  failed tps      : {metrics.failed_tps():8.1f}")
    print(f"  avg latency     : {latency.average * 1000:8.1f} ms "
          f"(p95 {latency.p95 * 1000:.0f} ms)")
    print(f"  phase breakdown : endorse {phases['endorse'] * 1000:.1f} ms | "
          f"order {phases['order'] * 1000:.1f} ms | "
          f"validate {phases['validate'] * 1000:.1f} ms")
    print(f"  blocks committed: {metrics.blocks_committed}")
    outcome_counts = {
        outcome.value: count
        for outcome, count in metrics.outcomes.items()
        if count
    }
    print(f"  outcome mix     : {outcome_counts}")
    return metrics


def main():
    vanilla = FabricConfig()
    fabricpp = vanilla.with_fabric_plus_plus()

    fabric_metrics = run_system("Vanilla Fabric 1.2", vanilla)
    fabricpp_metrics = run_system("Fabric++ (reordering + early abort)", fabricpp)

    gain = fabricpp_metrics.successful_tps() / max(
        fabric_metrics.successful_tps(), 1e-9
    )
    print(f"\nFabric++ successful-throughput improvement: {gain:.2f}x")


if __name__ == "__main__":
    main()
