"""Hot-account contention study — a miniature of the paper's Figure 9.

Sweeps the probability of hitting a small hot account set (the paper's
HR knob) on the custom workload and shows how vanilla Fabric's successful
throughput collapses with contention while Fabric++ degrades gracefully.

Run with::

    python examples/hot_account_contention.py
"""

from repro import (
    CustomWorkload,
    CustomWorkloadParams,
    FabricConfig,
    FabricNetwork,
)
from repro.bench.report import format_series

DURATION = 3.0
HOT_READ_PROBABILITIES = [0.05, 0.20, 0.40, 0.60]


def run(config, hot_read_probability):
    workload = CustomWorkload(
        CustomWorkloadParams(
            num_accounts=10_000,
            reads_writes=8,
            prob_hot_read=hot_read_probability,
            prob_hot_write=0.10,
            hot_set_fraction=0.01,
        ),
        seed=11,
    )
    return FabricNetwork(config, workload).run(duration=DURATION)


def main():
    series = {"Fabric": [], "Fabric++": []}
    aborted = {"Fabric": [], "Fabric++": []}
    for hot_read in HOT_READ_PROBABILITIES:
        for label, config in (
            ("Fabric", FabricConfig()),
            ("Fabric++", FabricConfig().with_fabric_plus_plus()),
        ):
            metrics = run(config, hot_read)
            series[label].append(metrics.successful_tps())
            aborted[label].append(metrics.failed_tps())

    print(
        format_series(
            "HR", HOT_READ_PROBABILITIES, series,
            title="successful transactions per second vs hot-read probability",
        )
    )
    print()
    print(
        format_series(
            "HR", HOT_READ_PROBABILITIES, aborted,
            title="failed transactions per second",
        )
    )
    worst = HOT_READ_PROBABILITIES.index(max(HOT_READ_PROBABILITIES))
    gain = series["Fabric++"][worst] / max(series["Fabric"][worst], 1e-9)
    print(f"\nat HR={HOT_READ_PROBABILITIES[worst]:.0%}, "
          f"Fabric++ commits {gain:.1f}x more transactions per second")


if __name__ == "__main__":
    main()
