"""Setup shim: lets `pip install -e .` work without network access.

With no [build-system] table in pyproject.toml, pip falls back to the
legacy setup.py path and skips build isolation (which would try to
download setuptools). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
