"""Ablation — Fabric++'s unique-keys batch-cutting criterion (§5.1.2).

The reordering run time is driven by the conflict-graph work over a
block's unique keys; Fabric++ therefore cuts a batch early when it
touches too many distinct keys. This ablation streams the same
transaction sequence through batch cutters with different
``max_unique_keys`` bounds, reorders every resulting block, and reports
blocks produced, worst-case reorder time, and total commits.

Expected shape: tighter key bounds produce more, smaller blocks with a
far lower worst-case reorder time. In this offline replay (no latency
feedback) the smaller blocks also commit at least as much — conflict
density grows with block size — so the bound is close to free; in the
live pipeline its value is keeping the orderer's latency predictable.
"""

from _bench_utils import bench_map

from repro.bench.report import format_table
from repro.core.batch_cutter import BatchCutConfig, BatchCutter, CutReason
from repro.core.reorder import reorder
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Proposal, Transaction
from repro.ledger.state_db import Version
from repro.sim.distributions import Rng
from repro.testing import count_valid_in_order

STREAM_LENGTH = 2048
KEY_BOUNDS = [256, 1024, 4096, None]  # None == criterion disabled


def transaction_stream(seed=5, n_keys=4000, rw=4):
    rng = Rng(seed)
    version = Version(1, 0)
    stream = []
    for index in range(STREAM_LENGTH):
        rwset = ReadWriteSet()
        for _ in range(rw):
            rwset.record_read(f"k{rng.randint(0, n_keys - 1)}", version)
        for _ in range(rw):
            rwset.record_write(f"k{rng.randint(0, n_keys - 1)}", 1)
        proposal = Proposal(f"t{index}", "client", "ch0", "cc", "f", ())
        stream.append(Transaction(f"t{index}", proposal, rwset, []))
    return stream


def measure_bound(bound):
    # The stream is deterministic (seed=5), so each worker rebuilds it
    # instead of pickling 2048 Transaction objects across the fork.
    stream = transaction_stream()
    cutter = BatchCutter(
        BatchCutConfig(max_transactions=1024, max_unique_keys=bound),
        track_unique_keys=bound is not None,
    )
    blocks = []
    for position, tx in enumerate(stream):
        reason = cutter.add(tx, now=float(position))
        if reason is not None:
            blocks.append(cutter.cut(reason))
    if len(cutter):
        blocks.append(cutter.cut(CutReason.FLUSH))

    committed = 0
    worst_time = 0.0
    for block in blocks:
        rwsets = [tx.rwset for tx in block]
        result = reorder(rwsets, max_cycles=1000)
        committed += count_valid_in_order(rwsets, result.schedule)
        worst_time = max(worst_time, result.elapsed_seconds)
    return {
        "max_unique_keys": bound if bound is not None else "off",
        "blocks": len(blocks),
        "avg_block": round(STREAM_LENGTH / len(blocks), 1),
        "committed": committed,
        "worst_reorder_ms": round(worst_time * 1000, 1),
    }


def run_ablation():
    return bench_map(measure_bound, KEY_BOUNDS, label="unique-keys")


def test_ablation_unique_keys_cut(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: unique-keys batch cutting"))
    # Tighter bounds -> more blocks.
    blocks = [row["blocks"] for row in rows]
    assert blocks == sorted(blocks, reverse=True)
    # Tightest bound keeps the worst-case reorder time lowest.
    assert rows[0]["worst_reorder_ms"] <= rows[-1]["worst_reorder_ms"]
    # Commit counts stay in the same ballpark, and tighter bounds do
    # not lose commits in the offline replay.
    committed = [row["committed"] for row in rows]
    assert min(committed) > 0.75 * max(committed)
    assert rows[0]["committed"] >= rows[-1]["committed"]


if __name__ == "__main__":
    print(format_table(run_ablation(), title="unique-keys ablation"))
