"""Table 8 — the Hyperledger Caliper run: latency and throughput.

Caliper cannot sustain the main experiments' firing rates, so the paper
runs 150 proposals/s per client (600 total) with block size 512 on the
custom workload (N=10000, RW=4, HR=40%, HW=10%, HSS=1%).

Expected shape: Fabric++'s average latency is roughly half of Fabric's
and its successful throughput clearly higher (paper: 0.47 s -> 0.28 s,
188 -> 299 TPS).
"""

from _bench_utils import bench_sweep, custom_ref, paper_config

from repro.bench.caliper import caliper_spec, report_from_result
from repro.bench.report import format_table


def run_table8():
    specs = [
        caliper_spec(
            config,
            custom_ref(rw=4),
            duration=8.0,
            rate_per_client=150.0,
            block_size=512,
            label=label,
        )
        for label, config in (
            ("Fabric", paper_config().with_vanilla()),
            ("Fabric++", paper_config().with_fabric_plus_plus()),
        )
    ]
    return {
        result.label: report_from_result(result)
        for result in bench_sweep(specs).values()
    }


def test_tab08_caliper(benchmark):
    reports = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    fabric, fabricpp = reports["Fabric"], reports["Fabric++"]
    rows = []
    for metric_index, (name, _) in enumerate(fabric.rows()):
        rows.append(
            {
                "Metric": name,
                "Fabric": fabric.rows()[metric_index][1],
                "Fabric++": fabricpp.rows()[metric_index][1],
            }
        )
    print()
    print(format_table(rows, title="Table 8: Caliper latency & throughput"))
    assert fabricpp.avg_latency < fabric.avg_latency
    assert fabricpp.successful_tps > fabric.successful_tps


if __name__ == "__main__":
    run_table8()
