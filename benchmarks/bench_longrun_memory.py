"""Long-horizon memory benchmark: peak memory and TPS versus horizon.

Default metrics keep one list entry per transaction and the ledger keeps
every block, so memory grows linearly with the simulated horizon. With
``streaming_metrics`` on and checkpoint-time pruning, the run holds a
bounded aggregate (reservoir + histogram) and a bounded block suffix —
peak memory should stay near-flat as the horizon doubles and doubles
again, while committed TPS stays in the same band.

For each system (vanilla Fabric, Fabric++), each horizon multiple, and
each mode (``lists`` = defaults, ``streaming`` = streaming metrics +
checkpointed pruning) the benchmark records the ``tracemalloc`` peak and
the committed TPS, prints the grid, and asserts bounded growth: the
streaming mode's peak at the longest horizon must stay within
``GROWTH_LIMIT`` of its shortest-horizon peak even as the horizon grows
``max(HORIZON_MULTIPLES)``-fold.

Environment: ``REPRO_BENCH_DURATION`` scales the base horizon,
``REPRO_BENCH_FULL=1`` extends the horizon ladder, and
``REPRO_BENCH_ARTIFACT`` (or ``--json PATH``) writes the grid as JSON
for CI artifact upload.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tracemalloc
from dataclasses import replace

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from _bench_utils import smallbank_ref  # noqa: E402

from repro.bench.harness import run_experiment  # noqa: E402
from repro.bench.spec import ExperimentSpec  # noqa: E402
from repro.checkpoint import CheckpointOptions, run_with_checkpoints  # noqa: E402
from repro.core.batch_cutter import BatchCutConfig  # noqa: E402
from repro.fabric.config import FabricConfig  # noqa: E402

#: Base simulated horizon in seconds; the ladder multiplies this.
BASE_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "2.0"))

#: Horizon ladder, as multiples of the base duration.
HORIZON_MULTIPLES = (
    (1, 2, 4, 8) if os.environ.get("REPRO_BENCH_FULL") == "1" else (1, 2, 4)
)

#: Streaming-mode peak at the longest horizon must stay within this
#: factor of its shortest-horizon peak (the horizon itself grows
#: ``max(HORIZON_MULTIPLES)``-fold, so linear growth blows well past it).
GROWTH_LIMIT = 2.0


def build_spec(system: str, streaming: bool, duration: float) -> ExperimentSpec:
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=150.0,
        streaming_metrics=streaming,
        seed=17,
    )
    config = (
        config.with_fabric_plus_plus()
        if system == "fabric++"
        else config.with_vanilla()
    )
    workload = smallbank_ref(users=500, s_value=1.0, seed=4)
    return ExperimentSpec(
        config=config, workload=workload, duration=duration, drain=2.0
    )


def measure(system: str, mode: str, duration: float) -> dict:
    """One grid point: run under tracemalloc, report peak + TPS."""
    streaming = mode == "streaming"
    spec = build_spec(system, streaming, duration)
    gc.collect()
    tracemalloc.start()
    try:
        if streaming:
            # Prune at every checkpoint so the ledger suffix is bounded
            # too — the full long-horizon configuration.
            result, _network, _checkpointer = run_with_checkpoints(
                spec, CheckpointOptions(every=max(0.5, duration / 8), prune=True)
            )
        else:
            result = run_experiment(spec)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "system": system,
        "mode": mode,
        "duration": duration,
        "peak_mb": round(peak / 1e6, 3),
        "committed": result.metrics.successful,
        "committed_tps": round(result.metrics.successful_tps(), 1),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_ARTIFACT", ""),
        help="write the result grid as JSON to this path",
    )
    args = parser.parse_args()

    rows = []
    for system in ("fabric", "fabric++"):
        for mode in ("lists", "streaming"):
            for multiple in HORIZON_MULTIPLES:
                row = measure(system, mode, BASE_DURATION * multiple)
                rows.append(row)
                print(
                    f"  {row['system']:<9} {row['mode']:<10} "
                    f"horizon {row['duration']:>6.1f}s  "
                    f"peak {row['peak_mb']:>8.2f} MB  "
                    f"{row['committed_tps']:>7.1f} committed tps"
                )

    failures = []
    for system in ("fabric", "fabric++"):
        streaming_rows = [
            row
            for row in rows
            if row["system"] == system and row["mode"] == "streaming"
        ]
        first, last = streaming_rows[0], streaming_rows[-1]
        growth = last["peak_mb"] / first["peak_mb"]
        horizon_growth = last["duration"] / first["duration"]
        print(
            f"{system}: streaming peak grew {growth:.2f}x while the "
            f"horizon grew {horizon_growth:.0f}x "
            f"(limit {GROWTH_LIMIT:.1f}x)"
        )
        if growth > GROWTH_LIMIT:
            failures.append(
                f"{system}: streaming-mode peak memory grew {growth:.2f}x "
                f"over a {horizon_growth:.0f}x horizon "
                f"(limit {GROWTH_LIMIT:.1f}x) — memory is not bounded"
            )

    report = {
        "base_duration": BASE_DURATION,
        "horizon_multiples": list(HORIZON_MULTIPLES),
        "growth_limit": GROWTH_LIMIT,
        "rows": rows,
        "passed": not failures,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if failures:
        raise SystemExit("; ".join(failures))
    print("bounded-growth check: OK")


if __name__ == "__main__":
    main()
