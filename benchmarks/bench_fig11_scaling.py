"""Figure 11 — scaling the number of channels and clients per channel.

(a) 1..8 channels with 2 clients each: throughput rises while peers have
spare CPU, then degrades as channels compete for resources (paper: rises
to 4 channels, drops at 8; failed TPS climbs steeply).

(b) 1..8 clients in a single channel: vanilla Fabric rises gently;
Fabric++ peaks early (paper: at 2 clients) and falls back toward Fabric
at 8 clients as client contention lengthens the pipeline and staleness
grows.
"""

from _bench_utils import bench_sweep, both_specs, custom_ref, paper_config

from repro.bench.report import format_series

CHANNEL_COUNTS = [1, 2, 4, 8]
CLIENT_COUNTS = [1, 2, 4, 8]


def _run_family(configs_and_params):
    specs = []
    for config, params in configs_and_params:
        specs += both_specs(config, custom_ref(), params=params)
    series = {"Fabric": [], "Fabric++": []}
    failed = {"Fabric": [], "Fabric++": []}
    for result in bench_sweep(specs).values():
        series[result.label].append(result.successful_tps)
        failed[result.label].append(result.failed_tps)
    return series, failed


def run_channels():
    return _run_family(
        [
            (
                paper_config(num_channels=channels, clients_per_channel=2),
                {"channels": channels},
            )
            for channels in CHANNEL_COUNTS
        ]
    )


def run_clients():
    return _run_family(
        [
            (
                paper_config(num_channels=1, clients_per_channel=clients),
                {"clients": clients},
            )
            for clients in CLIENT_COUNTS
        ]
    )


def test_fig11a_channels(benchmark):
    series, failed = benchmark.pedantic(run_channels, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "channels", CHANNEL_COUNTS, series,
            title="Figure 11a: successful TPS vs number of channels",
        )
    )
    print(
        format_series(
            "channels", CHANNEL_COUNTS, failed,
            title="Figure 11a (failed TPS)",
        )
    )
    for label in ("Fabric", "Fabric++"):
        tps = series[label]
        # More channels help initially...
        assert max(tps) > tps[0]
        # ...and failed TPS rises with channel count (resource competition).
        assert failed[label][-1] > failed[label][0]
    # Fabric++ keeps its lead while scaling.
    assert series["Fabric++"][1] >= series["Fabric"][1]


def test_fig11b_clients(benchmark):
    series, failed = benchmark.pedantic(run_clients, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "clients", CLIENT_COUNTS, series,
            title="Figure 11b: successful TPS vs clients per channel",
        )
    )
    print(
        format_series(
            "clients", CLIENT_COUNTS, failed,
            title="Figure 11b (failed TPS)",
        )
    )
    # Fabric++ beats Fabric at low client counts...
    assert series["Fabric++"][1] > series["Fabric"][1]
    # ...but the advantage shrinks under heavy client contention.
    gain_low = series["Fabric++"][1] / max(series["Fabric"][1], 1)
    gain_high = series["Fabric++"][-1] / max(series["Fabric"][-1], 1)
    assert gain_high < gain_low
    # Failed transactions climb with client count for both systems.
    for label in ("Fabric", "Fabric++"):
        assert failed[label][-1] > failed[label][0]


if __name__ == "__main__":
    channel_series, channel_failed = run_channels()
    print(format_series("channels", CHANNEL_COUNTS, channel_series, title="11a"))
    client_series, client_failed = run_clients()
    print(format_series("clients", CLIENT_COUNTS, client_series, title="11b"))
