"""Availability under faults — crash density x message loss.

Not a paper figure: the paper benchmarks a healthy 6-node cluster. This
bench stresses the same pipeline under the deterministic fault-injection
layer (``repro.faults``): every non-reference peer suffers a seeded
schedule of crash/recovery windows while the client<->endorser and block
dissemination links lose messages, and clients fall back to ``OutOf``
endorsement with timeout/retry/backoff.

Expected shape: successful throughput degrades gracefully along both
axes but never collapses to zero — the ``outof:1`` policy lets clients
commit from surviving endorsers, recovered peers catch up by replaying
the blocks they missed, and commit availability stays high. Fabric++
keeps its relative advantage under faults (its optimizations are
orthogonal to the robustness machinery).
"""

from _bench_utils import (
    DURATION,
    bench_sweep,
    both_specs,
    full_sweep,
    paper_config,
    smallbank_ref,
)

from dataclasses import replace

from repro.bench.report import format_table
from repro.faults import FaultSchedule, crash_schedule

#: Every peer of the default 2x2 topology except the reference peer
#: (the measurement anchor must stay up).
CRASHABLE_PEERS = ("peer1.OrgA", "peer0.OrgB", "peer1.OrgB")

CRASH_DENSITIES_QUICK = [0.0, 1.0]
CRASH_DENSITIES_FULL = [0.0, 0.5, 1.0, 2.0]
DROP_RATES_QUICK = [0.0, 0.05]
DROP_RATES_FULL = [0.0, 0.02, 0.05, 0.10]


def fault_schedule(crash_density: float, drop_rate: float, seed: int) -> FaultSchedule:
    """The grid point's schedule; all-zero at the healthy origin."""
    if crash_density == 0.0 and drop_rate == 0.0:
        return FaultSchedule()
    crashes = crash_schedule(
        CRASHABLE_PEERS,
        crashes_per_peer=crash_density,
        run_duration=DURATION,
        mean_outage=0.4,
        seed=seed,
    )
    return FaultSchedule(
        crashes=crashes,
        drop_probability=drop_rate,
        jitter_mean=0.001,
        endorsement_timeout=0.05,
    )


def run_availability():
    densities = CRASH_DENSITIES_FULL if full_sweep() else CRASH_DENSITIES_QUICK
    drop_rates = DROP_RATES_FULL if full_sweep() else DROP_RATES_QUICK
    specs = []
    for density in densities:
        for drop_rate in drop_rates:
            config = replace(
                paper_config(block_size=128, client_rate=256.0),
                endorsement_policy="outof:1",
                faults=fault_schedule(density, drop_rate, seed=42),
            )
            specs += both_specs(
                config,
                smallbank_ref(prob_write=0.95, s_value=0.0),
                params={"crash_density": density, "drop_rate": drop_rate},
            )
    return bench_sweep(specs)


def test_availability_faults(benchmark):
    results = benchmark.pedantic(run_availability, rounds=1, iterations=1)
    rows = []
    for result in results.values():
        faults = result.metrics.fault_summary()
        rows.append(
            {
                "label": result.label,
                **result.params,
                "successful_tps": result.successful_tps,
                "availability": faults.get("commit_availability", 1.0),
                "crashes": faults.get("crashes", 0),
                "recoveries": faults.get("recoveries", 0),
                "caught_up": faults.get("blocks_caught_up", 0),
            }
        )
    print()
    print(format_table(rows, title="Availability under faults (outof:1)"))

    for result in results.values():
        # The pipeline never collapses: OutOf degradation keeps commits
        # flowing through every grid point.
        assert result.successful_tps > 0, result.params
    for row in rows:
        # Every crash that happened inside the run recovered and the
        # peer caught up (recovery inside the drain window still counts).
        if row["crashes"]:
            assert row["recoveries"] > 0
            assert row["caught_up"] > 0
    healthy = [r for r in rows if r["crash_density"] == 0 and r["drop_rate"] == 0]
    faulty = [r for r in rows if r["crash_density"] or r["drop_rate"]]
    assert healthy and faulty
    # Faults cost throughput, but gracefully: the worst faulty point still
    # achieves a sizable fraction of the healthy rate.
    worst = min(r["successful_tps"] for r in faulty)
    best_healthy = max(r["successful_tps"] for r in healthy)
    assert worst > 0.3 * best_healthy


if __name__ == "__main__":
    results = run_availability()
    print(format_table(results.rows(), title="Availability under faults"))
