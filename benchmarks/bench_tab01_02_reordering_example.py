"""Tables 1 & 2 — the paper's four-transaction reordering example.

Arrival order T1 => T2 => T3 => T4 commits only T1 (T2..T4 read the
version of k1 that T1 already overwrote). The order T4 => T2 => T3 => T1
commits all four. This benchmark replays both orders through the
within-block validation rule and shows the reordering mechanism finds a
fully-valid order.
"""

from repro.testing import count_valid_in_order, paper_table1_rwsets

from _bench_utils import bench_map

from repro.bench.report import format_table
from repro.core.reorder import reorder

ORDERS = [
    ("T1=>T2=>T3=>T4 (arrival, Table 1)", [0, 1, 2, 3]),
    ("T4=>T2=>T3=>T1 (paper, Table 2)", [3, 1, 2, 0]),
    ("reorder() output", None),  # None: run the mechanism itself
]


def evaluate_order(item):
    name, schedule = item
    block = paper_table1_rwsets()
    if schedule is None:
        schedule = reorder(block).schedule
        name = "reorder() output: " + "=>".join(f"T{i + 1}" for i in schedule)
    return {
        "order": name,
        "valid": count_valid_in_order(block, schedule),
        "total": 4,
    }


def run_tables_1_and_2():
    return bench_map(evaluate_order, ORDERS, label="tab01-02")


def test_tab01_02_reordering_example(benchmark):
    rows = benchmark.pedantic(run_tables_1_and_2, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Tables 1 & 2: reordering example"))
    arrival, paper, ours = rows
    assert arrival["valid"] == 1
    assert paper["valid"] == 4
    assert ours["valid"] == 4


if __name__ == "__main__":
    print(format_table(run_tables_1_and_2(), title="Tables 1 & 2"))
