"""Tables 1 & 2 — the paper's four-transaction reordering example.

Arrival order T1 => T2 => T3 => T4 commits only T1 (T2..T4 read the
version of k1 that T1 already overwrote). The order T4 => T2 => T3 => T1
commits all four. This benchmark replays both orders through the
within-block validation rule and shows the reordering mechanism finds a
fully-valid order.
"""

from repro.testing import count_valid_in_order, paper_table1_rwsets

from repro.bench.report import format_table
from repro.core.reorder import reorder


def run_tables_1_and_2():
    block = paper_table1_rwsets()
    arrival = [0, 1, 2, 3]            # T1 => T2 => T3 => T4
    paper_reordered = [3, 1, 2, 0]    # T4 => T2 => T3 => T1
    result = reorder(block)
    return [
        {
            "order": "T1=>T2=>T3=>T4 (arrival, Table 1)",
            "valid": count_valid_in_order(block, arrival),
            "total": 4,
        },
        {
            "order": "T4=>T2=>T3=>T1 (paper, Table 2)",
            "valid": count_valid_in_order(block, paper_reordered),
            "total": 4,
        },
        {
            "order": "reorder() output: "
            + "=>".join(f"T{i + 1}" for i in result.schedule),
            "valid": count_valid_in_order(block, result.schedule),
            "total": 4,
        },
    ]


def test_tab01_02_reordering_example(benchmark):
    rows = benchmark.pedantic(run_tables_1_and_2, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Tables 1 & 2: reordering example"))
    arrival, paper, ours = rows
    assert arrival["valid"] == 1
    assert paper["valid"] == 4
    assert ours["valid"] == 4


if __name__ == "__main__":
    print(format_table(run_tables_1_and_2(), title="Tables 1 & 2"))
