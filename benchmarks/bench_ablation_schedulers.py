"""Ablation — Algorithm 1's greedy reordering vs baselines.

Compares, over many small random blocks, the number of committed
transactions under four schedulers:

- **arrival**: vanilla Fabric's order (no reordering);
- **bcc**: the begin-time-rescue strategy of the paper's related work
  [28] (Yuan et al.), adapted to within-block scheduling;
- **greedy**: the paper's Algorithm 1;
- **optimal**: exhaustive abort-minimal search (quality ceiling).

Expected shape: arrival <= bcc <= greedy <= optimal on average, with
greedy close to optimal — the paper's justification for a lightweight
heuristic over an NP-hard exact solution.
"""

import time

from _bench_utils import bench_map

from repro.bench.report import format_table
from repro.core.baselines import bcc_reorder, optimal_reorder
from repro.core.reorder import reorder
from repro.ledger.state_db import Version
from repro.sim.distributions import Rng
from repro.testing import count_valid_in_order
from repro.fabric.rwset import ReadWriteSet

BLOCKS = 60
BLOCK_SIZE = 12
KEYS = 8


def random_block(rng):
    version = Version(1, 0)
    block = []
    for _ in range(BLOCK_SIZE):
        rwset = ReadWriteSet()
        for _ in range(rng.randint(1, 3)):
            rwset.record_read(f"k{rng.randint(0, KEYS - 1)}", version)
        for _ in range(rng.randint(1, 3)):
            rwset.record_write(f"k{rng.randint(0, KEYS - 1)}", 1)
        block.append(rwset)
    return block


def score_block(block):
    """All four schedulers on one block: commit counts + heuristic times."""
    committed = {
        "arrival": count_valid_in_order(block, range(len(block))),
    }
    bcc_schedule, _ = bcc_reorder(block)
    committed["bcc"] = count_valid_in_order(block, bcc_schedule)
    started = time.perf_counter()
    greedy = reorder(block)
    greedy_seconds = time.perf_counter() - started
    committed["greedy"] = count_valid_in_order(block, greedy.schedule)
    started = time.perf_counter()
    optimal = optimal_reorder(block)
    optimal_seconds = time.perf_counter() - started
    committed["optimal"] = len(optimal.schedule)
    return committed, {"greedy": greedy_seconds, "optimal": optimal_seconds}


def run_ablation():
    # The blocks are drawn from one sequential Rng(17) stream, so they are
    # generated here and only the (embarrassingly parallel) scoring fans out.
    rng = Rng(17)
    blocks = [random_block(rng) for _ in range(BLOCKS)]
    totals = {"arrival": 0, "bcc": 0, "greedy": 0, "optimal": 0}
    times = {"greedy": 0.0, "optimal": 0.0}
    for committed, seconds in bench_map(score_block, blocks, label="schedulers"):
        for name, count in committed.items():
            totals[name] += count
        for name, elapsed in seconds.items():
            times[name] += elapsed
    transactions = BLOCKS * BLOCK_SIZE
    rows = [
        {
            "scheduler": name,
            "committed": committed,
            "commit_rate": committed / transactions,
            "time_ms": round(times.get(name, 0.0) * 1000, 1),
        }
        for name, committed in totals.items()
    ]
    return rows


def test_ablation_schedulers(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: scheduler quality on random blocks"))
    by_name = {row["scheduler"]: row["committed"] for row in rows}
    assert by_name["arrival"] <= by_name["bcc"]
    assert by_name["bcc"] <= by_name["greedy"]
    assert by_name["greedy"] <= by_name["optimal"]
    # Greedy recovers the lion's share of the optimal schedule's commits.
    assert by_name["greedy"] >= 0.9 * by_name["optimal"]
    # And is far cheaper than the exhaustive search.
    times = {row["scheduler"]: row["time_ms"] for row in rows}
    assert times["greedy"] < times["optimal"]


if __name__ == "__main__":
    print(format_table(run_ablation(), title="scheduler ablation"))
