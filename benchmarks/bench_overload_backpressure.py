"""Overload backpressure — graceful degradation under open-loop load.

Closed-loop clients can never overload the pipeline: they wait for each
response before firing again. Open-loop Poisson arrivals keep coming at
the offered rate regardless of how far behind the pipeline falls, which
is how real networks die. This benchmark offers the same two load
levels — a sustainable baseline and a multiple-of-capacity overload —
to an unbounded deployment and to one with bounded queues plus
admission control, for vanilla Fabric and Fabric++ alike.

The claim under test is the backpressure contract:

* at baseline load, bounding the queues costs (almost) nothing;
* under overload, the unbounded deployment commits at capacity but its
  backlog — and therefore commit latency — grows without bound, while
  the bounded deployment sheds the excess *explicitly* (the
  ``overload_rejected`` outcome), keeps goodput near capacity, and
  holds commit latency flat.

Set ``REPRO_BENCH_ARTIFACT=/path/to.json`` to dump every grid point as
a JSON artifact — CI uploads this from the scenario-smoke job.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from _bench_utils import DURATION, bench_sweep, both_specs, paper_config, smallbank_ref

from repro.fabric.config import BackpressureConfig
from repro.fabric.metrics import TxOutcome
from repro.traffic import ArrivalProcess

#: Offered load per client (arrivals/s): sustainable vs ~6x capacity.
BASELINE_RATE = 150.0
OVERLOAD_RATE = 900.0

#: The bounded deployment under test. The delivery-backlog bound is the
#: one that matters for Fabric++: its lock-free endorsement never
#: saturates, so overload pools in the validation queue until delivery
#: credit pushes it back to admission.
BOUNDED = BackpressureConfig(
    orderer_queue_limit=128,
    endorse_queue_limit=48,
    delivery_backlog_limit=4,
    client_retries=2,
)


def grid_config(rate: float, bounded: bool):
    return replace(
        paper_config(block_size=64, clients_per_channel=2, client_rate=rate),
        seed=11,
        traffic=ArrivalProcess(kind="poisson"),
        backpressure=BOUNDED if bounded else BackpressureConfig(),
    )


def run_grid():
    specs = []
    for rate in (BASELINE_RATE, OVERLOAD_RATE):
        for bounded in (False, True):
            specs += both_specs(
                grid_config(rate, bounded),
                smallbank_ref(users=5_000, seed=11),
                params={
                    "load": "baseline" if rate == BASELINE_RATE else "overload",
                    "queues": "bounded" if bounded else "unbounded",
                },
            )
    rows = []
    for result in bench_sweep(specs).values():
        metrics = result.metrics
        overload = metrics.overload
        latency = metrics.latency()
        shed = metrics.outcomes.get(TxOutcome.OVERLOAD_REJECTED, 0)
        rows.append(
            {
                "system": result.label,
                "load": result.params["load"],
                "queues": result.params["queues"],
                "fired": metrics.fired,
                "committed": metrics.outcomes.get(TxOutcome.COMMITTED, 0),
                "committed_tps": round(result.successful_tps, 2),
                "avg_latency": round(latency.average if latency else 0.0, 4),
                "max_latency": round(latency.maximum if latency else 0.0, 4),
                "shed": shed,
                "shed_rate": round(shed / metrics.fired, 4) if metrics.fired else 0.0,
                "client_retries": overload.client_retries if overload else 0,
                "endorse_rejections": (
                    overload.endorse_rejections if overload else 0
                ),
                "queue_depth_peak": overload.queue_depth_peak if overload else 0,
            }
        )
    return rows


def pick(rows, system, load, queues):
    for row in rows:
        if (row["system"], row["load"], row["queues"]) == (system, load, queues):
            return row
    raise KeyError((system, load, queues))


def write_artifact(rows):
    path = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not path:
        return
    payload = {
        "benchmark": "overload_backpressure",
        "duration": DURATION,
        "baseline_rate": BASELINE_RATE,
        "overload_rate": OVERLOAD_RATE,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def test_overload_backpressure(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    write_artifact(rows)
    print()
    for row in rows:
        print(
            "  {system:8s} {load:8s} {queues:9s}: "
            "tps={committed_tps:7.1f} lat={avg_latency:7.3f}s "
            "shed={shed:5d} retries={client_retries:5d}".format(**row)
        )

    for system in ("Fabric", "Fabric++"):
        base_open = pick(rows, system, "baseline", "unbounded")
        base_bounded = pick(rows, system, "baseline", "bounded")
        over_open = pick(rows, system, "overload", "unbounded")
        over_bounded = pick(rows, system, "overload", "bounded")

        # Unbounded queues never shed — that is the whole problem.
        assert over_open["shed"] == 0, over_open
        # At sustainable load the bounds are (nearly) invisible: no
        # meaningful shedding, goodput within 10% of unbounded.
        assert base_bounded["shed_rate"] < 0.02, base_bounded
        assert (
            base_bounded["committed_tps"]
            >= 0.9 * base_open["committed_tps"]
        ), (base_bounded, base_open)

        # Under overload, admission control engages: real shedding, and
        # strictly more of it than at baseline.
        assert over_bounded["shed"] > 0, over_bounded
        assert over_bounded["shed_rate"] > base_bounded["shed_rate"], (
            over_bounded,
            base_bounded,
        )

        # Graceful degradation: goodput stays at a healthy fraction of
        # what the unbounded deployment commits (it runs at capacity,
        # just with an ever-growing backlog)...
        assert (
            over_bounded["committed_tps"]
            >= 0.5 * over_open["committed_tps"]
        ), (over_bounded, over_open)
        # ...while commit latency stays far below the unbounded
        # deployment's queue-bloated latency.
        assert (
            over_bounded["avg_latency"] <= 0.5 * over_open["avg_latency"]
        ), (over_bounded, over_open)
        # And overload latency stays in the same regime as baseline
        # latency — bounded queues bound the wait.
        assert (
            over_bounded["avg_latency"] <= 4.0 * base_bounded["avg_latency"]
        ), (over_bounded, base_bounded)
