"""Validation-pipeline scaling — committed TPS vs verification workers.

The paper attributes most of the peer's commit-path cost to signature
verification (Figure 10) and argues Fabric parallelises it across a
worker pool. This benchmark sweeps the modelled pipeline
(``validation_workers`` with the dependency-aware scheduler and
``pipeline_depth=2``) under a low-contention workload, where almost
every transaction lands in the first MVCC wave: committed throughput
must rise monotonically with workers until arrival rate or peer cores
saturate. A high-contention sweep runs alongside for contrast — hot-key
conflicts lengthen the dependency critical path, so extra workers help
less.

Set ``REPRO_BENCH_ARTIFACT=/path/to.json`` to dump every grid point
(throughput, worker utilisation, critical path, queue delay) as a JSON
artifact — CI uploads this from the smoke job.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from _bench_utils import DURATION, bench_sweep, both_specs, paper_config

from repro.bench.report import format_series
from repro.workloads.registry import WorkloadRef

WORKER_COUNTS = [1, 2, 4, 8]

#: Nearly conflict-free: uniform access over a wide key space.
LOW_CONTENTION = WorkloadRef(
    "custom",
    {
        "num_accounts": 20_000,
        "reads_writes": 4,
        "prob_hot_read": 0.0,
        "prob_hot_write": 0.0,
        "hot_set_fraction": 0.01,
    },
    seed=0,
)

#: Half of all writes hit a 1% hot set: long write-write chains.
HIGH_CONTENTION = WorkloadRef(
    "custom",
    {
        "num_accounts": 20_000,
        "reads_writes": 4,
        "prob_hot_read": 0.4,
        "prob_hot_write": 0.5,
        "hot_set_fraction": 0.01,
    },
    seed=0,
)


def sweep_config(workers: int):
    return replace(
        paper_config(block_size=256, clients_per_channel=4, client_rate=600.0),
        seed=3,
        validation_workers=workers,
        validation_scheduler="dependency",
        pipeline_depth=2,
    )


def run_sweep(workload: WorkloadRef, contention: str):
    specs = []
    for workers in WORKER_COUNTS:
        specs += both_specs(
            sweep_config(workers),
            workload,
            params={"workers": workers, "contention": contention},
        )
    rows = []
    series = {"Fabric": [], "Fabric++": []}
    for result in bench_sweep(specs).values():
        stats = result.metrics.validation
        series[result.label].append(result.successful_tps)
        rows.append(
            {
                "system": result.label,
                "contention": contention,
                "workers": result.params["workers"],
                "committed_tps": round(result.successful_tps, 2),
                "failed_tps": round(result.failed_tps, 2),
                "worker_utilisation": round(
                    stats.worker_utilisation(result.metrics.duration), 4
                ),
                "avg_critical_path": round(stats.avg_critical_path(), 2),
                "parallelism_factor": round(stats.parallelism_factor(), 2),
                "avg_queue_delay": round(stats.avg_queue_delay(), 6),
            }
        )
    return series, rows


def write_artifact(rows):
    path = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not path:
        return
    payload = {
        "benchmark": "validation_scaling",
        "duration": DURATION,
        "worker_counts": WORKER_COUNTS,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def run_both_sweeps():
    low_series, low_rows = run_sweep(LOW_CONTENTION, "low")
    high_series, high_rows = run_sweep(HIGH_CONTENTION, "high")
    write_artifact(low_rows + high_rows)
    return low_series, low_rows, high_series, high_rows


def test_validation_worker_scaling(benchmark):
    low_series, low_rows, high_series, high_rows = benchmark.pedantic(
        run_both_sweeps, rounds=1, iterations=1
    )
    print()
    print(
        format_series(
            "workers", WORKER_COUNTS, low_series,
            title="Committed TPS vs validation workers (low contention)",
        )
    )
    print(
        format_series(
            "workers", WORKER_COUNTS, high_series,
            title="Committed TPS vs validation workers (high contention)",
        )
    )
    for row in low_rows + high_rows:
        print(
            "  {system:8s} {contention:4s} w={workers}: "
            "tps={committed_tps:7.1f} util={worker_utilisation:.2f} "
            "critical-path={avg_critical_path:5.2f} "
            "queue-delay={avg_queue_delay:.4f}s".format(**row)
        )

    for label in ("Fabric", "Fabric++"):
        tps = low_series[label]
        # Headline: more workers never hurt, and genuinely help, under
        # low contention (monotone non-decreasing up to saturation;
        # epsilon absorbs boundary-of-window jitter).
        for before, after in zip(tps, tps[1:]):
            assert after >= before - 1.0, (label, tps)
        assert tps[-1] > tps[0], (label, tps)

    for row in low_rows + high_rows:
        assert 0.0 < row["worker_utilisation"] <= 1.0, row

    # Hot keys lengthen the dependency critical path: at every worker
    # count the high-contention blocks need at least as many sequential
    # waves per block as the low-contention ones, and strictly more at
    # the top of the sweep.
    def path(rows, system, workers):
        return next(
            row["avg_critical_path"]
            for row in rows
            if row["system"] == system and row["workers"] == workers
        )

    for label in ("Fabric", "Fabric++"):
        assert path(high_rows, label, 8) > path(low_rows, label, 8)
