"""Figure 9 — custom workload across the full parameter grid (Table 7).

36 configurations in the paper: RW in {4, 8} x HR in {10, 20, 40}% x
HW in {5, 10}% x HSS in {1, 2, 4}%. The quick sweep covers the corners
plus the headline cell (RW=8, HR=40%, HW=10%, HSS=1%, paper: ~3x).

Expected shape: Fabric++ >= Fabric in every cell, largest gain at the
hottest configuration.
"""

from _bench_utils import (
    bench_sweep,
    both_specs,
    custom_ref,
    full_sweep,
    paper_config,
)

from repro.bench.report import format_table, improvement_factor

GRID_FULL = [
    (rw, hr, hw, hss)
    for rw in (4, 8)
    for hr in (0.10, 0.20, 0.40)
    for hw in (0.05, 0.10)
    for hss in (0.01, 0.02, 0.04)
]
GRID_QUICK = [
    (4, 0.10, 0.05, 0.04),   # coldest corner
    (4, 0.40, 0.10, 0.01),
    (8, 0.10, 0.05, 0.04),
    (8, 0.40, 0.10, 0.01),   # hottest corner (headline cell)
]


def run_figure9():
    grid = GRID_FULL if full_sweep() else GRID_QUICK
    specs = []
    for rw, hr, hw, hss in grid:
        specs += both_specs(
            paper_config(),
            custom_ref(rw=rw, hr=hr, hw=hw, hss=hss),
        )
    results = bench_sweep(specs).values()
    rows = []
    for (rw, hr, hw, hss), fabric, fabricpp in zip(
        grid, results[::2], results[1::2]
    ):
        rows.append(
            {
                "RW": rw,
                "HR": f"{hr:.0%}",
                "HW": f"{hw:.0%}",
                "HSS": f"{hss:.0%}",
                "Fabric": fabric.successful_tps,
                "Fabric++": fabricpp.successful_tps,
                "factor": improvement_factor(
                    fabric.successful_tps,
                    fabricpp.successful_tps,
                ),
            }
        )
    return rows


def test_fig09_custom_grid(benchmark):
    rows = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 9: custom workload grid"))
    # Fabric++ wins or ties everywhere.
    for row in rows:
        assert row["Fabric++"] >= 0.95 * row["Fabric"], row
    # The hottest configuration shows a substantial gain (paper: ~3x).
    hottest = max(rows, key=lambda row: row["factor"])
    assert hottest["factor"] > 1.5


if __name__ == "__main__":
    print(format_table(run_figure9(), title="Figure 9"))
