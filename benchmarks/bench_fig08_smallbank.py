"""Figure 8 — Smallbank throughput across skew (s-value) and write mix.

Three panels: Pw=5% (read-heavy), Pw=50% (balanced), Pw=95% (write-heavy),
each sweeping the Zipf s-value from 0.0 (uniform) to 2.0 (highly skewed).

Expected shape (paper Section 6.4.1): both systems high and close for
s <= 0.6; Fabric++ pulls ahead from s = 1.0 (paper: 1.15-1.37x) and wins
big at s = 2.0 (paper: 2.68-12.61x, largest for the write-heavy mix where
vanilla is essentially jammed).
"""

from _bench_utils import (
    bench_sweep,
    both_specs,
    full_sweep,
    paper_config,
    smallbank_ref,
)

from repro.bench.report import format_series, improvement_factor

S_VALUES_QUICK = [0.0, 1.0, 2.0]
S_VALUES_FULL = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
WRITE_MIXES = [0.05, 0.50, 0.95]


def run_figure8():
    s_values = S_VALUES_FULL if full_sweep() else S_VALUES_QUICK
    specs = []
    for prob_write in WRITE_MIXES:
        for s_value in s_values:
            specs += both_specs(
                paper_config(),
                smallbank_ref(prob_write=prob_write, s_value=s_value),
                params={"Pw": prob_write, "s": s_value},
            )
    panels = {
        prob_write: {"Fabric": [], "Fabric++": []} for prob_write in WRITE_MIXES
    }
    for result in bench_sweep(specs).values():
        panels[result.params["Pw"]][result.label].append(result.successful_tps)
    return s_values, panels


def test_fig08_smallbank(benchmark):
    s_values, panels = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    print()
    for prob_write, series in panels.items():
        print(
            format_series(
                "s-value", s_values, series,
                title=f"Figure 8: Smallbank successful TPS, Pw={prob_write:.0%}",
            )
        )
        print()
    for prob_write, series in panels.items():
        fabric, fabricpp = series["Fabric"], series["Fabric++"]
        # At the highest skew Fabric++ clearly wins for write mixes.
        if prob_write >= 0.5:
            gain = improvement_factor(fabric[-1], fabricpp[-1])
            assert gain > 1.5, f"Pw={prob_write}: gain {gain:.2f}"
        # Under no skew both systems are healthy and close-ish.
        assert fabricpp[0] >= 0.9 * fabric[0]
        # Skew hurts vanilla throughput for modifying workloads.
        if prob_write >= 0.5:
            assert fabric[-1] < fabric[0]


if __name__ == "__main__":
    s_values, panels = run_figure8()
    for prob_write, series in panels.items():
        print(format_series("s-value", s_values, series, title=f"Pw={prob_write}"))
