"""Pytest configuration for the benchmark suite.

Each ``bench_*`` file regenerates one table or figure of the paper. The
simulated runs are deterministic, so every benchmark uses a single
pedantic round — the interesting output is the printed table, not the
timing distribution.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
