"""Shared helpers for the per-figure benchmark targets.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6 / Appendix B): it runs the same workload configuration on
vanilla Fabric and on Fabric++ and prints the rows/series the figure
plots. Absolute numbers differ from the paper (our substrate is a
simulator, not a 6-server cluster); the *shape* — who wins, by what
factor, where crossovers fall — is the reproduction target.

Benchmarks default to a reduced sweep so the whole suite runs in minutes;
set ``REPRO_BENCH_FULL=1`` for the paper's complete parameter grids.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, Optional

from repro.bench.harness import run_experiment
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload

#: Simulated seconds per run (the paper fires for 90 s; shapes stabilise
#: far earlier in the deterministic simulator).
DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "3.0"))


def full_sweep() -> bool:
    """True when the complete paper grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def paper_config(block_size: int = 1024, **overrides) -> FabricConfig:
    """The paper's Table 5 system configuration."""
    batch = overrides.pop(
        "batch", BatchCutConfig(max_transactions=block_size)
    )
    return replace(FabricConfig(), batch=batch, **overrides)


def custom_workload(
    rw: int = 8,
    hr: float = 0.40,
    hw: float = 0.10,
    hss: float = 0.01,
    accounts: int = 10_000,
    seed: int = 0,
) -> CustomWorkload:
    """The paper's custom workload (Table 7 parameter names)."""
    return CustomWorkload(
        CustomWorkloadParams(
            num_accounts=accounts,
            reads_writes=rw,
            prob_hot_read=hr,
            prob_hot_write=hw,
            hot_set_fraction=hss,
        ),
        seed=seed,
    )


def smallbank_workload(
    prob_write: float = 0.95,
    s_value: float = 0.0,
    users: Optional[int] = None,
    seed: int = 0,
) -> SmallbankWorkload:
    """Smallbank as configured in the paper's Table 6."""
    if users is None:
        users = 100_000 if full_sweep() else 20_000
    return SmallbankWorkload(
        SmallbankParams(num_users=users, prob_write=prob_write, s_value=s_value),
        seed=seed,
    )


def run_both(
    config: FabricConfig,
    make_workload,
    duration: float = None,
    params: Optional[Dict[str, object]] = None,
):
    """Run vanilla Fabric and Fabric++ on fresh copies of a workload."""
    duration = DURATION if duration is None else duration
    results = {}
    for label, system in (
        ("Fabric", config.with_vanilla()),
        ("Fabric++", config.with_fabric_plus_plus()),
    ):
        results[label] = run_experiment(
            system, make_workload(), duration, label=label, params=params
        )
    return results
