"""Shared helpers for the per-figure benchmark targets.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6 / Appendix B): it describes its parameter grid as a list of
:class:`ExperimentSpec` and fans it through the sweep engine
(:func:`repro.bench.sweep.run_sweep`), which preserves spec order — so
results are identical whether the grid runs serially or across worker
processes. Absolute numbers differ from the paper (our substrate is a
simulator, not a 6-server cluster); the *shape* — who wins, by what
factor, where crossovers fall — is the reproduction target.

Benchmarks default to a reduced sweep so the whole suite runs in minutes;
set ``REPRO_BENCH_FULL=1`` for the paper's complete parameter grids,
``REPRO_BENCH_JOBS=N`` to fan grid points across N worker processes
(0 = one per CPU), and ``REPRO_BENCH_CACHE=1`` to reuse the on-disk
result cache between runs.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional

from repro.bench.cache import ResultCache
from repro.bench.results import ResultSet
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import parallel_map, run_sweep
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.workloads.registry import WorkloadRef

#: Simulated seconds per run (the paper fires for 90 s; shapes stabilise
#: far earlier in the deterministic simulator).
DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "3.0"))


def full_sweep() -> bool:
    """True when the complete paper grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def bench_jobs() -> int:
    """Worker processes for benchmark sweeps (0 = one per CPU)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_cache() -> Optional[ResultCache]:
    """The shared result cache, when enabled via ``REPRO_BENCH_CACHE=1``."""
    if os.environ.get("REPRO_BENCH_CACHE", "") == "1":
        return ResultCache()
    return None


def bench_sweep(specs: List[ExperimentSpec]) -> ResultSet:
    """Run a benchmark grid through the sweep engine (env-controlled)."""
    return run_sweep(specs, jobs=bench_jobs(), cache=bench_cache())


def bench_map(function, items, label: str = "") -> list:
    """Parallel map for the micro-benchmarks (env-controlled jobs)."""
    return parallel_map(function, items, jobs=bench_jobs(), label=label)


def paper_config(block_size: int = 1024, **overrides) -> FabricConfig:
    """The paper's Table 5 system configuration."""
    batch = overrides.pop(
        "batch", BatchCutConfig(max_transactions=block_size)
    )
    return replace(FabricConfig(), batch=batch, **overrides)


def custom_ref(
    rw: int = 8,
    hr: float = 0.40,
    hw: float = 0.10,
    hss: float = 0.01,
    accounts: int = 10_000,
    seed: int = 0,
) -> WorkloadRef:
    """The paper's custom workload (Table 7 parameter names), as data."""
    return WorkloadRef(
        "custom",
        {
            "num_accounts": accounts,
            "reads_writes": rw,
            "prob_hot_read": hr,
            "prob_hot_write": hw,
            "hot_set_fraction": hss,
        },
        seed=seed,
    )


def smallbank_ref(
    prob_write: float = 0.95,
    s_value: float = 0.0,
    users: Optional[int] = None,
    seed: int = 0,
) -> WorkloadRef:
    """Smallbank as configured in the paper's Table 6, as data."""
    if users is None:
        users = 100_000 if full_sweep() else 20_000
    return WorkloadRef(
        "smallbank",
        {"num_users": users, "prob_write": prob_write, "s_value": s_value},
        seed=seed,
    )


def both_specs(
    config: FabricConfig,
    workload: WorkloadRef,
    duration: float = None,
    params: Optional[Dict[str, object]] = None,
) -> List[ExperimentSpec]:
    """Vanilla Fabric and Fabric++ specs for one grid point."""
    duration = DURATION if duration is None else duration
    return [
        ExperimentSpec(
            config=system,
            workload=workload,
            duration=duration,
            label=label,
            params=dict(params or {}),
        )
        for label, system in (
            ("Fabric", config.with_vanilla()),
            ("Fabric++", config.with_fabric_plus_plus()),
        )
    ]


def run_both(
    config: FabricConfig,
    workload: WorkloadRef,
    duration: float = None,
    params: Optional[Dict[str, object]] = None,
) -> ResultSet:
    """Run vanilla Fabric and Fabric++ on one grid point via the engine."""
    return bench_sweep(both_specs(config, workload, duration, params))
