"""Figure 16 (Appendix B.2) — micro-benchmark: varying the cycle length.

The input is n transactions forming n/t conflict cycles of t transactions
each, built from the paper's pattern::

    T[r(k0), w(k0)], T[r(k0), w(k1)], T[r(k1), w(k2)], ..., T[r(k_{t-2}), w(k0)]

Expected shape (paper): the arrival order commits only ~n/2 transactions
regardless of cycle length (aborting every second transaction breaks the
cycles); the reordering mechanism commits close to n - n/t (one abort per
cycle), i.e. it improves as cycles get longer, at higher but still modest
compute cost.
"""

from repro.testing import count_valid_in_order, rwset

from _bench_utils import bench_map, full_sweep

from repro.bench.report import format_table
from repro.core.reorder import reorder

N = 1024


def build_cycles(n, cycle_length):
    """n/cycle_length cycles of the paper's shape."""
    block = []
    for cycle_index in range(n // cycle_length):
        base = cycle_index * cycle_length
        keys = [f"c{cycle_index}_k{i}" for i in range(cycle_length)]
        for position in range(cycle_length):
            read_key = keys[position - 1] if position else keys[-1]
            block.append(rwset(reads=[read_key], writes=[keys[position]]))
    return block


def measure_cycle_length(cycle_length):
    block = build_cycles(N, cycle_length)
    arrival_valid = count_valid_in_order(block, range(len(block)))
    result = reorder(block)
    reordered_valid = count_valid_in_order(block, result.schedule)
    return {
        "cycle_length": cycle_length,
        "transactions": len(block),
        "arrival_valid": arrival_valid,
        "reordered_valid": reordered_valid,
        "aborted": len(result.aborted),
        "time_ms": result.elapsed_seconds * 1000,
    }


def run_figure16():
    lengths = (
        [2, 4, 8, 16, 32, 64, 128, 256, 512]
        if full_sweep()
        else [2, 8, 32, 128, 512]
    )
    return bench_map(measure_cycle_length, lengths, label="fig16")


def test_fig16_micro_cycles(benchmark):
    rows = benchmark.pedantic(run_figure16, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 16: cycle-length micro-benchmark"))
    for row in rows:
        n = row["transactions"]
        cycles = n // row["cycle_length"]
        # Reordering aborts exactly one transaction per cycle.
        assert row["aborted"] == cycles
        assert row["reordered_valid"] == n - cycles
        # All survivors commit.
        assert row["reordered_valid"] == n - row["aborted"]
        # Arrival order is stuck around n/2.
        assert row["arrival_valid"] <= n // 2 + cycles
    # Longer cycles -> reordering recovers more transactions.
    recovered = [row["reordered_valid"] for row in rows]
    assert recovered == sorted(recovered)


if __name__ == "__main__":
    print(format_table(run_figure16(), title="Figure 16"))
