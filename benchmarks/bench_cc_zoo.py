"""The concurrency-control zoo — committed TPS per CC strategy.

Every strategy in :mod:`repro.validation.registry` runs the same
scheme × contention × workers grid on vanilla Fabric (where the
commit-path write lock actually bites):

- ``serial`` — the legacy loop (the pipelined serial scheduler once
  ``workers > 1``);
- ``dependency`` — the modelled pipeline with topological MVCC waves;
- ``lockless`` — OCC snapshot validation with no exclusive write lock
  (Meir et al., arXiv:1911.12711); ignores the worker knob;
- ``depaware`` — conflict-graph dataflow execution (Kaul et al.,
  arXiv:2509.07425).

Headline: under low contention, ``lockless`` beats vanilla's serial
validator on committed TPS — endorsement-phase simulations never stall
behind the block write lock. Under high contention its first-committer-
wins rule converts hot write-write races into ``abort_occ_ww``.

Set ``REPRO_BENCH_ARTIFACT=/path/to.json`` to dump the grid as a JSON
artifact — CI uploads this from the ``cc-zoo-smoke`` job.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from _bench_utils import DURATION, bench_sweep, paper_config

from repro.bench.spec import ExperimentSpec
from repro.fabric.metrics import TxOutcome
from repro.validation.registry import strategy_names
from repro.workloads.registry import WorkloadRef

WORKER_COUNTS = [1, 4]

#: Nearly conflict-free: uniform access over a wide key space.
LOW_CONTENTION = WorkloadRef(
    "custom",
    {
        "num_accounts": 20_000,
        "reads_writes": 4,
        "prob_hot_read": 0.0,
        "prob_hot_write": 0.0,
        "hot_set_fraction": 0.01,
    },
    seed=0,
)

#: Half of all (blind) writes hit a 1% hot set: write-write races in
#: nearly every block.
HIGH_CONTENTION = WorkloadRef(
    "custom",
    {
        "num_accounts": 20_000,
        "reads_writes": 4,
        "prob_hot_read": 0.4,
        "prob_hot_write": 0.5,
        "hot_set_fraction": 0.01,
    },
    seed=0,
)


def zoo_config(strategy: str, workers: int):
    config = replace(
        paper_config(block_size=256, clients_per_channel=4, client_rate=600.0),
        seed=3,
        cc_strategy=strategy,
        validation_workers=workers,
    )
    return config.with_vanilla()


def build_grid():
    specs = []
    for contention, workload in (
        ("low", LOW_CONTENTION),
        ("high", HIGH_CONTENTION),
    ):
        for strategy in strategy_names():
            for workers in WORKER_COUNTS:
                specs.append(
                    ExperimentSpec(
                        config=zoo_config(strategy, workers),
                        workload=workload,
                        duration=DURATION,
                        label=strategy,
                        params={
                            "strategy": strategy,
                            "contention": contention,
                            "workers": workers,
                        },
                    )
                )
    return specs


def run_grid():
    rows = []
    for result in bench_sweep(build_grid()).values():
        outcomes = result.metrics.outcomes
        rows.append(
            {
                "strategy": result.params["strategy"],
                "contention": result.params["contention"],
                "workers": result.params["workers"],
                "committed_tps": round(result.successful_tps, 2),
                "failed_tps": round(result.failed_tps, 2),
                "abort_mvcc": outcomes.get(TxOutcome.ABORT_MVCC, 0),
                "abort_occ_ww": outcomes.get(TxOutcome.ABORT_OCC_WW, 0),
                "early_abort": (
                    outcomes.get(TxOutcome.EARLY_ABORT_SIM, 0)
                    + outcomes.get(TxOutcome.EARLY_ABORT_CYCLE, 0)
                    + outcomes.get(TxOutcome.EARLY_ABORT_VERSION, 0)
                ),
                "overload": outcomes.get(TxOutcome.OVERLOAD_REJECTED, 0),
            }
        )
    write_artifact(rows)
    return rows


def write_artifact(rows):
    path = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not path:
        return
    payload = {
        "benchmark": "cc_zoo",
        "duration": DURATION,
        "strategies": list(strategy_names()),
        "worker_counts": WORKER_COUNTS,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def cell(rows, strategy, contention, workers):
    return next(
        row
        for row in rows
        if row["strategy"] == strategy
        and row["contention"] == contention
        and row["workers"] == workers
    )


def test_cc_zoo_grid(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            "  {strategy:10s} {contention:4s} w={workers}: "
            "tps={committed_tps:7.1f} failed={failed_tps:6.1f} "
            "mvcc={abort_mvcc:4d} occ-ww={abort_occ_ww:4d} "
            "early={early_abort:4d} overload={overload:4d}".format(**row)
        )

    assert len(rows) == len(strategy_names()) * 2 * len(WORKER_COUNTS)

    # Headline: no write lock means endorsements never stall behind a
    # committing block — lockless beats the stock serial validator on
    # committed TPS under low contention.
    serial = cell(rows, "serial", "low", 1)
    lockless = cell(rows, "lockless", "low", 1)
    assert lockless["committed_tps"] > serial["committed_tps"], (
        serial,
        lockless,
    )

    # First-committer-wins fires where write-write races exist: rarely
    # under uniform access (birthday collisions only), far more under
    # hot writes.
    for workers in WORKER_COUNTS:
        low = cell(rows, "lockless", "low", workers)["abort_occ_ww"]
        high = cell(rows, "lockless", "high", workers)["abort_occ_ww"]
        assert high > low > 0, (low, high)

    # The OCC write-write outcome is exclusive to the lockless strategy.
    for row in rows:
        if row["strategy"] != "lockless":
            assert row["abort_occ_ww"] == 0, row

    # Abort-class sanity: the whole grid runs vanilla Fabric under
    # closed-loop traffic, so the early-abort classes (a Fabric++
    # feature) and admission-control rejections never fire here. The
    # columns exist so artifact consumers get the full breakdown.
    for row in rows:
        assert row["early_abort"] == 0, row
        assert row["overload"] == 0, row

    # Under high contention, MVCC aborts dominate for every strategy
    # that holds the commit-path write lock.
    for strategy in strategy_names():
        if strategy == "lockless":
            continue
        high = cell(rows, strategy, "high", 1)
        low = cell(rows, strategy, "low", 1)
        assert high["abort_mvcc"] > low["abort_mvcc"], (low, high)
