"""Figure 1 — vanilla Fabric: meaningful vs blank transaction throughput.

The paper's motivating experiment: firing *meaningful* transactions
(custom workload, BS=1024, RW=8, HR=40%, HW=10%, HSS=1%) yields a large
share of aborted transactions, while firing *blank* transactions (no
logic, empty read/write sets) achieves essentially the same **total**
throughput — proving the pipeline is bound by cryptography and
networking, not by transaction processing.

Expected shape: total(blank) ~= total(meaningful); meaningful splits into
a substantial aborted share plus a smaller successful share.
"""

from _bench_utils import DURATION, bench_sweep, custom_ref, paper_config

from repro.bench.report import format_table
from repro.bench.spec import ExperimentSpec
from repro.workloads.registry import WorkloadRef


def run_figure1():
    config = paper_config(block_size=1024)
    results = bench_sweep(
        [
            ExperimentSpec(
                config=config, workload=custom_ref(),
                duration=DURATION, label="Meaningful",
            ),
            ExperimentSpec(
                config=config, workload=WorkloadRef("blank"),
                duration=DURATION, label="Blank",
            ),
        ]
    )
    rows = [
        {
            "transactions": result.label,
            "successful_tps": result.metrics.successful_tps(),
            "aborted_tps": result.metrics.failed_tps(),
            "total_tps": result.metrics.total_tps(),
        }
        for result in results.values()
    ]
    return rows


def test_fig01_blank_vs_meaningful(benchmark):
    rows = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    print()
    print(format_table(rows, title=f"Figure 1 (duration={DURATION}s)"))
    meaningful, blank = rows
    # Blank transactions all succeed.
    assert blank["aborted_tps"] == 0
    # Meaningful transactions abort in large numbers under this config.
    assert meaningful["aborted_tps"] > meaningful["successful_tps"]
    # The totals are within ~15%: crypto/network-bound pipeline.
    ratio = meaningful["total_tps"] / blank["total_tps"]
    assert 0.85 < ratio < 1.15


if __name__ == "__main__":
    print(format_table(run_figure1(), title="Figure 1"))
