"""Figure 1 — where the pipeline spends its time, per resource.

The paper motivates Fabric++ with a cost decomposition of the vanilla
pipeline: cryptography (signing and verification) plus network transfer
dominate end-to-end cost, while the actual transaction logic is a small
slice. This benchmark reproduces that decomposition with the tracing
layer: both systems run the smallbank workload under a
:class:`repro.trace.Tracer` and report attributed seconds per resource
(sign / verify / network / logic / ordering / ledger).

Traced runs bypass the sweep engine on purpose: a tracer is runtime-only
state attached to the live network, never part of a picklable spec, so
it cannot cross a worker-process boundary (and must not enter cache
fingerprints).
"""

from _bench_utils import DURATION, paper_config, smallbank_ref

from repro.bench.harness import run_experiment_with_network
from repro.bench.report import format_table
from repro.bench.spec import ExperimentSpec
from repro.trace import Tracer


def run_cost_breakdown():
    base = paper_config()
    rows = []
    tables = []
    for label, config in (
        ("Fabric", base.with_vanilla()),
        ("Fabric++", base.with_fabric_plus_plus()),
    ):
        tracer = Tracer()
        spec = ExperimentSpec(
            config=config,
            workload=smallbank_ref(s_value=1.0),
            duration=DURATION,
            label=label,
        )
        result, _network = run_experiment_with_network(spec, tracer=tracer)
        breakdown = tracer.breakdown
        tables.append(breakdown.table(title=f"{label} cost attribution"))
        rows.append(
            {
                "system": label,
                "successful_tps": result.successful_tps,
                **{
                    resource: round(seconds, 3)
                    for resource, seconds in sorted(breakdown.seconds.items())
                },
                "crypto+net": f"{breakdown.crypto_network_share() * 100:.1f}%",
            }
        )
    return rows, tables


def test_cost_breakdown(benchmark):
    rows, tables = benchmark.pedantic(run_cost_breakdown, rounds=1, iterations=1)
    print()
    for table in tables:
        print(table)
        print()
    print(format_table(rows, title="Figure 1: cost attribution per resource"))
    for row in rows:
        share = float(row["crypto+net"].rstrip("%")) / 100.0
        # The paper's motivating claim: crypto + network dominate.
        assert share > 0.5, f"{row['system']}: crypto+network only {share:.0%}"


if __name__ == "__main__":
    rows, tables = run_cost_breakdown()
    for table in tables:
        print(table)
        print()
    print(format_table(rows, title="Figure 1"))
