"""Horizontal scaling — aggregate committed TPS versus channel count.

The paper scales Fabric by adding independent channels (Section 2:
channels partition the network into isolated ledgers with their own
ordering service). The sharded runtime (:mod:`repro.channels`) models
exactly that: ``channels=N`` builds N self-contained channel runtimes —
own orderer cluster, peers, ledger, and client pool — inside one
simulation, so the fleet's offered load and capacity both grow with N.

Headline: aggregate committed TPS rises monotonically with the channel
count for vanilla Fabric *and* Fabric++ — sharding is orthogonal to the
intra-channel reordering/early-abort optimisations, which keep their
edge inside every shard.

Set ``REPRO_BENCH_ARTIFACT=/path/to.json`` to dump the grid as a JSON
artifact — CI uploads this from the ``channel-smoke`` job.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from _bench_utils import DURATION, bench_sweep, paper_config, smallbank_ref

from repro.bench.spec import ExperimentSpec

CHANNEL_COUNTS = [1, 2, 4]


def scaling_config(channels: int):
    return replace(
        paper_config(
            block_size=256, clients_per_channel=4, client_rate=300.0
        ),
        seed=11,
        channels=channels,
    )


def build_grid():
    workload = smallbank_ref(users=5_000, s_value=1.0, seed=11)
    specs = []
    for channels in CHANNEL_COUNTS:
        base = scaling_config(channels)
        for label, config in (
            ("Fabric", base.with_vanilla()),
            ("Fabric++", base.with_fabric_plus_plus()),
        ):
            specs.append(
                ExperimentSpec(
                    config=config,
                    workload=workload,
                    duration=DURATION,
                    label=label,
                    params={"system": label, "channels": channels},
                )
            )
    return specs


def run_grid():
    rows = []
    for result in bench_sweep(build_grid()).values():
        row = {
            "system": result.params["system"],
            "channels": result.params["channels"],
            "committed_tps": round(result.successful_tps, 2),
            "failed_tps": round(result.failed_tps, 2),
            "blocks": result.metrics.blocks_committed,
        }
        fleet = result.metrics.channels
        if fleet is not None:
            row["per_channel_tps"] = [
                channel["successful_tps"] for channel in fleet.per_channel
            ]
        rows.append(row)
    write_artifact(rows)
    return rows


def write_artifact(rows):
    path = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not path:
        return
    payload = {
        "benchmark": "channel_scaling",
        "duration": DURATION,
        "channel_counts": CHANNEL_COUNTS,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def curve(rows, system):
    points = sorted(
        (row for row in rows if row["system"] == system),
        key=lambda row: row["channels"],
    )
    return [row["committed_tps"] for row in points]


def test_channel_scaling(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            "  {system:9s} channels={channels}: "
            "tps={committed_tps:8.1f} failed={failed_tps:6.1f} "
            "blocks={blocks:4d}".format(**row)
        )

    assert len(rows) == 2 * len(CHANNEL_COUNTS)

    # Headline: committed throughput scales with the channel count for
    # both systems — each extra shard brings its own orderer and
    # validation pipeline.
    for system in ("Fabric", "Fabric++"):
        tps = curve(rows, system)
        assert tps == sorted(tps) and len(set(tps)) == len(tps), (
            system,
            tps,
        )

    # Every shard contributes: no per-channel committed rate collapses
    # to zero in the sharded runs.
    for row in rows:
        for channel_tps in row.get("per_channel_tps", []):
            assert channel_tps > 0, row
