"""Figure 10 — breakdown of the individual optimizations.

Configuration BS=1024, RW=8, HR=40%, HW=10%, HSS=1%. Four systems:
vanilla Fabric, Fabric++ with only reordering, only early abort, and both.

Expected shape (paper: ~100 / ~150 / ~150 / ~220 successful TPS): each
optimization alone improves over vanilla; both together do best because
early abort keeps doomed transactions out of the reordering input.
"""

from dataclasses import replace

from _bench_utils import DURATION, bench_sweep, custom_ref, paper_config

from repro.bench.report import format_table
from repro.bench.spec import ExperimentSpec

VARIANTS = [
    ("Fabric", dict()),
    ("Fabric++ (only reordering)", dict(reordering=True)),
    (
        "Fabric++ (only early abort)",
        dict(early_abort_simulation=True, early_abort_ordering=True),
    ),
    (
        "Fabric++ (reordering & early abort)",
        dict(
            reordering=True,
            early_abort_simulation=True,
            early_abort_ordering=True,
        ),
    ),
]


def run_figure10():
    specs = [
        ExperimentSpec(
            config=replace(paper_config(), **flags),
            workload=custom_ref(),
            duration=DURATION,
            label=label,
        )
        for label, flags in VARIANTS
    ]
    return [
        {
            "system": result.label,
            "successful_tps": result.successful_tps,
            "failed_tps": result.failed_tps,
        }
        for result in bench_sweep(specs).values()
    ]


def test_fig10_breakdown(benchmark):
    rows = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 10: optimization breakdown"))
    vanilla, only_reorder, only_early, both = [
        row["successful_tps"] for row in rows
    ]
    assert only_reorder > vanilla
    assert only_early > vanilla
    assert both > vanilla
    assert both >= max(only_reorder, only_early)


if __name__ == "__main__":
    print(format_table(run_figure10(), title="Figure 10"))
