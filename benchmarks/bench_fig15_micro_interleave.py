"""Figure 15 (Appendix B.1) — micro-benchmark: shifted read/write pattern.

The input is n/2 writing transactions followed by n/2 reading transactions
(one key each, writer i and reader i share key i). The sequence S_k shifts
the last k readers to the front. The more writers precede their readers,
the more stale reads the arrival order produces; the reordering mechanism
must recover ALL transactions for every shift, in about a millisecond.

Expected shape: "Reordered" flat at n; "Arrival order" at n/2 + k (the k
readers moved to the front commit, the rest are stale); reorder time in
the low milliseconds.
"""

from repro.testing import count_valid_in_order, rwset

from _bench_utils import bench_map, full_sweep

from repro.bench.report import format_table
from repro.core.reorder import reorder

N = 1024


def build_shifted_sequence(n, shift):
    """n/2 writers then n/2 readers, with the last `shift` readers moved
    to the front (the paper's S_1 .. S_k construction)."""
    half = n // 2
    writers = [rwset(writes=[f"k{i}"]) for i in range(half)]
    readers = [rwset(reads=[f"k{i}"]) for i in range(half)]
    base = writers + readers
    if shift == 0:
        return base
    return base[-shift:] + base[:-shift]


def measure_shift(shift):
    block = build_shifted_sequence(N, shift)
    arrival_valid = count_valid_in_order(block, range(N))
    result = reorder(block)
    reordered_valid = count_valid_in_order(block, result.schedule)
    return {
        "shifted_readers": shift,
        "arrival_valid": arrival_valid,
        "reordered_valid": reordered_valid,
        "aborted": len(result.aborted),
        "time_ms": result.elapsed_seconds * 1000,
    }


def run_figure15():
    shifts = (
        [0, 64, 128, 192, 256, 320, 384, 448, 512]
        if full_sweep()
        else [0, 128, 256, 384, 512]
    )
    return bench_map(measure_shift, shifts, label="fig15")


def test_fig15_micro_interleave(benchmark):
    rows = benchmark.pedantic(run_figure15, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 15: shifted read/write micro-benchmark"))
    for row in rows:
        # Reordering recovers every transaction, at every shift.
        assert row["reordered_valid"] == N
        assert row["aborted"] == 0
        # Arrival order: the readers moved before the writers commit, the
        # rest read stale data -> n/2 + shift valid transactions.
        assert row["arrival_valid"] == N // 2 + row["shifted_readers"]
    # The mechanism is computationally cheap (paper: 1-2 ms; allow slack
    # for Python).
    assert max(row["time_ms"] for row in rows) < 1000


if __name__ == "__main__":
    print(format_table(run_figure15(), title="Figure 15"))
