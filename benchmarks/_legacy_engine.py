"""FROZEN pre-overhaul engine snapshot — the bench_engine.py baseline.

This is a verbatim copy of ``repro.sim.engine`` as it stood before the
fast-path scheduler rewrite (PR 6). ``benchmarks/bench_engine.py`` runs
the same pure-DES workload on this snapshot and on the live engine to
produce the tracked events/sec speedup trajectory in ``BENCH_engine.json``.

Do not "fix" or modernise this file: its whole value is that it never
changes, so every future engine optimisation is measured against the
same baseline.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, List, Optional

from repro.errors import SimulationError


class Event:
    """Something that will happen at a point in simulated time.

    Callbacks attached via :meth:`add_callback` run when the event fires.
    An event fires at most once; ``succeed``/``fail`` schedule it for the
    current instant.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "triggered", "processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: object = None
        self._exception: Optional[BaseException] = None
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> object:
        """The value the event fired with."""
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.env._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire now by raising ``exception``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._exception = exception
        self.env._schedule(self, delay=0.0)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        for callback in callbacks or ():
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.triggered = True
        self._value = value
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; fires (as an event) when the generator ends."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current instant.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached; it may still
        fire later but will no longer resume this process.
        """
        if self.triggered:
            return
        waiting_on = self._waiting_on
        if waiting_on is not None and waiting_on.callbacks is not None:
            try:
                waiting_on.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        poke = Event(self.env)
        poke.succeed()
        poke.add_callback(lambda _event: self._throw(Interrupt(cause)))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return
        self._wait_on(target)

    def _wait_on(self, target: object) -> None:
        # Misuse (yielding a non-event or a foreign event) is thrown back
        # into the generator; if it does not handle the error, the process
        # fails like any other uncaught exception.
        while True:
            if isinstance(target, Event) and target.env is self.env:
                break
            if isinstance(target, Event):
                error = SimulationError(
                    "event belongs to a different environment"
                )
            else:
                error = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
            try:
                target = self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as raised:
                self.fail(raised)
                return
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[tuple] = []
        self._sequence = 0
        self._trace_hook: Optional[Callable[[float, Event], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def set_trace_hook(
        self, hook: Optional[Callable[[float, Event], None]]
    ) -> None:
        """Install an observer called as ``hook(time, event)`` for every
        processed event. Observation only: the hook must not schedule
        events or mutate simulation state, so a hooked run is bit-identical
        to an unhooked one."""
        self._trace_hook = hook

    def _schedule(self, event: Event, delay: float) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- factory helpers -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start ``generator`` as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """Return an event that fires once every event in ``events`` has."""
        gate = self.event()
        pending = len(events)
        if pending == 0:
            gate.succeed([])
            return gate
        results: List[object] = [None] * pending
        remaining = [pending]

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if gate.triggered:
                    return
                if event._exception is not None:
                    # One member failed: the join fails with its error.
                    gate.fail(event._exception)
                    return
                results[index] = event.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    gate.succeed(list(results))

            return callback

        for index, event in enumerate(events):
            event.add_callback(make_callback(index))
        return gate

    def any_of(self, events: List[Event]) -> Event:
        """Return an event that fires with (index, value) of the first
        event in ``events`` to fire; later firings are ignored."""
        gate = self.event()

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if not gate.triggered:
                    gate.succeed((index, event.value))

            return callback

        if not events:
            raise SimulationError("any_of() requires at least one event")
        for index, event in enumerate(events):
            event.add_callback(make_callback(index))
        return gate

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        time, _seq, event = heapq.heappop(self._queue)
        self._now = time
        if self._trace_hook is not None:
            self._trace_hook(time, event)
        event._run_callbacks()
        if event._exception is not None and not isinstance(event, Process):
            # Failed plain events with no handler would vanish silently;
            # processes propagate failures to their waiters instead.
            pass

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError("cannot run into the past")
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")


class Resource:
    """Pre-overhaul counting semaphore (verbatim), for the baseline
    workload — the live ``repro.sim.resources.Resource`` now leans on
    new-engine internals and cannot run against this snapshot."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[tuple] = []
        self._sequence = 0
        self._busy_integral = 0.0
        self._busy_marked_at = env.now

    def _mark_occupancy(self) -> None:
        now = self.env.now
        self._busy_integral += self._in_use * (now - self._busy_marked_at)
        self._busy_marked_at = now

    def request(self, priority: int = 0) -> Event:
        grant = self.env.event()
        if self._in_use < self.capacity:
            self._mark_occupancy()
            self._in_use += 1
            grant.succeed()
        else:
            self._sequence += 1
            heapq.heappush(self._waiters, (priority, self._sequence, grant))
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            _, _, grant = heapq.heappop(self._waiters)
            grant.succeed()
        else:
            self._mark_occupancy()
            self._in_use -= 1

    def use(self, duration: float, priority: int = 0) -> Generator:
        yield self.request(priority)
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()
