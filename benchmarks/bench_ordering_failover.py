"""Ordering-service failover — committed TPS across ordering outages.

With ``orderer_nodes=3`` the ordering service is a Raft-style replicated
cluster. Two scenarios run for both vanilla Fabric and Fabric++:

``leader-kill``
    Crash whichever node currently leads at ``KILL_AT``; the remaining
    majority elects a successor within one election timeout. The
    headline: recovery is bounded by the election timeout plus a
    heartbeat interval, and committed throughput barely dips — the
    whole point of replicating the orderer.

``quorum-loss``
    Crash the leader *and* one follower, leaving a single node — no
    quorum, so ordering stalls for the full outage. Committed TPS
    visibly drops once the in-flight blocks drain and comes back after
    the crashed nodes recover.

Both scenarios must stay exactly-once: no transaction id ever occupies
two ledger slots, no matter how the leadership moved.

Set ``REPRO_BENCH_ARTIFACT=/path/to.json`` to dump the timeline and
recovery figures as a JSON artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from _bench_utils import paper_config

from repro.fabric.network import FabricNetwork
from repro.workloads.registry import make_workload

DURATION = 4.0
DRAIN = 3.0
KILL_AT = 1.5
OUTAGE = 1.0
BUCKET = 0.25


def failover_config(fabric_plus_plus: bool):
    config = replace(
        paper_config(block_size=64, clients_per_channel=2, client_rate=120.0),
        seed=9,
        orderer_nodes=3,
    )
    return config.with_fabric_plus_plus() if fabric_plus_plus else config


def run_failover(fabric_plus_plus: bool, kill_quorum: bool):
    config = failover_config(fabric_plus_plus)
    workload = make_workload("smallbank", seed=9, num_users=500, s_value=1.0)
    network = FabricNetwork(config, workload)
    cluster = network.orderer_cluster
    record = {}

    def killer():
        yield network.env.timeout(KILL_AT)
        # Kill whichever node leads right now — a function of simulation
        # state, so the whole scenario stays deterministic.
        leader = cluster.leadership_log[-1][2]
        victims = [leader]
        if kill_quorum:
            victims.append((leader + 1) % config.orderer_nodes)
        record["killed"] = victims
        record["kill_time"] = network.env.now
        for victim in victims:
            network.crash_orderer(victim)
        yield network.env.timeout(OUTAGE)
        for victim in victims:
            network.recover_orderer(victim)

    network.env.process(killer(), name="bench/leader-kill")
    metrics = network.run(DURATION, drain=DRAIN)

    # Recovery: first leadership takeover by a surviving node after the
    # kill. Under quorum loss no takeover can happen before the outage
    # ends, so the clock effectively measures the post-heal election.
    takeover_time = next(
        time
        for time, _channel, node, _term in cluster.leadership_log
        if time > record["kill_time"] and node not in record["killed"]
    )
    recovery = takeover_time - record["kill_time"]

    series = metrics.throughput_timeseries(BUCKET)

    def window_tps(lo: float, hi: float) -> float:
        buckets = [e["successful_tps"] for e in series if lo < e["t"] <= hi]
        return sum(buckets) / len(buckets) if buckets else 0.0

    # Exactly-once check over the reference ledger.
    seen = set()
    duplicates = 0
    for channel in network.channels:
        for block in network.reference_peer.channels[channel].ledger:
            for tx in list(block.transactions) + list(block.early_aborted):
                if tx.tx_id in seen:
                    duplicates += 1
                seen.add(tx.tx_id)

    return {
        "system": "Fabric++" if fabric_plus_plus else "Fabric",
        "scenario": "quorum-loss" if kill_quorum else "leader-kill",
        "killed_nodes": record["killed"],
        "kill_time": round(record["kill_time"], 3),
        "recovery_seconds": round(recovery, 4),
        "tps_before": round(window_tps(0.5, KILL_AT), 2),
        # The late half of the outage: in-flight blocks have drained, so
        # this window shows whether ordering is actually stalled.
        "tps_during": round(window_tps(KILL_AT + 0.5, KILL_AT + OUTAGE), 2),
        "tps_after": round(window_tps(KILL_AT + OUTAGE + 0.5, DURATION), 2),
        "committed": metrics.successful,
        "blocks": metrics.blocks_committed,
        "leader_changes": metrics.consensus.leader_changes,
        "txs_reproposed": metrics.consensus.txs_reproposed,
        "duplicate_tx_ids": duplicates,
        "timeline": series,
        "recovery_bound": (
            config.consensus.election_timeout_max
            + config.consensus.heartbeat_interval
        ),
    }


def run_all():
    return [
        run_failover(fabric_plus_plus, kill_quorum)
        for fabric_plus_plus in (False, True)
        for kill_quorum in (False, True)
    ]


def write_artifact(rows):
    path = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not path:
        return
    payload = {
        "benchmark": "ordering_failover",
        "duration": DURATION,
        "kill_at": KILL_AT,
        "outage": OUTAGE,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def test_ordering_failover(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_artifact(rows)
    print()
    for row in rows:
        print(
            "  {system:8s} {scenario:11s} killed={killed_nodes} "
            "recovery={recovery_seconds:.3f}s "
            "tps before/during/after = "
            "{tps_before:6.1f} / {tps_during:6.1f} / {tps_after:6.1f}".format(
                **row
            )
        )

    for row in rows:
        # Failover never loses or double-commits a transaction.
        assert row["duplicate_tx_ids"] == 0, row
        assert row["committed"] > 0, row
        assert row["tps_before"] > 0.0, row

    for row in rows:
        if row["scenario"] == "leader-kill":
            # A majority survives: takeover within one election timeout
            # plus a heartbeat (plus a millisecond message allowance) —
            # so fast the committed-TPS timeline barely registers it.
            assert (
                0.0 < row["recovery_seconds"] <= row["recovery_bound"] + 0.05
            ), row
            assert row["tps_during"] >= 0.5 * row["tps_before"], row
        else:
            # One node is no quorum: once in-flight blocks drain the
            # commit stream stops, then recovers after the heal.
            assert row["tps_during"] < 0.5 * row["tps_before"], row
            assert (
                row["recovery_seconds"]
                <= OUTAGE + row["recovery_bound"] + 0.05
            ), row
        assert row["tps_after"] > 0.5 * row["tps_before"], row
