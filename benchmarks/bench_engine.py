"""Engine wall-clock benchmark: the caliper smoke workload on the live
DES engine vs the frozen pre-overhaul snapshot.

The workload distils the paper's Caliper run (Table 8: 150 proposals/s
per client, 600 total, block size 512) into a pure-DES pipeline — open-
loop clients firing endorsement fan-outs across four peers with
capacity-2 CPUs, a batch cutter (512 tx or 0.5 s), and per-peer block
validation resolving per-tx commit gates. It exercises every hot engine
path in realistic proportion: sleeps, resource grants/handoffs, process
fan-out, AllOf joins, and same-instant succeed chains.

The baseline engine is ``benchmarks/_legacy_engine.py`` — a verbatim
snapshot of ``repro.sim`` before the fast-path rewrite, including its
``Resource``. Each engine runs the scenario in its idiomatic spelling
(the live engine uses bare-delay sleeps, the snapshot ``env.timeout``);
a hooked verification pass asserts both dispatch the *same number of
events* and commit the *same transactions*, so the wall-clock ratio
compares engines, not workloads.

Metrics (written to ``BENCH_engine.json``): events/sec, simulated
committed-tx/sec of real CPU, allocations/event, and the live/baseline
speedup. CI fails when the speedup regresses more than 20% against the
committed baseline file (the ratio is machine-independent; absolute
events/sec are not).

Environment knobs: ``REPRO_BENCH_ENGINE_RUNS`` (best-of, default 9),
``REPRO_BENCH_ENGINE_DURATION`` (simulated fire seconds, default 10).

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_engine.py \
        --json BENCH_engine.json            # measure + write
    PYTHONPATH=src:benchmarks python benchmarks/bench_engine.py \
        --check BENCH_engine.json           # measure + compare (CI gate)
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

import _legacy_engine as legacy

from repro.sim import engine as live
from repro.sim.resources import Resource as LiveResource

#: Caliper smoke scenario (Table 8 shape): 4 clients x 150 proposals/s.
CLIENTS = 4
RATE = 150.0
PEERS = 4
BLOCK_SIZE = 512
BATCH_TIMER = 0.5
DURATION = float(os.environ.get("REPRO_BENCH_ENGINE_DURATION", "10.0"))
DRAIN = 5.0
RUNS = int(os.environ.get("REPRO_BENCH_ENGINE_RUNS", "9"))

#: CI gate: fail when the speedup drops below this fraction of the
#: committed baseline's speedup.
REGRESSION_TOLERANCE = 0.80


def build_live(env):
    """The scenario in the live engine's idiom: bare-delay sleeps, the
    live ``Resource``. Keep in lockstep with :func:`build_baseline` —
    the verification pass asserts both produce identical event counts.
    """
    cpus = [LiveResource(env, capacity=2) for _ in range(PEERS)]
    val_cpus = [LiveResource(env, capacity=2) for _ in range(PEERS)]
    batch, stats = [], {"committed": 0}

    def endorse(p):
        yield 0.0005  # proposal network hop
        yield cpus[p].request(priority=1)
        yield 0.0002  # chaincode simulation on the peer CPU
        cpus[p].release()
        yield 0.0005  # endorsement reply hop
        return p

    def deliver(p, block):
        yield 0.001  # block broadcast hop
        yield val_cpus[p].request()
        yield 0.0001 * len(block)  # per-tx validation work
        val_cpus[p].release()
        if p == 0:
            for done in block:
                done.succeed()
            stats["committed"] += len(block)

    def cut(block):
        yield 0.002  # ordering latency
        for p in range(PEERS):
            env.process(deliver(p, block))

    def submit():
        yield env.all_of([env.process(endorse(p)) for p in range(PEERS)])
        yield 0.001  # broadcast to the orderer
        done = env.event()
        batch.append(done)
        if len(batch) >= BLOCK_SIZE:
            block, batch[:] = list(batch), []
            env.process(cut(block))
        yield done

    def cutter():
        while True:
            yield BATCH_TIMER
            if batch:
                block, batch[:] = list(batch), []
                env.process(cut(block))

    def fire_loop():
        period = 1.0 / RATE
        while env.now < DURATION:
            env.process(submit())
            yield period

    for _ in range(CLIENTS):
        env.process(fire_loop())
    env.process(cutter())
    return stats


def build_baseline(env):
    """The identical scenario in the pre-overhaul idiom: ``env.timeout``
    sleeps and the snapshot ``Resource``."""
    cpus = [legacy.Resource(env, capacity=2) for _ in range(PEERS)]
    val_cpus = [legacy.Resource(env, capacity=2) for _ in range(PEERS)]
    batch, stats = [], {"committed": 0}

    def endorse(p):
        yield env.timeout(0.0005)
        yield cpus[p].request(priority=1)
        yield env.timeout(0.0002)
        cpus[p].release()
        yield env.timeout(0.0005)
        return p

    def deliver(p, block):
        yield env.timeout(0.001)
        yield val_cpus[p].request()
        yield env.timeout(0.0001 * len(block))
        val_cpus[p].release()
        if p == 0:
            for done in block:
                done.succeed()
            stats["committed"] += len(block)

    def cut(block):
        yield env.timeout(0.002)
        for p in range(PEERS):
            env.process(deliver(p, block))

    def submit():
        yield env.all_of([env.process(endorse(p)) for p in range(PEERS)])
        yield env.timeout(0.001)
        done = env.event()
        batch.append(done)
        if len(batch) >= BLOCK_SIZE:
            block, batch[:] = list(batch), []
            env.process(cut(block))
        yield done

    def cutter():
        while True:
            yield env.timeout(BATCH_TIMER)
            if batch:
                block, batch[:] = list(batch), []
                env.process(cut(block))

    def fire_loop():
        period = 1.0 / RATE
        while env.now < DURATION:
            env.process(submit())
            yield env.timeout(period)

    for _ in range(CLIENTS):
        env.process(fire_loop())
    env.process(cutter())
    return stats


def verify(module, builder):
    """Hooked run: dispatched-event count + committed tx (for the
    cross-engine equality assertion)."""
    env = module.Environment()
    stats = builder(env)
    count = [0]

    def hook(_time, _event):
        count[0] += 1

    env.set_trace_hook(hook)
    env.run(until=DURATION + DRAIN)
    return count[0], stats["committed"]


def timed_run(module, builder):
    """One unhooked wall-time sample (GC off, like-for-like)."""
    env = module.Environment()
    builder(env)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        env.run(until=DURATION + DRAIN)
        return time.perf_counter() - start
    finally:
        gc.enable()


def count_allocations(module, builder):
    """Event-object allocations (Event/Timeout/Process and subclasses)
    over one run, counted via a patched ``Event.__new__``.

    This is the metric the pooling/bare-delay work drives toward zero:
    the baseline allocates an event object per scheduled occurrence,
    the live engine only for gates, grants, combinators, and processes
    — pooled timeouts and bare-delay sleeps allocate nothing.
    """
    counter = [0]

    def counting_new(cls, *_args, **_kwargs):
        counter[0] += 1
        return object.__new__(cls)

    module.Event.__new__ = counting_new
    try:
        env = module.Environment()
        builder(env)
        env.run(until=DURATION + DRAIN)
    finally:
        del module.Event.__new__
    return counter[0]


def run_benchmark():
    live_events, live_tx = verify(live, build_live)
    base_events, base_tx = verify(legacy, build_baseline)
    if live_events != base_events or live_tx != base_tx:
        raise SystemExit(
            f"engine divergence: live {live_events} events/{live_tx} tx, "
            f"baseline {base_events} events/{base_tx} tx"
        )

    # Interleave the timed samples so machine-load drift during the
    # benchmark hits both engines alike; keep the best of each.
    base_wall = live_wall = None
    for _ in range(RUNS):
        sample = timed_run(legacy, build_baseline)
        base_wall = sample if base_wall is None else min(base_wall, sample)
        sample = timed_run(live, build_live)
        live_wall = sample if live_wall is None else min(live_wall, sample)

    base_blocks = count_allocations(legacy, build_baseline)
    live_blocks = count_allocations(live, build_live)

    def side(events, tx, wall, blocks):
        return {
            "wall_seconds": round(wall, 6),
            "events_per_sec": round(events / wall, 1),
            "sim_tx_per_cpu_sec": round(tx / wall, 1),
            "allocations_per_event": round(blocks / events, 4),
        }

    report = {
        "workload": "caliper-smoke",
        "params": {
            "clients": CLIENTS,
            "rate_per_client": RATE,
            "peers": PEERS,
            "block_size": BLOCK_SIZE,
            "batch_timer": BATCH_TIMER,
            "duration": DURATION,
            "drain": DRAIN,
            "runs": RUNS,
        },
        "events": live_events,
        "committed_tx": live_tx,
        "baseline": side(base_events, base_tx, base_wall, base_blocks),
        "engine": side(live_events, live_tx, live_wall, live_blocks),
        "speedup_events_per_sec": round(base_wall / live_wall, 3),
        "python": platform.python_version(),
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the report to PATH"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare the measured speedup against a committed report; "
        f"fail below {REGRESSION_TOLERANCE:.0%} of its speedup",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    base = report["baseline"]
    eng = report["engine"]
    print(
        f"caliper-smoke: {report['events']} events, "
        f"{report['committed_tx']} committed tx"
    )
    print(
        f"  baseline: {base['events_per_sec']:>12,.0f} events/s  "
        f"{base['sim_tx_per_cpu_sec']:>8,.0f} tx/s  "
        f"{base['allocations_per_event']:>7.3f} allocs/event  "
        f"({base['wall_seconds'] * 1e3:.0f} ms)"
    )
    print(
        f"  engine:   {eng['events_per_sec']:>12,.0f} events/s  "
        f"{eng['sim_tx_per_cpu_sec']:>8,.0f} tx/s  "
        f"{eng['allocations_per_event']:>7.3f} allocs/event  "
        f"({eng['wall_seconds'] * 1e3:.0f} ms)"
    )
    print(f"  speedup: {report['speedup_events_per_sec']:.2f}x events/sec")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        with open(args.check) as handle:
            committed = json.load(handle)
        committed_speedup = committed["speedup_events_per_sec"]
        floor = committed_speedup * REGRESSION_TOLERANCE
        measured = report["speedup_events_per_sec"]
        print(
            f"check: measured {measured:.2f}x vs committed "
            f"{committed_speedup:.2f}x (floor {floor:.2f}x)"
        )
        if measured < floor:
            raise SystemExit(
                f"engine speed regression: {measured:.2f}x < {floor:.2f}x "
                f"({REGRESSION_TOLERANCE:.0%} of committed "
                f"{committed_speedup:.2f}x)"
            )
        print("check: OK")


if __name__ == "__main__":
    main()
