"""Ablation — sensitivity of reordering to the cycle-enumeration cap.

Dense conflict graphs contain exponentially many elementary cycles;
Fabric++ must bound Johnson's enumeration. This ablation sweeps the cap
on a hot-key block (the Figure 9/10 workload shape) and shows that the
greedy abort choice stops changing after a few hundred counted cycles
while enumeration time keeps rising — the basis for the library default
(`FabricConfig.max_cycles_per_block = 1000`).
"""

from _bench_utils import bench_map

from repro.bench.report import format_table
from repro.core.reorder import reorder
from repro.ledger.state_db import Version
from repro.sim.distributions import Rng
from repro.testing import count_valid_in_order
from repro.fabric.rwset import ReadWriteSet

CAPS = [10, 50, 200, 1000, 4000]


def hot_key_block(n=512, n_keys=10_000, rw=8, hot_fraction=0.01,
                  hot_read=0.4, hot_write=0.1, seed=3):
    rng = Rng(seed)
    version = Version(1, 0)
    hot = max(1, int(n_keys * hot_fraction))

    def pick(probability):
        if rng.bernoulli(probability):
            return rng.randint(0, hot - 1)
        return rng.randint(hot, n_keys - 1)

    block = []
    for _ in range(n):
        rwset = ReadWriteSet()
        for _ in range(rw):
            rwset.record_read(f"k{pick(hot_read)}", version)
        for _ in range(rw):
            rwset.record_write(f"k{pick(hot_write)}", 1)
        block.append(rwset)
    return block


def measure_cap(cap):
    block = hot_key_block()
    result = reorder(block, max_cycles=cap)
    return {
        "max_cycles": cap,
        "kept": result.num_kept,
        "aborted": len(result.aborted),
        "valid_after_replay": count_valid_in_order(block, result.schedule),
        "time_ms": result.elapsed_seconds * 1000,
    }


def run_ablation():
    return bench_map(measure_cap, CAPS, label="cycle-cap")


def test_ablation_cycle_cap(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: reordering vs cycle cap"))
    # Quality: every scheduled transaction survives the replay oracle.
    for row in rows:
        assert row["valid_after_replay"] == row["kept"]
    # The kept count stabilises once a few hundred cycles are counted.
    stabilised = [row["kept"] for row in rows if row["max_cycles"] >= 200]
    assert max(stabilised) - min(stabilised) <= 0.02 * len(hot_key_block())


if __name__ == "__main__":
    print(format_table(run_ablation(), title="cycle-cap ablation"))
