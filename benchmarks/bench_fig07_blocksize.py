"""Figure 7 — the impact of the block size (16 .. 2048 transactions).

Smallbank, Pw=95% (write-heavy), uniform account selection (s=0). Both
systems gain throughput with larger blocks (less per-block overhead), and
Fabric++ gains more at large blocks because its reordering has more
within-block freedom to exploit.

Expected shape: monotone-ish growth with diminishing returns for both
systems; Fabric++ >= Fabric everywhere, gap widening with block size.
"""

from _bench_utils import (
    bench_sweep,
    both_specs,
    full_sweep,
    paper_config,
    smallbank_ref,
)

from repro.bench.report import format_series

BLOCK_SIZES_QUICK = [16, 64, 256, 1024, 2048]
BLOCK_SIZES_FULL = [16, 32, 64, 128, 256, 512, 1024, 2048]


def run_figure7():
    block_sizes = BLOCK_SIZES_FULL if full_sweep() else BLOCK_SIZES_QUICK
    specs = []
    for block_size in block_sizes:
        specs += both_specs(
            paper_config(block_size=block_size),
            smallbank_ref(prob_write=0.95, s_value=0.0),
            params={"BS": block_size},
        )
    series = {"Fabric": [], "Fabric++": []}
    for result in bench_sweep(specs).values():
        series[result.label].append(result.successful_tps)
    return block_sizes, series


def test_fig07_blocksize(benchmark):
    block_sizes, series = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "blocksize", block_sizes, series,
            title="Figure 7: successful TPS vs block size (Smallbank Pw=95%, s=0)",
        )
    )
    fabric, fabricpp = series["Fabric"], series["Fabric++"]
    # Larger blocks help: the largest block size beats the smallest.
    assert fabric[-1] > fabric[0]
    assert fabricpp[-1] > fabricpp[0]
    # Fabric++ never loses to Fabric (small tolerance for noise).
    for vanilla_tps, plus_tps in zip(fabric, fabricpp):
        assert plus_tps >= 0.9 * vanilla_tps


if __name__ == "__main__":
    block_sizes, series = run_figure7()
    print(format_series("blocksize", block_sizes, series, title="Figure 7"))
