"""Opt-in pipeline tracing and per-resource cost attribution.

See ``docs/observability.md`` for the span taxonomy and exporter formats.
"""

from repro.trace.cost import RESOURCES, CostBreakdown
from repro.trace.exporters import (
    chrome_trace_document,
    chrome_trace_events,
    trace_csv,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_trace_csv,
)
from repro.trace.tracer import ASYNC, INSTANT, SYNC, Span, TraceBuffer, Tracer

__all__ = [
    "ASYNC",
    "INSTANT",
    "SYNC",
    "CostBreakdown",
    "RESOURCES",
    "Span",
    "TraceBuffer",
    "Tracer",
    "chrome_trace_document",
    "chrome_trace_events",
    "trace_csv",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_trace_csv",
]
