"""Trace exporters: Chrome ``trace_event`` JSON and flat CSV.

The Chrome format loads directly into ``chrome://tracing`` and Perfetto.
Simulated seconds are exported as microseconds (the format's native
unit). Three span modes map onto trace phases:

- sync spans -> ``"X"`` complete events on a named thread track; within
  one track they nest properly (a block-validation span contains its
  per-transaction spans),
- async spans -> ``"b"``/``"e"`` nestable async pairs keyed by the
  transaction id, so overlapping per-transaction work (concurrent
  endorsements, queued ordering) renders on its own id-grouped track,
- instants -> ``"i"`` marks (outcomes, fault events).

Counter samples (from :class:`repro.sim.monitor.Sampler`) become ``"C"``
counter events on the same timeline, so queue depths line up under the
spans that caused them.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.errors import ReproError
from repro.trace.tracer import ASYNC, INSTANT, SYNC, Tracer

#: Process id stamped on every event (the whole simulation is one "process").
TRACE_PID = 1


def _microseconds(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """The tracer's contents as a list of Chrome ``trace_event`` dicts."""
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro-sim"},
        }
    ]
    track_ids: Dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = track_ids.get(track)
        if tid is None:
            tid = len(track_ids) + 1
            track_ids[track] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    for span in tracer.spans():
        tid = tid_for(span.track)
        args = dict(span.args)
        if span.tx_id is not None:
            args["tx_id"] = span.tx_id
        common = {"name": span.name, "cat": span.cat, "pid": TRACE_PID, "tid": tid}
        if span.mode == SYNC:
            events.append(
                {
                    **common,
                    "ph": "X",
                    "ts": _microseconds(span.start),
                    "dur": _microseconds(span.duration),
                    "args": args,
                }
            )
        elif span.mode == ASYNC:
            identifier = span.tx_id if span.tx_id is not None else span.name
            events.append(
                {
                    **common,
                    "ph": "b",
                    "id": identifier,
                    "ts": _microseconds(span.start),
                    "args": args,
                }
            )
            events.append(
                {
                    **common,
                    "ph": "e",
                    "id": identifier,
                    "ts": _microseconds(span.end),
                    "args": {},
                }
            )
        elif span.mode == INSTANT:
            events.append(
                {
                    **common,
                    "ph": "i",
                    "ts": _microseconds(span.start),
                    "s": "t",
                    "args": args,
                }
            )
    for t, name, value in tracer.counters:
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": TRACE_PID,
                "tid": 0,
                "ts": _microseconds(t),
                "args": {"value": value},
            }
        )
    return events


def chrome_trace_document(tracer: Tracer) -> dict:
    """The full Chrome trace JSON document (``traceEvents`` envelope)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": tracer.summary(),
    }


def write_chrome_trace(path, tracer: Tracer) -> None:
    """Serialise the tracer to ``path`` as Chrome trace JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_document(tracer), handle)


#: Columns of the flat CSV export, in order.
CSV_COLUMNS = ("start", "end", "duration", "name", "cat", "track", "tx_id", "args")


def trace_csv(tracer: Tracer) -> str:
    """The tracer's spans as a flat CSV document (one row per span)."""
    output = io.StringIO()
    writer = csv.writer(output)
    writer.writerow(CSV_COLUMNS)
    for span in tracer.spans():
        writer.writerow(
            [
                repr(span.start),
                repr(span.end),
                repr(span.duration),
                span.name,
                span.cat,
                span.track,
                span.tx_id or "",
                json.dumps(span.args, sort_keys=True, default=str),
            ]
        )
    return output.getvalue()


def write_trace_csv(path, tracer: Tracer) -> None:
    """Write the CSV export to ``path``."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(trace_csv(tracer))


# -- validation (used by the CI trace-smoke job and tests) ----------------------


def validate_chrome_trace(document: dict) -> Dict[str, int]:
    """Validate a Chrome trace document; raise :class:`ReproError` on problems.

    Checks the envelope, per-event required fields, proper nesting of
    ``"X"`` spans within each thread track, and balanced ``"b"``/``"e"``
    async pairs. Returns counts per phase for reporting.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ReproError("not a Chrome trace document: missing traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ReproError("trace document has no events")

    counts: Dict[str, int] = {}
    sync_by_tid: Dict[int, List[dict]] = {}
    async_depth: Dict[tuple, int] = {}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ("M", "X", "b", "e", "i", "C"):
            raise ReproError(f"event {index}: unknown phase {phase!r}")
        counts[phase] = counts.get(phase, 0) + 1
        if phase == "M":
            continue
        if "ts" not in event or "pid" not in event or "tid" not in event:
            raise ReproError(f"event {index}: missing ts/pid/tid")
        if phase == "X":
            if event.get("dur", -1) < 0:
                raise ReproError(f"event {index}: X event with negative dur")
            sync_by_tid.setdefault(event["tid"], []).append(event)
        elif phase in ("b", "e"):
            key = (event.get("cat"), event.get("name"), event.get("id"))
            if key[2] is None:
                raise ReproError(f"event {index}: async event without id")
            depth = async_depth.get(key, 0) + (1 if phase == "b" else -1)
            if depth < 0:
                raise ReproError(f"event {index}: async 'e' without matching 'b'")
            async_depth[key] = depth
    unbalanced = [key for key, depth in async_depth.items() if depth != 0]
    if unbalanced:
        raise ReproError(f"unbalanced async spans: {unbalanced[:5]}")

    # X spans on one thread track must nest: sorted by (start, -duration),
    # every span must fit entirely inside the enclosing open span.
    for tid, spans in sync_by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[tuple] = []
        for event in spans:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1][1] - 1e-9:
                stack.pop()
            if stack and end > stack[-1][1] + 1e-9:
                raise ReproError(
                    f"tid {tid}: span {event.get('name')!r} at ts={start} "
                    f"overlaps its enclosing span instead of nesting"
                )
            stack.append((start, end))
    return counts


def validate_chrome_trace_file(path) -> Dict[str, int]:
    """Load ``path`` and validate it as a Chrome trace document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read trace file {path}: {error}") from error
    return validate_chrome_trace(document)
