"""The tracer: spans, ring buffer, counters, and cost charges.

An opt-in, zero-cost-when-off observability layer. A :class:`Tracer` is
created by the caller (harness, CLI, or test), handed to
:class:`~repro.fabric.network.FabricNetwork`, and threaded through every
pipeline stage. When no tracer is passed the pipeline takes exactly the
same code paths, schedules the same events and draws the same randomness
as a build without this module — bit-identity is enforced by the golden
tests in ``tests/trace``.

Spans record *simulated* time (the DES clock); wall-clock quantities such
as the reordering computation's ``elapsed_seconds`` travel only in span
``args`` — the separate wall-clock channel — never in result objects, so
traced runs stay deterministic field-for-field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.cost import CostBreakdown

#: Span rendering modes, mapped to Chrome trace_event phases by the
#: exporter: "sync" spans live on a thread track and must nest properly;
#: "async" spans get their own id-keyed track and may overlap freely;
#: "instant" marks a point in time.
SYNC = "sync"
ASYNC = "async"
INSTANT = "instant"


@dataclass
class Span:
    """One traced interval (or instant) of simulated time."""

    name: str
    #: Category: client / endorse / order / validate / net / fault.
    cat: str
    #: The actor track the span belongs to (peer, client, orderer name).
    track: str
    #: Simulated start / end seconds. Equal for instants.
    start: float
    end: float
    #: Transaction id the span belongs to, if any.
    tx_id: Optional[str] = None
    #: Rendering mode: SYNC, ASYNC, or INSTANT.
    mode: str = SYNC
    #: Free-form details (counts, outcomes, wall-clock channel values).
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start


class TraceBuffer:
    """A fixed-capacity ring buffer of spans.

    When full, the oldest span is overwritten and counted in ``dropped``
    — tracing a long run keeps the most recent window instead of growing
    without bound.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"trace buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: List[Span] = []
        self._cursor = 0
        self.dropped = 0

    def append(self, span: Span) -> None:
        """Add ``span``, evicting the oldest entry when full."""
        if len(self._items) < self.capacity:
            self._items.append(span)
            return
        self._items[self._cursor] = span
        self._cursor = (self._cursor + 1) % self.capacity
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._items)

    def spans(self) -> List[Span]:
        """The retained spans, oldest first."""
        return self._items[self._cursor:] + self._items[: self._cursor]


class Tracer:
    """Collects spans, counter samples, and per-resource cost charges.

    Every hook is cheap plain-Python bookkeeping: no simulation events
    are scheduled and no randomness is drawn, so a traced run commits the
    exact same ledger as an untraced one.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.buffer = TraceBuffer(capacity)
        self.breakdown = CostBreakdown()
        #: Counter samples: (simulated time, counter name, value).
        self.counters: List[Tuple[float, str, float]] = []
        #: Crypto primitive invocations observed via the signing hooks.
        self.crypto_ops: Dict[str, int] = {}
        #: Events processed by the sim engine while attached (clock hook).
        self.engine_events = 0
        self._env = None

    # -- environment binding -------------------------------------------------

    def bind(self, env) -> None:
        """Attach to ``env``: the tracer reads its clock and counts its
        scheduler steps (the engine's span-clock hook)."""
        self._env = env
        env.set_trace_hook(self.on_engine_event)

    @property
    def now(self) -> float:
        """Current simulated time of the bound environment."""
        return self._env.now if self._env is not None else 0.0

    def on_engine_event(self, time: float, event) -> None:
        """Engine hook: called once per processed scheduler event."""
        self.engine_events += 1

    # -- span recording ------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        end: Optional[float] = None,
        tx_id: Optional[str] = None,
        mode: str = SYNC,
        **args: object,
    ) -> Span:
        """Record a completed span from ``start`` to ``end`` (default now)."""
        span = Span(
            name=name,
            cat=cat,
            track=track,
            start=start,
            end=self.now if end is None else end,
            tx_id=tx_id,
            mode=mode,
            args=args,
        )
        self.buffer.append(span)
        return span

    def instant(
        self,
        name: str,
        cat: str,
        track: str,
        tx_id: Optional[str] = None,
        **args: object,
    ) -> Span:
        """Record a point-in-time marker at the current simulated time."""
        return self.span(
            name, cat, track, start=self.now, end=self.now,
            tx_id=tx_id, mode=INSTANT, **args,
        )

    # -- cost attribution ----------------------------------------------------

    def charge(self, resource: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of simulated time to ``resource``."""
        self.breakdown.charge(resource, seconds, count)

    # -- counter timeline (Sampler integration) ------------------------------

    def counter(self, name: str, value: float, t: Optional[float] = None) -> None:
        """Record one counter sample on the trace timeline."""
        self.counters.append((self.now if t is None else t, name, float(value)))

    # -- crypto hooks --------------------------------------------------------

    def record_crypto_op(self, kind: str, payload_size: int) -> None:
        """Signing-module hook: count one sign/verify primitive call."""
        self.crypto_ops[kind] = self.crypto_ops.get(kind, 0) + 1

    # -- summaries -----------------------------------------------------------

    def spans(self) -> List[Span]:
        """All retained spans, oldest first."""
        return self.buffer.spans()

    def span_counts(self) -> Dict[str, int]:
        """Number of retained spans per name (for reports and tests)."""
        counts: Dict[str, int] = {}
        for span in self.buffer.spans():
            counts[span.name] = counts.get(span.name, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> Dict[str, object]:
        """Headline tracing figures for reports."""
        return {
            "spans": len(self.buffer),
            "spans_dropped": self.buffer.dropped,
            "counter_samples": len(self.counters),
            "engine_events": self.engine_events,
            "crypto_ops": dict(sorted(self.crypto_ops.items())),
            "attributed_seconds": round(self.breakdown.total_seconds, 4),
        }
