"""Per-resource cost attribution — the Figure 1 decomposition.

The paper's central empirical claim (Figure 1) is that Fabric's
end-to-end cost is dominated by cryptographic computation and networking
rather than transaction logic. :class:`CostBreakdown` reproduces that
decomposition for one simulated run: every simulated second the pipeline
spends is charged to exactly one *resource* at the call site that spends
it, summed over every actor in the network (all peers, the orderer
machine, the client machine) — a CPU-seconds view, not a latency view.

Resources:

- ``sign`` — producing signatures: client proposal assembly/signing and
  endorsement signing at the peers.
- ``verify`` — checking signatures: the client's endorsement checks and
  the per-endorsement validation work on every peer.
- ``network`` — message hops (proposal, endorsement, transaction
  submission) and block distribution including gossip hops.
- ``logic`` — transaction logic: chaincode state operations during
  simulation.
- ``mvcc`` — the MVCC conflict check during validation. Every
  concurrency-control strategy in ``repro.validation`` charges its
  conflict checks here, so breakdowns are comparable across
  strategies.
- ``ordering`` — orderer CPU: per-transaction envelope handling, block
  cutting/consensus, and Fabric++'s reordering computation.
- ``ledger`` — per-block ledger append / state flush overhead.

``crypto`` in reports is the sum of ``sign`` and ``verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Canonical resource names, in report order.
RESOURCES = ("sign", "verify", "network", "logic", "mvcc", "ordering", "ledger")


@dataclass
class CostBreakdown:
    """Aggregate simulated seconds (and operation counts) per resource."""

    #: Total simulated seconds charged to each resource.
    seconds: Dict[str, float] = field(default_factory=dict)
    #: Number of individual charges per resource (operation counts).
    operations: Dict[str, int] = field(default_factory=dict)

    def charge(self, resource: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of simulated time to ``resource``."""
        self.seconds[resource] = self.seconds.get(resource, 0.0) + seconds
        self.operations[resource] = self.operations.get(resource, 0) + count

    @property
    def total_seconds(self) -> float:
        """Total simulated seconds attributed across all resources."""
        return sum(self.seconds.values())

    @property
    def crypto_seconds(self) -> float:
        """Simulated seconds spent on cryptography (sign + verify)."""
        return self.seconds.get("sign", 0.0) + self.seconds.get("verify", 0.0)

    @property
    def network_seconds(self) -> float:
        """Simulated seconds spent on networking."""
        return self.seconds.get("network", 0.0)

    def fraction(self, resource: str) -> float:
        """Share of the total attributed to ``resource`` (0 when empty)."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return self.seconds.get(resource, 0.0) / total

    def crypto_network_share(self) -> float:
        """Combined share of cryptography + networking — Figure 1's claim."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return (self.crypto_seconds + self.network_seconds) / total

    def rows(self) -> List[Dict[str, object]]:
        """Flat dict-rows (one per resource) for ``format_table``."""
        ordered = list(RESOURCES) + sorted(
            key for key in self.seconds if key not in RESOURCES
        )
        return [
            {
                "resource": resource,
                "seconds": round(self.seconds.get(resource, 0.0), 4),
                "share": f"{100.0 * self.fraction(resource):.1f}%",
                "ops": self.operations.get(resource, 0),
            }
            for resource in ordered
            if resource in self.seconds
        ]

    def table(self, title: str = "cost breakdown (simulated seconds)") -> str:
        """Figure 1-style text table plus the crypto+network share line."""
        from repro.bench.report import format_table

        body = format_table(self.rows(), title=title)
        share = 100.0 * self.crypto_network_share()
        return f"{body}\ncrypto + network share: {share:.1f}%"

    # -- (de)serialisation, for metrics snapshots and result rows ------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, stable key order, for JSON round-tripping."""
        return {
            "seconds": {k: self.seconds[k] for k in sorted(self.seconds)},
            "operations": {
                k: self.operations[k] for k in sorted(self.operations)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CostBreakdown":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            seconds=dict(data.get("seconds", {})),
            operations=dict(data.get("operations", {})),
        )
