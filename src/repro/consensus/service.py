"""The replicated ordering facade: the cluster behind one channel's intake.

:class:`ReplicatedOrderingService` presents the same surface as
:class:`~repro.fabric.orderer.OrderingService` — ``submit``, batch
cutting, the reorder/early-abort transform, ``install_stalls``,
``flush``, the ``blocks_cut``/``txs_received`` counters — but a cut batch
becomes a peer-visible block only after the channel's Raft group has
committed its log entry on a quorum of orderer nodes.

Failover correctness rests on three pieces:

- *Authoritative apply*: block ids and the tip hash are assigned at
  commit time, in committed-log order, never at proposal time — so a
  leader whose proposals are lost cannot burn ids or fork the chain.
- *Re-proposal*: the facade tracks every unresolved transaction; when it
  adopts a new leader (monotone by term — modelling Raft client
  redirection), any pending transaction absent from that leader's entire
  log is re-queued through the cutter, so no accepted transaction is
  lost to a failover.
- *Apply-time dedup*: the same transaction can legitimately end up in
  two committed entries (an inherited old-term entry committing after
  the facade already re-proposed its batch through a newer leader);
  the committed-id set suppresses the second occurrence, keeping commits
  exactly-once per tx id.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.consensus.cluster import OrdererCluster
from repro.consensus.raft import LEADER, LogEntry, RaftGroup, RaftReplica
from repro.core.batch_cutter import BatchCutter, CutReason
from repro.core.early_abort import filter_stale_within_block
from repro.core.reorder import reorder
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.transaction import Transaction
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.sim.engine import Environment
from repro.sim.resources import Store
from repro.trace.tracer import ASYNC, Tracer


class ReplicatedOrderingService:
    """Ordering pipeline of one channel, backed by the Raft cluster."""

    def __init__(
        self,
        env: Environment,
        channel: str,
        channel_index: int,
        config: FabricConfig,
        cluster: OrdererCluster,
        broadcast: Callable[[str, Block], None],
        notify: Callable[[str, TxOutcome], None],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.channel = channel
        self.config = config
        self.cluster = cluster
        self.tracer = tracer
        self.incoming: Store = Store(env)
        self._broadcast = broadcast
        self._notify = notify
        self._cutter = BatchCutter(
            config.batch,
            track_unique_keys=config.reordering,
        )
        # Authoritative chain state, advanced only at commit time.
        self._next_block_id = 1
        self._tip_hash = GENESIS_HASH
        self._applied = 0
        self._committed_tx_ids: set = set()
        # Unresolved transactions in submission order (dict = ordered).
        self._pending: Dict[str, Transaction] = {}
        # Ids currently sitting in the intake store or the cutter, i.e.
        # not yet inside any proposed log entry.
        self._unproposed: set = set()
        self._generation = 0
        self._stall_windows: tuple = ()
        # Leadership adoption (monotone by term).
        self._adopted: Optional[RaftReplica] = None
        self._adopted_term = 0
        self._leader_event = env.event()
        self.blocks_cut = 0
        self.txs_received = 0
        self.txs_early_aborted = 0
        #: Backpressure: shared OverloadStats, attached by the network
        #: when a queue bound is configured (same contract as the single
        #: orderer). Internal re-proposal paths bypass admission — an
        #: accepted transaction is never dropped by its own failover.
        self.overload = None
        self.group = RaftGroup(
            cluster,
            channel,
            channel_index,
            config,
            on_leader=self._adopt,
            on_commit=self._on_commit,
            tracer=tracer,
        )
        self.group.start()
        env.process(self._receiver(), name=f"orderer/{channel}")

    @property
    def next_block_id(self) -> int:
        """Id the next committed block will carry (committed tip + 1)."""
        return self._next_block_id

    @property
    def pending_count(self) -> int:
        """Transactions accepted but not yet resolved (liveness probe)."""
        return len(self._pending)

    # -- receiving -----------------------------------------------------------

    def submit(self, transaction: Transaction) -> bool:
        """Accept a transaction from a client.

        Returns False when admission control rejects it at a full bounded
        queue — before any pending-state bookkeeping, so a rejected
        transaction is never re-proposed across failovers. True means
        accepted (the historical unbounded behavior when no bound is
        configured).
        """
        stats = self.overload
        if stats is not None:
            stats.submissions += 1
            limit = self.config.backpressure.orderer_queue_limit
            depth = len(self.incoming)
            if 0 < limit <= depth:
                stats.orderer_rejections += 1
                return False
            stats.queue_depth_sum += depth
            if depth > stats.queue_depth_peak:
                stats.queue_depth_peak = depth
        if self.tracer is not None:
            transaction.orderer_arrival = self.env.now
        self.txs_received += 1
        self._pending[transaction.tx_id] = transaction
        self._unproposed.add(transaction.tx_id)
        self.incoming.put(transaction)
        return True

    def install_stalls(self, windows: tuple) -> None:
        """Fault injection: stall intake/cutting during the given windows."""
        self._stall_windows = tuple(windows)

    def _maybe_stall(self) -> Generator:
        for window in self._stall_windows:
            if window.at <= self.env.now < window.until:
                yield window.until - self.env.now

    def _receiver(self) -> Generator:
        while True:
            transaction = yield self.incoming.get()
            yield from self._maybe_stall()
            leader = yield from self._await_leader()
            yield from leader.node.cpu.use(self.config.costs.order_tx)
            if self.tracer is not None:
                self.tracer.charge("ordering", self.config.costs.order_tx)
            was_empty = self._cutter.is_empty
            reason = self._cutter.add(transaction, self.env.now)
            if reason is not None:
                yield from self._cut(reason)
            elif was_empty:
                self.env.process(
                    self._batch_timer(self._generation, self._cutter.deadline()),
                    name=f"orderer/{self.channel}/timer",
                )

    def _batch_timer(self, generation: int, deadline: Optional[float]) -> Generator:
        if deadline is None:  # pragma: no cover - defensive
            return
        yield max(0.0, deadline - self.env.now)
        # Same contract as the single orderer: never cut mid-stall, and a
        # size cut racing the timeout during the stall wins (generation).
        yield from self._maybe_stall()
        if generation == self._generation and not self._cutter.is_empty:
            yield from self._cut(CutReason.TIMEOUT)

    # -- leadership ----------------------------------------------------------

    def _usable_leader(self) -> Optional[RaftReplica]:
        """The adopted leader, while it is alive and still believes it
        leads. A stale minority leader is deliberately still usable:
        transactions proposed into its doomed log model client requests
        lost to the wrong side of a partition, and are re-proposed once
        the majority side elects a successor."""
        adopted = self._adopted
        if adopted is not None and adopted.role == LEADER and not adopted.node.crashed:
            return adopted
        return None

    def _await_leader(self) -> Generator:
        while True:
            leader = self._usable_leader()
            if leader is not None:
                return leader
            yield self._leader_event

    def _adopt(self, replica: RaftReplica) -> None:
        """Follow a leadership change (Raft clients re-discover leaders);
        re-propose every pending transaction the new leader's log lacks."""
        if replica.current_term <= self._adopted_term:
            return
        self._adopted = replica
        self._adopted_term = replica.current_term
        in_log: set = set()
        for entry in replica.log:
            for tx in entry.batch:
                in_log.add(tx.tx_id)
            for tx in entry.early_aborted:
                in_log.add(tx.tx_id)
        requeued = 0
        for tx_id, transaction in list(self._pending.items()):
            if (
                tx_id in in_log
                or tx_id in self._unproposed
                or tx_id in self._committed_tx_ids
            ):
                continue
            # The previous transform may have stamped an abort reason the
            # fresh cut will recompute against the new batch composition.
            transaction.failure_reason = None
            self._unproposed.add(tx_id)
            self.incoming.put(transaction)
            requeued += 1
        if requeued:
            self.group.stats.txs_reproposed += requeued
        waiters, self._leader_event = self._leader_event, self.env.event()
        waiters.succeed()

    # -- cutting & proposing -------------------------------------------------

    def _cut(self, reason: CutReason) -> Generator:
        batch = self._cutter.cut(reason)
        self._generation += 1
        if not batch:  # pragma: no cover - cut() callers guard non-empty
            return
        yield from self._maybe_stall()
        leader = yield from self._await_leader()
        costs = self.config.costs
        yield from leader.node.cpu.use(costs.order_block)
        if self.tracer is not None:
            self.tracer.charge("ordering", costs.order_block)

        early_aborted: List[Transaction] = []
        if self.config.early_abort_ordering:
            batch, version_aborts = self._apply_version_filter(batch)
            early_aborted.extend(version_aborts)

        if self.config.reordering and batch:
            yield from leader.node.cpu.use(costs.reorder_per_tx * len(batch))
            if self.tracer is not None:
                self.tracer.charge(
                    "ordering", costs.reorder_per_tx * len(batch), count=len(batch)
                )
            rwsets = [tx.rwset for tx in batch]
            result = reorder(rwsets, max_cycles=self.config.max_cycles_per_block)
            for index in result.aborted:
                tx = batch[index]
                tx.failure_reason = TxOutcome.EARLY_ABORT_CYCLE.value
                early_aborted.append(tx)
            batch = [batch[index] for index in result.schedule]

        for tx in batch:
            self._unproposed.discard(tx.tx_id)
        for tx in early_aborted:
            self._unproposed.discard(tx.tx_id)

        # Leadership may have moved while we held the leader's CPU; a
        # refused proposal recycles the whole batch through the intake.
        if not leader.propose(batch, early_aborted):
            for tx in list(batch) + early_aborted:
                tx.failure_reason = None
                self._unproposed.add(tx.tx_id)
                self.incoming.put(tx)

    def _apply_version_filter(
        self, batch: List[Transaction]
    ) -> Tuple[List[Transaction], List[Transaction]]:
        """Within-block version-mismatch early abort (Section 5.2.2).

        Unlike the single orderer, clients are notified only when the
        entry carrying the abort *commits* — an abort proposed into a
        doomed leader's log never happened.
        """
        kept_indices, aborted_indices = filter_stale_within_block(
            [tx.rwset for tx in batch]
        )
        aborted: List[Transaction] = []
        for index in aborted_indices:
            tx = batch[index]
            tx.failure_reason = TxOutcome.EARLY_ABORT_VERSION.value
            aborted.append(tx)
        return [batch[index] for index in kept_indices], aborted

    # -- committing ----------------------------------------------------------

    def _on_commit(self, replica: RaftReplica) -> None:
        """Apply newly committed entries from whichever replica advanced.

        Raft guarantees every replica's committed prefix is identical, so
        applying from the first replica to report an index is safe.
        """
        while self._applied < replica.commit_index:
            entry = replica.log[self._applied]
            self._applied += 1
            self._apply(entry)

    def _apply(self, entry: LogEntry) -> None:
        if entry.noop:
            return
        batch = [
            tx for tx in entry.batch if tx.tx_id not in self._committed_tx_ids
        ]
        early = [
            tx
            for tx in entry.early_aborted
            if tx.tx_id not in self._committed_tx_ids
        ]
        duplicates = (len(entry.batch) - len(batch)) + (
            len(entry.early_aborted) - len(early)
        )
        if duplicates:
            self.group.stats.duplicate_txs_suppressed += duplicates
        if not batch and not early:
            # Every transaction already committed through an earlier
            # entry: the whole block collapses and no id is consumed.
            return
        for tx in batch:
            self._committed_tx_ids.add(tx.tx_id)
            self._pending.pop(tx.tx_id, None)
        for tx in early:
            self._committed_tx_ids.add(tx.tx_id)
            self._pending.pop(tx.tx_id, None)
            self._notify(tx.tx_id, TxOutcome(tx.failure_reason))
        self.txs_early_aborted += len(early)
        for tx in batch:
            tx.ordered_at = self.env.now
        block = Block.create(
            self._next_block_id, self._tip_hash, batch, early_aborted=early
        )
        self._next_block_id += 1
        self._tip_hash = block.header.data_hash
        self.blocks_cut += 1
        self.group.stats.entries_committed += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.span(
                "consensus.replicate",
                cat="consensus",
                track=f"consensus/{self.channel}",
                start=entry.proposed_at,
                block_id=block.block_id,
                batch=len(block.transactions),
                early_aborts=len(early),
            )
            for tx in batch + early:
                if tx.orderer_arrival is not None:
                    tracer.span(
                        "orderer.queue",
                        cat="order",
                        track=f"orderer/{self.channel}/queue",
                        start=tx.orderer_arrival,
                        tx_id=tx.tx_id,
                        mode=ASYNC,
                    )
        self._broadcast(self.channel, block)

    def flush(self) -> Generator:
        """Cut whatever is pending (used by tests to drain the pipeline)."""
        if not self._cutter.is_empty:
            yield from self._cut(CutReason.FLUSH)
