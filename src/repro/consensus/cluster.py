"""Orderer machines and the partition-aware consensus transport.

:class:`OrdererCluster` owns the N ordering nodes of one network — each a
:class:`OrdererNode` with its own CPU :class:`~repro.sim.resources.Resource`
and crash flag — plus the message transport every Raft group sends
through. The transport charges the modelled one-way latency and receiver
CPU for each consensus message, and drops messages whose sender or
receiver is crashed, or whose endpoints sit in different partition groups,
at delivery time. Crash/recover and partition/heal are plain method calls
so both the fault injector and benchmarks can drive them directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import ConsensusStats
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.trace.tracer import Tracer

#: Seed salt (an int, so derivation never depends on string hashing)
#: separating the consensus RNG streams from workload/client/fault ones.
CONSENSUS_SEED_SALT = 0xCF57


class OrdererNode:
    """One machine of the replicated ordering service."""

    def __init__(self, env: Environment, index: int, cores: int) -> None:
        self.env = env
        self.index = index
        self.name = f"orderer{index}"
        self.cpu = Resource(env, cores)
        self.crashed = False


class OrdererCluster:
    """The ordering machines plus their interconnect, shared by channels.

    Raft runs one group per channel (as in real Fabric, where every
    channel is its own Raft instance), but the groups share the same
    physical nodes, CPUs, partitions, and crash windows — mirroring how
    one ordering-service deployment serves all channels.
    """

    def __init__(
        self,
        env: Environment,
        config: FabricConfig,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if config.orderer_nodes < 2:
            raise SimulationError(
                "OrdererCluster needs orderer_nodes >= 2; a single orderer "
                "uses the plain OrderingService"
            )
        self.env = env
        self.config = config
        self.tracer = tracer
        self.nodes: List[OrdererNode] = [
            OrdererNode(env, index, config.cores_per_peer)
            for index in range(config.orderer_nodes)
        ]
        self.stats = ConsensusStats(nodes=config.orderer_nodes)
        #: ``(time, channel, node_index, term)`` for every leadership win.
        self.leadership_log: List[Tuple[float, str, int, int]] = []
        #: node index -> partition group id; None = fully connected.
        self._partition: Optional[Dict[int, int]] = None
        self._groups: List[object] = []

    # -- wiring --------------------------------------------------------------

    def register_group(self, group) -> None:
        """Attach one channel's Raft group to crash/recover signals."""
        self._groups.append(group)

    @property
    def quorum(self) -> int:
        """Nodes needed for a majority."""
        return len(self.nodes) // 2 + 1

    def live_nodes(self) -> List[OrdererNode]:
        """Nodes currently up (partitions do not affect liveness)."""
        return [node for node in self.nodes if not node.crashed]

    # -- connectivity --------------------------------------------------------

    def connected(self, a: int, b: int) -> bool:
        """True when nodes ``a`` and ``b`` can currently exchange messages."""
        if self._partition is None:
            return True
        return self._partition[a] == self._partition[b]

    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the cluster: messages flow only within one group.

        Nodes not named in any group are each isolated on their own.
        """
        mapping: Dict[int, int] = {}
        for group_id, group in enumerate(groups):
            for node in group:
                mapping[node] = group_id
        for node in self.nodes:
            if node.index not in mapping:
                # A unique negative id isolates the unlisted node.
                mapping[node.index] = -(node.index + 1)
        self._partition = mapping

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition = None

    # -- faults --------------------------------------------------------------

    def crash(self, index: int) -> None:
        """Take one ordering node down (its Raft log and term survive)."""
        node = self.nodes[index]
        node.crashed = True
        for group in self._groups:
            group.replicas[index].halt()

    def recover(self, index: int) -> None:
        """Bring a crashed node back as a follower."""
        node = self.nodes[index]
        node.crashed = False
        for group in self._groups:
            group.replicas[index].resume()

    # -- transport -----------------------------------------------------------

    def send(
        self,
        channel: str,
        sender: OrdererNode,
        receiver: OrdererNode,
        dispatch: Callable[[], None],
    ) -> None:
        """Ship one consensus message; ``dispatch`` runs at the receiver.

        Charges the modelled one-way latency and the receiver's CPU.
        Connectivity and liveness are checked at delivery time, so a
        message in flight when its endpoint crashes or is partitioned
        away is silently lost — exactly the fault model Raft tolerates.
        """
        self.stats.messages_sent += 1
        self.env.process(
            self._deliver(sender, receiver, dispatch),
            name=f"consensus/{channel}/{sender.name}->{receiver.name}",
        )

    def _deliver(self, sender, receiver, dispatch):
        consensus = self.config.consensus
        if consensus.message_delay > 0:
            yield consensus.message_delay
        if (
            sender.crashed
            or receiver.crashed
            or not self.connected(sender.index, receiver.index)
        ):
            self.stats.messages_dropped += 1
            return
        if consensus.message_cpu > 0:
            yield from receiver.cpu.use(consensus.message_cpu)
        if self.tracer is not None:
            self.tracer.charge("network", consensus.message_delay)
            self.tracer.charge("ordering", consensus.message_cpu)
        dispatch()

    # -- bookkeeping ---------------------------------------------------------

    def note_leader(self, channel: str, node_index: int, term: int) -> None:
        """Record one leadership win (stats + the leadership log)."""
        self.stats.leader_changes += 1
        self.stats.max_term = max(self.stats.max_term, term)
        self.leadership_log.append((self.env.now, channel, node_index, term))
