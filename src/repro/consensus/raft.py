"""The Raft state machine: elections, heartbeats, log replication.

One :class:`RaftGroup` per channel, with one :class:`RaftReplica` living
on each :class:`~repro.consensus.cluster.OrdererNode`. The implementation
follows the Raft paper's crash-fault-tolerant core:

- Followers convert to candidates after a randomized election timeout
  (drawn per node and per election from the replica's dedicated seeded
  RNG stream) and win with a quorum of votes, granted only to candidates
  whose log is at least as up to date.
- Leaders append a no-op entry on winning — the only safe way to commit
  an inherited previous-term tail (the "figure 8" hazard) — then
  replicate via AppendEntries, reconciling divergent followers through
  next-index backtracking with a conflict hint.
- An entry commits once a quorum of match indices covers it *and* it
  belongs to the leader's current term; commit indices propagate to
  followers with the next heartbeat.

Replica logs, terms, and votes survive crashes (a crash-fault-tolerant
orderer persists its WAL); timers and leader state are volatile. Timers
use epoch counters rather than interrupts: bumping ``_epoch`` strands
every outstanding timer process, which then exits on wake-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.consensus.cluster import CONSENSUS_SEED_SALT, OrdererCluster, OrdererNode
from repro.fabric.config import FabricConfig
from repro.fabric.transaction import Transaction
from repro.sim.distributions import Rng, mix_seed
from repro.trace.tracer import Tracer

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    """One replicated ordering decision: a transformed, ready-to-ship batch.

    The reorder/early-abort transform of Sections 5.1–5.2 runs *before*
    proposal, so every replica holds byte-identical batch content and the
    facade can materialise the block from whichever replica's committed
    log it observes first. ``noop`` entries are the leadership markers
    Raft appends to commit inherited tails; they never produce blocks.
    """

    term: int
    batch: Tuple[Transaction, ...] = ()
    early_aborted: Tuple[Transaction, ...] = ()
    noop: bool = False
    proposed_at: float = 0.0


class RaftReplica:
    """One node's consensus state for one channel."""

    def __init__(self, group: "RaftGroup", node: OrdererNode, rng: Rng) -> None:
        self.group = group
        self.node = node
        self.env = group.env
        self.rng = rng
        # Durable state (survives crashes — the modelled WAL).
        self.current_term = 0
        self.voted_for: Optional[int] = None
        self.log: List[LogEntry] = []
        self.commit_index = 0
        # Volatile state.
        self.role = FOLLOWER
        self._votes: set = set()
        self._next_index: Dict[int, int] = {}
        self._match_index: Dict[int, int] = {}
        self._election_deadline = 0.0
        self._election_started_at: Optional[float] = None
        #: Epoch counter standing in for timer interrupts: every loop
        #: captures the epoch at spawn and exits once it moves on.
        self._epoch = 0

    # -- log helpers ---------------------------------------------------------

    @property
    def last_log_index(self) -> int:
        return len(self.log)

    @property
    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def _log_up_to_date(self, last_term: int, last_index: int) -> bool:
        """Raft's voting rule: is (last_term, last_index) >= our log?"""
        if last_term != self.last_log_term:
            return last_term > self.last_log_term
        return last_index >= self.last_log_index

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the first election timer (called once at network build)."""
        self._reset_election_deadline()
        self._spawn_watchdog()

    def halt(self) -> None:
        """Crash: strand every timer, drop volatile leader state."""
        self._epoch += 1
        self.role = FOLLOWER
        self._votes = set()
        self._next_index = {}
        self._match_index = {}
        self._election_started_at = None

    def resume(self) -> None:
        """Recover as a follower with a fresh election timer."""
        self.role = FOLLOWER
        self._reset_election_deadline()
        self._spawn_watchdog()

    # -- timers --------------------------------------------------------------

    def _reset_election_deadline(self) -> None:
        consensus = self.group.config.consensus
        self._election_deadline = self.env.now + self.rng.uniform(
            consensus.election_timeout_min, consensus.election_timeout_max
        )

    def _spawn_watchdog(self) -> None:
        self._epoch += 1
        self.env.process(
            self._watchdog(self._epoch),
            name=f"consensus/{self.group.channel}/{self.node.name}/watchdog",
        )

    def _watchdog(self, epoch: int):
        """Start an election whenever the deadline passes un-renewed."""
        while epoch == self._epoch and not self.node.crashed:
            if self.env.now >= self._election_deadline:
                self._start_election()
            wait = self._election_deadline - self.env.now
            if wait <= 0:  # pragma: no cover - deadline always reset ahead
                return
            yield wait  # bare-delay sleep

    def _heartbeat_loop(self, epoch: int):
        interval = self.group.config.consensus.heartbeat_interval
        while (
            epoch == self._epoch
            and self.role == LEADER
            and not self.node.crashed
        ):
            self._broadcast_append()
            yield interval

    # -- elections -----------------------------------------------------------

    def _start_election(self) -> None:
        self.role = CANDIDATE
        self.current_term += 1
        self.voted_for = self.node.index
        self._votes = {self.node.index}
        if self._election_started_at is None:
            self._election_started_at = self.env.now
        self.group.stats.elections_started += 1
        self._reset_election_deadline()
        message = {
            "term": self.current_term,
            "candidate": self.node.index,
            "last_log_index": self.last_log_index,
            "last_log_term": self.last_log_term,
        }
        for peer in self.group.replicas:
            if peer is not self:
                self.group.send(self, peer, "request_vote", message)

    def _become_leader(self) -> None:
        self.role = LEADER
        self._next_index = {
            peer.node.index: self.last_log_index + 1
            for peer in self.group.replicas
            if peer is not self
        }
        self._match_index = {index: 0 for index in self._next_index}
        # The no-op commits any inherited previous-term tail: Raft only
        # ever counts a quorum over current-term entries (figure 8).
        self.log.append(
            LogEntry(term=self.current_term, noop=True, proposed_at=self.env.now)
        )
        tracer = self.group.tracer
        if tracer is not None and self._election_started_at is not None:
            tracer.span(
                "consensus.election",
                cat="consensus",
                track=f"consensus/{self.group.channel}",
                start=self._election_started_at,
                node=self.node.index,
                term=self.current_term,
            )
        self._election_started_at = None
        self.group.on_leader_won(self)
        self._epoch += 1
        self.env.process(
            self._heartbeat_loop(self._epoch),
            name=f"consensus/{self.group.channel}/{self.node.name}/heartbeat",
        )
        self._broadcast_append()

    def _step_down(self, term: int) -> None:
        """Adopt ``term`` (if newer) and fall back to follower."""
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        was_leader = self.role == LEADER
        self.role = FOLLOWER
        self._votes = set()
        self._election_started_at = None
        if was_leader:
            # The heartbeat loop dies with the epoch; followers need a
            # live election timer instead.
            self._reset_election_deadline()
            self._spawn_watchdog()

    # -- proposing (leader API used by the ordering facade) ------------------

    def propose(
        self,
        batch: Sequence[Transaction],
        early_aborted: Sequence[Transaction],
    ) -> bool:
        """Append one batch entry and replicate it; False if not leader."""
        if self.role != LEADER or self.node.crashed:
            return False
        self.log.append(
            LogEntry(
                term=self.current_term,
                batch=tuple(batch),
                early_aborted=tuple(early_aborted),
                proposed_at=self.env.now,
            )
        )
        self.group.stats.entries_proposed += 1
        self._broadcast_append()
        return True

    # -- replication ---------------------------------------------------------

    def _broadcast_append(self) -> None:
        for peer in self.group.replicas:
            if peer is not self:
                self._send_append(peer.node.index)

    def _send_append(self, follower: int) -> None:
        next_index = self._next_index[follower]
        prev_index = next_index - 1
        prev_term = self.log[prev_index - 1].term if prev_index > 0 else 0
        self.group.send(
            self,
            self.group.replicas[follower],
            "append_entries",
            {
                "term": self.current_term,
                "leader": self.node.index,
                "prev_index": prev_index,
                "prev_term": prev_term,
                "entries": tuple(self.log[prev_index:]),
                "leader_commit": self.commit_index,
            },
        )

    def _advance_commit(self) -> None:
        """Move the commit index over quorum-matched current-term entries."""
        for index in range(self.last_log_index, self.commit_index, -1):
            if self.log[index - 1].term != self.current_term:
                # Everything below is an older term: never commit those
                # directly — they ride along once a current-term entry
                # above them commits.
                break
            acks = 1 + sum(
                1 for match in self._match_index.values() if match >= index
            )
            if acks >= self.group.quorum:
                self.commit_index = index
                self.group.on_commit(self)
                break

    # -- message handlers (run at the receiver, after transport costs) -------

    def dispatch(self, kind: str, message: Dict) -> None:
        """Route one delivered consensus message."""
        if self.node.crashed:  # pragma: no cover - transport already drops
            return
        getattr(self, "_on_" + kind)(message)

    def _on_request_vote(self, message: Dict) -> None:
        term = message["term"]
        if term > self.current_term:
            self._step_down(term)
        granted = (
            term == self.current_term
            and self.voted_for in (None, message["candidate"])
            and self._log_up_to_date(
                message["last_log_term"], message["last_log_index"]
            )
        )
        if granted:
            self.voted_for = message["candidate"]
            self._reset_election_deadline()
        self.group.send(
            self,
            self.group.replicas[message["candidate"]],
            "vote_reply",
            {"term": self.current_term, "voter": self.node.index, "granted": granted},
        )

    def _on_vote_reply(self, message: Dict) -> None:
        if message["term"] > self.current_term:
            self._step_down(message["term"])
            return
        if self.role != CANDIDATE or message["term"] != self.current_term:
            return
        if message["granted"]:
            self._votes.add(message["voter"])
            if len(self._votes) >= self.group.quorum:
                self._become_leader()

    def _on_append_entries(self, message: Dict) -> None:
        term = message["term"]
        leader = self.group.replicas[message["leader"]]
        if term < self.current_term:
            self.group.send(
                self, leader, "append_reply",
                {
                    "term": self.current_term,
                    "follower": self.node.index,
                    "success": False,
                    "hint": 0,
                },
            )
            return
        if term > self.current_term or self.role != FOLLOWER:
            # A candidate (or a deposed leader) of the same term yields
            # to the node that actually won it.
            self._step_down(term)
        self._reset_election_deadline()
        prev_index = message["prev_index"]
        if prev_index > self.last_log_index or (
            prev_index > 0 and self.log[prev_index - 1].term != message["prev_term"]
        ):
            # Conflict hint: our log length bounds where the leader
            # should retry, skipping the one-step-at-a-time walk.
            self.group.send(
                self, leader, "append_reply",
                {
                    "term": self.current_term,
                    "follower": self.node.index,
                    "success": False,
                    "hint": min(self.last_log_index, max(prev_index - 1, 0)),
                },
            )
            return
        index = prev_index
        for entry in message["entries"]:
            if index < len(self.log):
                if self.log[index].term != entry.term:
                    # Divergent uncommitted tail: truncate and adopt.
                    del self.log[index:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
            index += 1
        last_new = prev_index + len(message["entries"])
        if message["leader_commit"] > self.commit_index:
            # Cap at the last entry this append covered: indices beyond
            # it are not yet confirmed to match the leader's log.
            advanced = min(message["leader_commit"], last_new)
            if advanced > self.commit_index:
                self.commit_index = advanced
                self.group.on_commit(self)
        self.group.send(
            self, leader, "append_reply",
            {
                "term": self.current_term,
                "follower": self.node.index,
                "success": True,
                "match": last_new,
            },
        )

    def _on_append_reply(self, message: Dict) -> None:
        if message["term"] > self.current_term:
            self._step_down(message["term"])
            return
        if self.role != LEADER or message["term"] != self.current_term:
            return
        follower = message["follower"]
        if message["success"]:
            if message["match"] > self._match_index[follower]:
                self._match_index[follower] = message["match"]
                self._next_index[follower] = message["match"] + 1
                self._advance_commit()
        else:
            self._next_index[follower] = max(
                1, min(self._next_index[follower] - 1, message["hint"] + 1)
            )
            self._send_append(follower)


class RaftGroup:
    """One channel's Raft instance across every cluster node."""

    def __init__(
        self,
        cluster: OrdererCluster,
        channel: str,
        channel_index: int,
        config: FabricConfig,
        on_leader: Callable[[RaftReplica], None],
        on_commit: Callable[[RaftReplica], None],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = cluster.env
        self.cluster = cluster
        self.channel = channel
        self.config = config
        self.tracer = tracer
        self.stats = cluster.stats
        self._on_leader = on_leader
        self._on_commit = on_commit
        self.replicas: List[RaftReplica] = [
            RaftReplica(
                self,
                node,
                Rng(mix_seed(config.seed, CONSENSUS_SEED_SALT, channel_index, node.index)),
            )
            for node in cluster.nodes
        ]
        cluster.register_group(self)

    @property
    def quorum(self) -> int:
        return self.cluster.quorum

    def start(self) -> None:
        """Arm every replica's election timer."""
        for replica in self.replicas:
            replica.start()

    def send(
        self, sender: RaftReplica, receiver: RaftReplica, kind: str, message: Dict
    ) -> None:
        self.cluster.send(
            self.channel,
            sender.node,
            receiver.node,
            lambda: receiver.dispatch(kind, message),
        )

    def leader(self) -> Optional[RaftReplica]:
        """The live replica currently believing itself leader with the
        highest term (None during elections)."""
        leaders = [
            replica
            for replica in self.replicas
            if replica.role == LEADER and not replica.node.crashed
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda replica: replica.current_term)

    def on_leader_won(self, replica: RaftReplica) -> None:
        self.cluster.note_leader(
            self.channel, replica.node.index, replica.current_term
        )
        self._on_leader(replica)

    def on_commit(self, replica: RaftReplica) -> None:
        self._on_commit(replica)
