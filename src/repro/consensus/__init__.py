"""Replicated CFT ordering: a deterministic, DES-modelled Raft cluster.

The paper's setup runs one immortal ordering process (Section 6.1); real
Fabric replaced that single trust point with a Raft ordering service
because ordering is the pipeline's availability choke point. This package
models that cluster inside the existing discrete-event simulation:

- :mod:`repro.consensus.cluster` — the orderer machines: per-node CPUs,
  crash flags, the partition-aware message transport, and the shared
  :class:`~repro.fabric.metrics.ConsensusStats`.
- :mod:`repro.consensus.raft` — the consensus state machine: leader
  election with randomized timeouts, heartbeats, log replication, and
  the quorum commit rule (current-term entries only).
- :mod:`repro.consensus.service` — :class:`ReplicatedOrderingService`, a
  drop-in replacement for :class:`~repro.fabric.orderer.OrderingService`
  selected by ``FabricConfig.orderer_nodes > 1``: batches are cut as
  before, but a block is broadcast to peers only after a quorum of
  orderer nodes has acknowledged its log entry.

Determinism: every random draw (election timeouts) comes from per-replica
streams seeded with ``mix_seed(seed, CONSENSUS_SEED_SALT, channel,
node)``, independent of the workload, client, and fault streams. The
default single-orderer configuration builds none of this machinery and
stays bit-identical to the pre-consensus build.
"""

from repro.consensus.cluster import CONSENSUS_SEED_SALT, OrdererCluster, OrdererNode
from repro.consensus.raft import CANDIDATE, FOLLOWER, LEADER, LogEntry, RaftGroup, RaftReplica
from repro.consensus.service import ReplicatedOrderingService
from repro.fabric.config import ConsensusConfig

__all__ = [
    "CANDIDATE",
    "CONSENSUS_SEED_SALT",
    "ConsensusConfig",
    "FOLLOWER",
    "LEADER",
    "LogEntry",
    "OrdererCluster",
    "OrdererNode",
    "RaftGroup",
    "RaftReplica",
    "ReplicatedOrderingService",
]
