"""Checkpoint/restore for long-horizon runs — logical snapshots plus
deterministic-replay resume.

A discrete-event simulation cannot be pickled mid-run: every in-flight
process is a live Python generator. Instead of freezing the process
graph, a checkpoint stores the *recipe* (the pickled
:class:`~repro.bench.spec.ExperimentSpec`) together with a dense set of
**verification digests** taken at an exact event boundary: per-channel
ledger export hashes, per-peer state-database digests, the engine clock,
sequence counter and event-heap digest, a digest over every seeded RNG
stream reachable from the network, and the canonical metrics snapshot
hash.

Resume rebuilds the network from the embedded spec and *replays* from
``t = 0`` up to the checkpoint boundary — the simulation is
deterministic, so the replay reproduces the original run bit for bit.
At the boundary every stored digest is re-computed and compared; any
mismatch raises :class:`~repro.errors.CheckpointError` naming the
diverging fields, which doubles as a nondeterminism oracle for the
whole simulator. Past the boundary the run simply continues. Resume
cost is therefore O(T) re-simulation, not O(1) — an honest trade that
keeps checkpoints small, portable JSON and keeps the hot path free of
snapshot bookkeeping (see ``docs/longruns.md``).

Segmentation is free: ``env.run(until=b1); env.run(until=b2)`` is
exactly equivalent to ``env.run(until=b2)`` (the engine drains the
same-instant deque before returning and leaves later heap entries
untouched), so a checkpointed run produces byte-identical ledgers and
metrics to an uncheckpointed one.

Ledger pruning (:func:`prune_network`) rides on the same boundaries:
blocks below the fleet-wide minimum tip are folded into a
:class:`~repro.ledger.ledger.ContinuityRecord`, so every peer —
including crashed ones — can still catch up from any other.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import types
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.bench.results import ExperimentResult, metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.errors import CheckpointError, ConfigError
from repro.ledger.export import export_ledger
from repro.ledger.ledger import Ledger
from repro.ledger.state_db import StateDatabase
from repro.sim.distributions import Rng
from repro.sim.engine import Environment
from repro.sim.resources import Resource

#: Bump when the checkpoint payload layout changes; old files are
#: rejected with a clear error instead of mis-verifying.
CHECKPOINT_SCHEMA = 1

#: File-name prefix for on-disk checkpoints (``checkpoint-000001.json``).
CHECKPOINT_PREFIX = "checkpoint-"

#: Safety valve for the object-graph walk — far above any real network.
_WALK_NODE_LIMIT = 5_000_000

#: Leaf types the graph walk never descends into.
_TERMINAL_TYPES = (
    str,
    bytes,
    bytearray,
    bool,
    int,
    float,
    complex,
    type(None),
)


def _canonical_json(payload: object) -> str:
    """Canonical JSON text — the hashing substrate for every digest."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: object) -> str:
    """SHA-256 hex digest over the canonical JSON of ``payload``."""
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Object-graph walkers
# ---------------------------------------------------------------------------


def _slot_names(cls: type) -> List[str]:
    names: List[str] = []
    for klass in reversed(cls.__mro__):
        slots = klass.__dict__.get("__slots__")
        if slots is None:
            continue
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


def _is_repro_object(obj: object) -> bool:
    module = getattr(type(obj), "__module__", "") or ""
    return module == "repro" or module.startswith("repro.")


def _children(obj: object) -> Iterator[Tuple[str, object]]:
    """Deterministic (label, child) pairs of one node in the walk.

    Sets and frozensets are deliberately *not* traversed: their
    iteration order depends on ``PYTHONHASHSEED``, and a resume may run
    in a different interpreter process than the run that wrote the
    checkpoint. Nothing checkpoint-relevant (RNG streams, resources)
    lives inside a set.
    """
    if isinstance(obj, dict):
        for key, value in obj.items():
            label = f"[{key!r}]" if isinstance(key, _TERMINAL_TYPES) else "[?]"
            if not isinstance(key, _TERMINAL_TYPES):
                yield f"{label}#key", key
            yield label, value
        return
    if isinstance(obj, (list, tuple, deque)):
        for index, value in enumerate(obj):
            yield f"[{index}]", value
        return
    if isinstance(obj, types.GeneratorType):
        # Suspended workload/client coroutines keep RNGs in locals.
        try:
            frame_locals = inspect.getgeneratorlocals(obj)
        except Exception:
            return
        for name, value in frame_locals.items():
            yield f".<locals>.{name}", value
        return
    if not _is_repro_object(obj):
        return
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None:
        for name, value in instance_dict.items():
            yield f".{name}", value
    for name in _slot_names(type(obj)):
        try:
            value = getattr(obj, name)
        except AttributeError:
            continue
        yield f".{name}", value


def walk_objects(root: object) -> Iterator[Tuple[str, object]]:
    """Deterministic pre-order walk of the object graph under ``root``.

    Yields ``(path, obj)`` for every reachable node. The order depends
    only on the program's own construction order (dict insertion order,
    attribute definition order), never on hashing, so two identical runs
    — even in different interpreter processes — walk identically.
    """
    stack: List[Tuple[str, object]] = [("root", root)]
    visited: set = set()
    nodes = 0
    while stack:
        path, obj = stack.pop()
        if isinstance(obj, _TERMINAL_TYPES):
            continue
        marker = id(obj)
        if marker in visited:
            continue
        visited.add(marker)
        nodes += 1
        if nodes > _WALK_NODE_LIMIT:
            raise CheckpointError(
                f"object-graph walk exceeded {_WALK_NODE_LIMIT} nodes; "
                "the network graph is unexpectedly unbounded"
            )
        yield path, obj
        children = list(_children(obj))
        for label, child in reversed(children):
            stack.append((path + label, child))


def iter_rng_streams(root: object) -> List[Tuple[str, object]]:
    """Every seeded RNG reachable from ``root``, in deterministic order.

    Collects both :class:`~repro.sim.distributions.Rng` wrappers and
    bare :class:`random.Random` instances (the streaming-metrics
    reservoir keeps one of the latter).
    """
    streams: List[Tuple[str, object]] = []
    for path, obj in walk_objects(root):
        if isinstance(obj, (Rng, Random)):
            streams.append((path, obj))
    return streams


def iter_resources(root: object) -> List[Tuple[str, Resource]]:
    """Every simulation :class:`Resource` reachable from ``root``."""
    found: List[Tuple[str, Resource]] = []
    for path, obj in walk_objects(root):
        if isinstance(obj, Resource):
            found.append((path, obj))
    return found


def resource_state(resource: Resource) -> Dict[str, object]:
    """A plain, picklable summary of a resource's bookkeeping state.

    Resources themselves hold waiter events whose callbacks close over
    live generators, so they cannot be pickled wholesale; this captures
    the observable counters instead.
    """
    return {
        "capacity": resource.capacity,
        "in_use": resource._in_use,
        "queue_length": len(resource._waiters),
        "sequence": resource._sequence,
        "busy_time": resource.busy_time(),
    }


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------


def ledger_digest(ledger: Ledger) -> str:
    """Hash of the ledger's canonical export (continuity record included)."""
    return _digest(export_ledger(ledger))


def state_digest(state: StateDatabase) -> str:
    """Order-independent hash of a peer's versioned key-value store."""
    hasher = hashlib.sha256()
    hasher.update(repr(state.last_block_id).encode("utf-8"))
    for key in state._sorted_keys:
        entry = state._data[key]
        hasher.update(
            repr(
                (key, entry.value, entry.version.block_id, entry.version.tx_id)
            ).encode("utf-8")
        )
    return hasher.hexdigest()


def metrics_digest(metrics) -> str:
    """Hash of the canonical metrics snapshot."""
    return _digest(metrics_to_dict(metrics))


def engine_digest(env: Environment) -> Dict[str, object]:
    """Clock, sequence counter and a symbolic hash of the event heap.

    Events cannot be serialised (they wrap generators), so the heap is
    hashed symbolically: sorted ``(time, seq, type, process-name)``
    rows. Two runs with identical schedules produce identical hashes;
    replay divergence shows up here before it shows up in the ledger.
    """
    rows = sorted(
        (repr(time), sequence, type(event).__name__, getattr(event, "_name", None) or "")
        for time, sequence, event in env._queue
    )
    hasher = hashlib.sha256()
    for row in rows:
        hasher.update(repr(row).encode("utf-8"))
    return {
        "now": repr(env.now),
        "sequence": env._sequence,
        "events": len(env._queue),
        "heap": hasher.hexdigest(),
    }


def rng_digest(root: object) -> Dict[str, object]:
    """Aggregate digest over every reachable RNG stream's exact state.

    Hashes the states in walk order but *not* the paths: paths can embed
    ``id()``-keyed dict keys (e.g. workload sampler caches), which are
    memory addresses and differ between the original process and a
    resume. Walk order itself is insertion-order deterministic.
    """
    hasher = hashlib.sha256()
    count = 0
    for _path, stream in iter_rng_streams(root):
        hasher.update(repr(stream.getstate()).encode("utf-8"))
        count += 1
    return {"streams": count, "digest": hasher.hexdigest()}


def capture_snapshot(network, boundary: float) -> Dict[str, object]:
    """The full verification snapshot of ``network`` at ``boundary``.

    Read-only: capturing a snapshot never perturbs the simulation, so a
    checkpointed run stays byte-identical to an uncheckpointed one.
    """
    runtimes = list(getattr(network, "runtimes", None) or [network])
    channels: Dict[str, object] = {}
    pending = 0
    for runtime in runtimes:
        pending += len(runtime._pending)
        for channel in runtime.channels:
            peers: Dict[str, object] = {}
            for peer in runtime.peers:
                pcs = peer.channels.get(channel)
                if pcs is None:
                    continue
                peers[peer.name] = {
                    "tip": pcs.ledger.tip_block_id,
                    "tip_hash": pcs.ledger.tip_hash.hex(),
                    "first_block": pcs.ledger.first_block_id,
                    "state": state_digest(pcs.state),
                }
            reference = runtime.reference_peer.channels[channel]
            orderer = runtime.orderers[channel]
            channels[channel] = {
                "ledger": ledger_digest(reference.ledger),
                "peers": peers,
                "orderer_pending": int(getattr(orderer, "pending_count", 0) or 0),
            }
    return {
        "time": boundary,
        "engine": engine_digest(network.env),
        "channels": channels,
        "metrics": [metrics_digest(runtime.metrics) for runtime in runtimes],
        "rng": rng_digest(network),
        "pending": pending,
    }


def _diff_snapshots(expected, actual, path: str, mismatches: List[str]) -> None:
    if len(mismatches) >= 8:
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected or key not in actual:
                mismatches.append(f"{path}.{key} (missing on one side)")
                continue
            _diff_snapshots(expected[key], actual[key], f"{path}.{key}", mismatches)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            mismatches.append(f"{path} (length {len(expected)} != {len(actual)})")
            return
        for index, (left, right) in enumerate(zip(expected, actual)):
            _diff_snapshots(left, right, f"{path}[{index}]", mismatches)
        return
    if expected != actual:
        mismatches.append(f"{path} ({expected!r} != {actual!r})")


def verify_snapshot(expected: Dict[str, object], actual: Dict[str, object]) -> None:
    """Compare two snapshots; raise :class:`CheckpointError` on divergence.

    Both sides are normalised through canonical JSON first so that a
    snapshot freshly captured in memory compares equal to one that
    round-tripped through a checkpoint file.
    """
    expected_norm = json.loads(_canonical_json(expected))
    actual_norm = json.loads(_canonical_json(actual))
    if expected_norm == actual_norm:
        return
    mismatches: List[str] = []
    _diff_snapshots(expected_norm, actual_norm, "snapshot", mismatches)
    raise CheckpointError(
        "resumed run diverged from the checkpoint at simulated time "
        f"{expected.get('time')}: " + "; ".join(mismatches)
    )


# ---------------------------------------------------------------------------
# Pruning
# ---------------------------------------------------------------------------


def prune_network(network) -> int:
    """Prune every ledger below the fleet-wide safe height, per channel.

    The safe height is the *minimum* tip over **all** peers holding the
    channel — crashed and recovering peers included — so any follower
    can still ``catch_up_from`` any source after the prune: the slowest
    follower's next needed block is never folded away. Returns the total
    number of blocks pruned across the fleet.
    """
    runtimes = list(getattr(network, "runtimes", None) or [network])
    pruned = 0
    for runtime in runtimes:
        for channel in runtime.channels:
            states = [
                peer.channels[channel]
                for peer in runtime.peers
                if channel in peer.channels
            ]
            if not states:
                continue
            safe = min(pcs.ledger.tip_block_id for pcs in states)
            for pcs in states:
                pruned += pcs.ledger.prune_below(safe)
    return pruned


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------


@dataclass
class CheckpointOptions:
    """How a run is checkpointed.

    These knobs are runtime-only — deliberately *not* part of
    :class:`FabricConfig` — so cache fingerprints and golden hashes are
    unaffected by how (or whether) a run was checkpointed.
    """

    #: Simulated seconds between checkpoints.
    every: float
    #: Where checkpoint files go; ``None`` keeps checkpoints in memory
    #: only (the chaos kill-and-resume harness uses this).
    directory: Optional[Union[str, Path]] = None
    #: Prune ledgers below the fleet-safe height at every boundary.
    prune: bool = False
    #: Retain only the newest N checkpoint files (None keeps all).
    keep: Optional[int] = None
    #: Stop the run right after writing this many checkpoints — the
    #: in-process stand-in for SIGKILL in kill-and-resume tests.
    stop_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise ConfigError(
                f"checkpoint interval must be > 0, got {self.every}"
            )
        if self.keep is not None and self.keep < 1:
            raise ConfigError(f"keep must be >= 1, got {self.keep}")


class Checkpointer:
    """Builds, verifies, and persists checkpoints for one run."""

    def __init__(self, spec: ExperimentSpec, options: CheckpointOptions) -> None:
        self.spec = spec
        self.options = options
        #: Every checkpoint built this run, newest last (also the store
        #: in in-memory mode).
        self.checkpoints: List[Dict[str, object]] = []
        try:
            self._spec_pickle = pickle.dumps(spec)
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            raise CheckpointError(
                "experiment spec is not picklable — checkpointed runs "
                "need a data-only spec (use a WorkloadRef workload): "
                f"{error!r}"
            ) from error

    def boundaries(self, horizon: float) -> Iterator[float]:
        """Checkpoint times ``every, 2*every, ...`` strictly inside the
        horizon. Computed as ``index * every`` so an original run and a
        replay land on bit-identical boundaries."""
        index = 1
        while True:
            boundary = index * self.options.every
            if boundary >= horizon:
                return
            yield boundary
            index += 1

    def build(self, index: int, boundary: float, snapshot: Dict[str, object]) -> Dict[str, object]:
        """Assemble the JSON checkpoint payload for one boundary."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "index": index,
            "time": boundary,
            "every": self.options.every,
            "prune": self.options.prune,
            "label": self.spec.resolved_label(),
            "duration": self.spec.duration,
            "drain": self.spec.drain,
            "spec": self._spec_pickle.hex(),
            "snapshot": snapshot,
        }

    def write(self, checkpoint: Dict[str, object]) -> Optional[Path]:
        """Persist one checkpoint; returns its path (None in-memory).

        Files are published atomically (temp file + ``os.replace``) so a
        kill mid-write never leaves a torn checkpoint — at worst the
        previous checkpoint stays the newest loadable one.
        """
        self.checkpoints.append(checkpoint)
        if self.options.directory is None:
            return None
        directory = Path(self.options.directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{CHECKPOINT_PREFIX}{checkpoint['index']:06d}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(checkpoint, sort_keys=True))
        os.replace(tmp, path)
        if self.options.keep is not None:
            files = sorted(directory.glob(f"{CHECKPOINT_PREFIX}*.json"))
            for stale in files[: -self.options.keep]:
                try:
                    stale.unlink()
                except OSError:
                    pass
        return path

    @property
    def latest(self) -> Optional[Dict[str, object]]:
        """The newest checkpoint built this run, if any."""
        return self.checkpoints[-1] if self.checkpoints else None


def load_checkpoint(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate one checkpoint file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema "
            f"{payload.get('schema') if isinstance(payload, dict) else '?'}; "
            f"this build reads schema {CHECKPOINT_SCHEMA}"
        )
    for field in ("index", "time", "every", "prune", "spec", "snapshot"):
        if field not in payload:
            raise CheckpointError(f"checkpoint {path} is missing field {field!r}")
    return payload


def load_latest_checkpoint(target: Union[str, Path]) -> Dict[str, object]:
    """Load the newest readable checkpoint from a file or directory.

    Corrupt newer files (e.g. from a torn write on a filesystem without
    atomic replace) are skipped with the error preserved in the final
    message if nothing loads.
    """
    target = Path(target)
    if target.is_file():
        return load_checkpoint(target)
    if not target.is_dir():
        raise CheckpointError(f"no checkpoint file or directory at {target}")
    errors: List[str] = []
    for path in sorted(target.glob(f"{CHECKPOINT_PREFIX}*.json"), reverse=True):
        try:
            return load_checkpoint(path)
        except CheckpointError as error:
            errors.append(str(error))
    detail = f" ({'; '.join(errors)})" if errors else ""
    raise CheckpointError(f"no loadable checkpoint under {target}{detail}")


def spec_from_checkpoint(checkpoint: Dict[str, object]) -> ExperimentSpec:
    """Recover the embedded experiment spec from a checkpoint payload."""
    try:
        spec = pickle.loads(bytes.fromhex(checkpoint["spec"]))
    except Exception as error:
        raise CheckpointError(
            f"corrupt spec in checkpoint: {error!r}"
        ) from error
    if not isinstance(spec, ExperimentSpec):
        raise CheckpointError(
            f"checkpoint spec decoded to {type(spec).__name__}, "
            "expected ExperimentSpec"
        )
    return spec


# ---------------------------------------------------------------------------
# Run drivers
# ---------------------------------------------------------------------------


@contextmanager
def _trace_recording(tracer):
    """Replicate ``FabricNetwork.run``'s crypto-recorder wrap."""
    if tracer is None:
        yield
        return
    from repro.crypto import signing

    previous = signing.set_trace_recorder(tracer.record_crypto_op)
    try:
        yield
    finally:
        signing.set_trace_recorder(previous)


def _drive(network, spec, options, checkpointer, tracer, resume=None):
    """Run ``network`` through the segmented checkpoint loop.

    With ``resume`` set (a loaded checkpoint payload), boundaries up to
    the resume index replay silently (re-applying prunes), the resume
    boundary is captured and verified against the stored snapshot, and
    later boundaries checkpoint normally. Returns the final metrics, or
    ``None`` when ``options.stop_after`` ended the run early.
    """
    duration = spec.duration
    horizon = duration + spec.drain
    resume_index = int(resume["index"]) if resume is not None else 0
    network.begin(duration)
    with _trace_recording(tracer):
        written = 0
        for index, boundary in enumerate(checkpointer.boundaries(horizon), start=1):
            network.env.run(until=boundary)
            if options.prune:
                prune_network(network)
            if resume is not None and index < resume_index:
                continue
            snapshot = capture_snapshot(network, boundary)
            if resume is not None and index == resume_index:
                verify_snapshot(resume["snapshot"], snapshot)
                continue
            checkpointer.write(checkpointer.build(index, boundary, snapshot))
            written += 1
            if options.stop_after is not None and written >= options.stop_after:
                return None
        network.env.run(until=horizon)
    return network.finish(duration)


def _build_network(spec: ExperimentSpec, tracer):
    config = spec.resolved_config()
    # Imported here for the same layering reason as in the bench harness:
    # repro.channels sits above both the fabric layer and this module.
    from repro.channels import build_network

    return build_network(config, spec.build_workload(), tracer=tracer)


def _result(spec: ExperimentSpec, metrics) -> ExperimentResult:
    return ExperimentResult(
        label=spec.resolved_label(),
        config=spec.resolved_config(),
        metrics=metrics,
        duration=spec.duration,
        params=dict(spec.params),
    )


def run_with_checkpoints(
    spec: ExperimentSpec,
    options: CheckpointOptions,
    tracer=None,
):
    """Run ``spec`` with periodic checkpoints.

    Returns ``(result, network, checkpointer)``. ``result`` is ``None``
    when ``options.stop_after`` killed the run early — resume from
    ``checkpointer.latest`` (in-memory) or the checkpoint directory.
    """
    network = _build_network(spec, tracer)
    checkpointer = Checkpointer(spec, options)
    metrics = _drive(network, spec, options, checkpointer, tracer)
    if metrics is None:
        return None, network, checkpointer
    return _result(spec, metrics), network, checkpointer


def resume_run(
    target: Union[str, Path, Dict[str, object]],
    tracer=None,
):
    """Resume a killed run from a checkpoint file, directory, or payload.

    Rebuilds the network from the embedded spec, replays to the
    checkpoint boundary, verifies every stored digest (raising
    :class:`CheckpointError` on divergence), then runs to completion —
    writing any remaining checkpoints along the way when the checkpoint
    came from a directory. Returns ``(result, network, checkpointer)``.
    """
    directory: Optional[Path] = None
    if isinstance(target, dict):
        checkpoint = target
    else:
        path = Path(target)
        checkpoint = load_latest_checkpoint(path)
        directory = path if path.is_dir() else path.parent
    spec = spec_from_checkpoint(checkpoint)
    options = CheckpointOptions(
        every=float(checkpoint["every"]),
        directory=directory,
        prune=bool(checkpoint["prune"]),
    )
    network = _build_network(spec, tracer)
    checkpointer = Checkpointer(spec, options)
    metrics = _drive(network, spec, options, checkpointer, tracer, resume=checkpoint)
    return _result(spec, metrics), network, checkpointer
