"""Chaos harness: randomized fault schedules plus consensus invariants.

``generate_chaos_schedule`` expands one integer seed into a randomized —
but fully deterministic — :class:`~repro.faults.FaultSchedule` mixing
peer crashes, orderer-node crashes, ordering-cluster partitions and a
lossy network. ``run_chaos`` executes a replicated-ordering experiment
under that schedule and then asserts the safety invariants a
crash-fault-tolerant ordering service must preserve no matter what the
schedule did:

``single_chain``
    Every live peer reports the same tip hash — leader failover and
    healed partitions never fork the chain.
``prefix_consistency``
    Up to the shortest live chain, all peers hold byte-identical blocks.
``no_committed_loss``
    Every transaction reported committed to a client is valid in the
    reference ledger — a committed transaction is never lost.
``monotone_chain``
    Block ids rise by exactly one per block and the hash chain verifies.
``exactly_once_commit``
    No transaction id appears in more than one ledger slot — failover
    re-proposal never double-commits.

A separate *liveness* check demands the run actually finished: every
fired proposal resolved and no transaction is still queued inside the
ordering service. Because the whole stack is a discrete-event
simulation, the same seed always produces the same schedule, the same
run and the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.faults import (
    FaultSchedule,
    OrdererCrashWindow,
    PartitionWindow,
    crash_schedule,
)
from repro.sim.distributions import Rng, mix_seed
from repro.workloads.registry import make_workload

#: Salt separating chaos randomness from every other seeded stream.
CHAOS_SEED_SALT = 0xC4A0

#: Safety invariants every chaos run must satisfy, in report order.
INVARIANT_NAMES = (
    "single_chain",
    "prefix_consistency",
    "no_committed_loss",
    "monotone_chain",
    "exactly_once_commit",
)


def generate_chaos_schedule(
    seed: int,
    duration: float = 1.5,
    peer_names: Sequence[str] = ("peer1.OrgA", "peer0.OrgB", "peer1.OrgB"),
    orderer_nodes: int = 3,
) -> FaultSchedule:
    """Expand ``seed`` into a randomized fault schedule.

    All faults begin after a short grace period and end by 70% of
    ``duration``, leaving the tail of the run plus the drain window for
    the cluster to re-elect, reconcile and catch up. ``peer_names`` must
    not include the reference peer (the measurement anchor cannot
    crash).
    """
    if duration < 1.0:
        raise ConfigError("chaos runs need duration >= 1.0 to fit faults")
    if orderer_nodes < 2:
        raise ConfigError("chaos runs need orderer_nodes >= 2")
    rng = Rng(mix_seed(seed, CHAOS_SEED_SALT))
    horizon = 0.7 * duration

    # Peer crashes: reuse the deterministic generator, thinned to a
    # random subset of the crashable peers.
    victims = [name for name in peer_names if rng.bernoulli(0.4)]
    crashes = crash_schedule(
        victims,
        crashes_per_peer=1.0,
        run_duration=horizon,
        mean_outage=0.2,
        seed=mix_seed(seed, CHAOS_SEED_SALT, 1),
    )

    # Orderer crashes: each node independently suffers at most one
    # outage (per-node windows are disjoint by construction).
    orderer_crashes: List[OrdererCrashWindow] = []
    for node in range(orderer_nodes):
        if not rng.bernoulli(0.5):
            continue
        length = rng.uniform(0.15, 0.4)
        start = rng.uniform(0.05, max(horizon - length, 0.06))
        orderer_crashes.append(
            OrdererCrashWindow(node=node, at=start, duration=length)
        )

    # Partitions: up to two non-overlapping windows, each slicing the
    # cluster into two groups at a random cut point.
    partitions: List[PartitionWindow] = []
    count = rng.randint(0, 2)
    if count:
        slice_length = (horizon - 0.1) / count
        for index in range(count):
            lo = 0.1 + index * slice_length
            length = rng.uniform(0.1, min(0.35, 0.8 * slice_length))
            start = rng.uniform(lo, lo + slice_length - length)
            nodes = list(range(orderer_nodes))
            rng.shuffle(nodes)
            cut = rng.randint(1, orderer_nodes - 1)
            partitions.append(
                PartitionWindow(
                    at=start,
                    duration=length,
                    groups=(
                        tuple(sorted(nodes[:cut])),
                        tuple(sorted(nodes[cut:])),
                    ),
                )
            )

    return FaultSchedule(
        crashes=crashes,
        orderer_crashes=tuple(orderer_crashes),
        partitions=tuple(partitions),
        drop_probability=rng.choice((0.0, 0.01, 0.03)),
        jitter_mean=rng.choice((0.0, 0.001)),
        # Any injected fault needs a client-side deadline to stay live.
        endorsement_timeout=0.05,
    )


@dataclass
class ChaosReport:
    """The outcome of one chaos run: invariants, liveness and counters."""

    seed: int
    faults: List[str]
    invariants: Dict[str, bool]
    liveness: bool
    converged: bool
    details: List[str] = field(default_factory=list)
    fired: int = 0
    resolved: int = 0
    committed: int = 0
    blocks: int = 0
    elections: int = 0
    leader_changes: int = 0
    messages_dropped: int = 0
    txs_reproposed: int = 0
    duplicates_suppressed: int = 0
    sim_time: float = 0.0

    @property
    def passed(self) -> bool:
        """True when every invariant held and the run stayed live."""
        return self.liveness and self.converged and all(self.invariants.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for the chaos report artifact."""
        return {
            "seed": self.seed,
            "passed": self.passed,
            "faults": list(self.faults),
            "invariants": dict(self.invariants),
            "liveness": self.liveness,
            "converged": self.converged,
            "details": list(self.details),
            "fired": self.fired,
            "resolved": self.resolved,
            "committed": self.committed,
            "blocks": self.blocks,
            "elections": self.elections,
            "leader_changes": self.leader_changes,
            "messages_dropped": self.messages_dropped,
            "txs_reproposed": self.txs_reproposed,
            "duplicates_suppressed": self.duplicates_suppressed,
            "sim_time": self.sim_time,
        }


def chaos_config(
    seed: int,
    duration: float = 1.5,
    orderer_nodes: int = 3,
    schedule: Optional[FaultSchedule] = None,
    fabric_plus_plus: bool = False,
) -> FabricConfig:
    """The network configuration one chaos run executes under.

    Small blocks and a moderate rate keep runs fast while still cutting
    enough blocks for failover to land mid-stream. The simulation seed
    is derived from the chaos seed, so workload, client, fault and
    consensus randomness all follow it — but through independent
    streams.
    """
    if schedule is None:
        schedule = generate_chaos_schedule(
            seed, duration=duration, orderer_nodes=orderer_nodes
        )
    config = FabricConfig(
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=80.0,
        seed=mix_seed(seed, CHAOS_SEED_SALT, 2),
        orderer_nodes=orderer_nodes,
        faults=schedule,
        endorsement_policy="outof:1",
    )
    if fabric_plus_plus:
        config = config.with_fabric_plus_plus()
    return config


def _quiescent(network: FabricNetwork) -> bool:
    """True when nothing is pending and all live peers share the tip.

    Accepts a sharded fleet (``repro.channels.ShardedNetwork``) too: the
    fleet is quiescent when every channel runtime is.
    """
    runtimes = getattr(network, "runtimes", None)
    if runtimes is not None:
        return all(_quiescent(runtime) for runtime in runtimes)
    if network._pending:
        return False
    for orderer in network.orderers.values():
        if getattr(orderer, "pending_count", 0):
            return False
    for channel in network.channels:
        reference = network.reference_peer.channels[channel].ledger
        for peer in network.peers:
            if peer.crashed:
                continue
            ledger = peer.channels[channel].ledger
            if ledger.tip_hash != reference.tip_hash:
                return False
    return True


def _settle(network: FabricNetwork, max_rounds: int) -> bool:
    """Run extra convergence rounds until the network quiesces.

    Gossip redelivery, catch-up pollers and re-elections may still be in
    flight when the drain window closes; each round advances simulated
    time by half a second. Returns False if the network never quiesced
    (a liveness violation the report surfaces).
    """
    for _ in range(max_rounds):
        if _quiescent(network):
            return True
        if network.env.peek() == float("inf"):
            return _quiescent(network)  # queue drained; verdict is final
        network.env.run(until=network.env.now + 0.5)
    return _quiescent(network)


def check_invariants(
    network: FabricNetwork,
) -> Tuple[Dict[str, bool], List[str]]:
    """Evaluate the five safety invariants against a finished network.

    Returns ``(invariants, details)`` where ``details`` carries one
    human-readable line per violation.

    A sharded fleet is checked channel runtime by channel runtime — each
    channel is an independent chain, so every invariant must hold within
    every channel (cross-channel sagas change nothing here: each leg is
    an ordinary transaction of its own channel). The per-runtime verdicts
    are AND-ed; detail lines already carry the global channel name.
    """
    runtimes = getattr(network, "runtimes", None)
    if runtimes is not None:
        invariants = {name: True for name in INVARIANT_NAMES}
        details: List[str] = []
        for runtime in runtimes:
            runtime_invariants, runtime_details = check_invariants(runtime)
            for name, held in runtime_invariants.items():
                invariants[name] = invariants[name] and held
            details.extend(runtime_details)
        return invariants, details

    invariants = {name: True for name in INVARIANT_NAMES}
    details: List[str] = []

    def fail(name: str, message: str) -> None:
        invariants[name] = False
        details.append(f"{name}: {message}")

    live = [peer for peer in network.peers if not peer.crashed]
    committed_ledger_total = 0
    for channel in network.channels:
        ledgers = {peer.name: peer.channels[channel].ledger for peer in live}
        reference_ledger = network.reference_peer.channels[channel].ledger
        reference_hashes = {
            block.block_id: block.header.data_hash
            for block in reference_ledger
        }

        tips = {ledger.tip_hash for ledger in ledgers.values()}
        if len(tips) != 1:
            fail(
                "single_chain",
                f"{channel}: live peers disagree on the tip "
                f"({len(tips)} distinct hashes)",
            )

        # Prefix consistency is checked over the retained heights every
        # pair holds in common — pruned ledgers keep a verified
        # continuity record below ``first_block_id``, and the hashes
        # above it must still agree block for block.
        for name, ledger in ledgers.items():
            for block in ledger:
                reference_hash = reference_hashes.get(block.block_id)
                if (
                    reference_hash is not None
                    and block.header.data_hash != reference_hash
                ):
                    fail(
                        "prefix_consistency",
                        f"{channel}: {name} diverges from the reference "
                        f"at block {block.block_id}",
                    )
                    break

        for peer in live:
            ledger = peer.channels[channel].ledger
            ids = [block.block_id for block in ledger]
            first = ledger.first_block_id
            if ids != list(range(first, first + len(ids))):
                fail(
                    "monotone_chain",
                    f"{channel}: {peer.name} block ids not contiguous: {ids[:10]}",
                )
            if not ledger.verify_chain():
                fail(
                    "monotone_chain",
                    f"{channel}: {peer.name} hash chain does not verify",
                )

        seen: Dict[str, int] = {}
        for block in reference_ledger:
            for tx in list(block.transactions) + list(block.early_aborted):
                seen[tx.tx_id] = seen.get(tx.tx_id, 0) + 1
        duplicated = [tx_id for tx_id, count in seen.items() if count > 1]
        if duplicated:
            fail(
                "exactly_once_commit",
                f"{channel}: {len(duplicated)} tx ids occupy multiple "
                f"ledger slots (e.g. {duplicated[0]})",
            )

        committed_ledger_total += sum(
            1
            for block in reference_ledger
            for valid in block.validity.values()
            if valid
        )
        # Valid transactions compacted below the prune point are
        # accounted by the continuity record — committed work is never
        # lost to pruning.
        if reference_ledger.continuity is not None:
            committed_ledger_total += reference_ledger.continuity.valid_txs

    committed_reported = network.metrics.outcomes.get(TxOutcome.COMMITTED, 0)
    if committed_reported != committed_ledger_total:
        fail(
            "no_committed_loss",
            f"clients saw {committed_reported} commits but the reference "
            f"ledger holds {committed_ledger_total} valid transactions",
        )

    return invariants, details


def run_chaos(
    seed: int,
    duration: float = 1.5,
    drain: float = 4.0,
    orderer_nodes: int = 3,
    fabric_plus_plus: bool = False,
    max_convergence_rounds: int = 20,
) -> ChaosReport:
    """Execute one chaos run and check every invariant.

    Deterministic: the same arguments always yield the same report.
    """
    schedule = generate_chaos_schedule(
        seed, duration=duration, orderer_nodes=orderer_nodes
    )
    config = chaos_config(
        seed,
        duration=duration,
        orderer_nodes=orderer_nodes,
        schedule=schedule,
        fabric_plus_plus=fabric_plus_plus,
    )
    workload = make_workload(
        "smallbank",
        seed=mix_seed(seed, CHAOS_SEED_SALT, 3),
        num_users=200,
        s_value=1.0,
    )
    network = FabricNetwork(config, workload)
    metrics = network.run(duration, drain=drain)
    converged = _settle(network, max_convergence_rounds)
    invariants, details = check_invariants(network)

    liveness = not network._pending and metrics.resolved == metrics.fired
    for channel, orderer in network.orderers.items():
        pending = getattr(orderer, "pending_count", 0)
        if pending:
            liveness = False
            details.append(
                f"liveness: {pending} transactions still queued in the "
                f"{channel} ordering service"
            )
    if network._pending:
        details.append(
            f"liveness: {len(network._pending)} proposals never resolved"
        )
    if not converged:
        details.append(
            "liveness: live peers did not converge on one tip within "
            f"{max_convergence_rounds} extra rounds"
        )

    consensus = metrics.consensus
    faults = [window.describe() for window in schedule.crashes]
    faults += [window.describe() for window in schedule.orderer_crashes]
    faults += [window.describe() for window in schedule.partitions]
    if schedule.drop_probability:
        faults.append(f"drop {schedule.drop_probability:.0%} of messages")
    if schedule.jitter_mean:
        faults.append(f"jitter mean {schedule.jitter_mean * 1e3:.1f}ms")

    return ChaosReport(
        seed=seed,
        faults=faults,
        invariants=invariants,
        liveness=liveness,
        converged=converged,
        details=details,
        fired=metrics.fired,
        resolved=metrics.resolved,
        committed=metrics.outcomes.get(TxOutcome.COMMITTED, 0),
        blocks=metrics.blocks_committed,
        elections=consensus.elections_started if consensus else 0,
        leader_changes=consensus.leader_changes if consensus else 0,
        messages_dropped=consensus.messages_dropped if consensus else 0,
        txs_reproposed=consensus.txs_reproposed if consensus else 0,
        duplicates_suppressed=(
            consensus.duplicate_txs_suppressed if consensus else 0
        ),
        sim_time=network.env.now,
    )


def run_kill_resume_chaos(
    seed: int,
    duration: float = 1.5,
    drain: float = 4.0,
    orderer_nodes: int = 3,
    fabric_plus_plus: bool = False,
    checkpoint_every: float = 0.6,
    kill_after: int = 2,
    prune: bool = True,
    max_convergence_rounds: int = 20,
) -> ChaosReport:
    """Chaos run with a process kill at a checkpoint boundary, resumed.

    Runs the usual randomized fault schedule three ways: an
    uninterrupted control (checkpointed, optionally pruning), a run
    killed right after checkpoint ``kill_after``, and a resume from that
    checkpoint. Raises :class:`~repro.errors.CheckpointError` if the
    resumed run's final state (ledger exports, metrics, RNG streams,
    event heap) is not byte-identical to the control, then evaluates the
    five safety invariants plus liveness on the resumed network — the
    restore boundary must be invisible to every consistency guarantee.
    """
    from repro.bench.spec import ExperimentSpec
    from repro.checkpoint import (
        CheckpointOptions,
        capture_snapshot,
        resume_run,
        run_with_checkpoints,
        verify_snapshot,
    )
    from repro.workloads.registry import WorkloadRef

    schedule = generate_chaos_schedule(
        seed, duration=duration, orderer_nodes=orderer_nodes
    )
    config = chaos_config(
        seed,
        duration=duration,
        orderer_nodes=orderer_nodes,
        schedule=schedule,
        fabric_plus_plus=fabric_plus_plus,
    )
    spec = ExperimentSpec(
        config=config,
        workload=WorkloadRef(
            "smallbank",
            {"num_users": 200, "s_value": 1.0},
            seed=mix_seed(seed, CHAOS_SEED_SALT, 3),
        ),
        duration=duration,
        drain=drain,
    )

    _control_result, control_network, _ = run_with_checkpoints(
        spec, CheckpointOptions(every=checkpoint_every, prune=prune)
    )
    killed_result, _killed_network, killed = run_with_checkpoints(
        spec,
        CheckpointOptions(
            every=checkpoint_every, prune=prune, stop_after=kill_after
        ),
    )
    if killed_result is not None or killed.latest is None:
        raise ConfigError(
            f"kill point (checkpoint {kill_after} of every="
            f"{checkpoint_every}) fell outside the run; shrink "
            "checkpoint_every or kill_after"
        )
    result, network, _ = resume_run(killed.latest)

    # The restore boundary must be invisible: the resumed run's final
    # state has to match the uninterrupted control bit for bit.
    horizon = duration + drain
    verify_snapshot(
        capture_snapshot(control_network, horizon),
        capture_snapshot(network, horizon),
    )

    metrics = result.metrics
    converged = _settle(network, max_convergence_rounds)
    invariants, details = check_invariants(network)

    liveness = not network._pending and metrics.resolved == metrics.fired
    for channel, orderer in network.orderers.items():
        pending = getattr(orderer, "pending_count", 0)
        if pending:
            liveness = False
            details.append(
                f"liveness: {pending} transactions still queued in the "
                f"{channel} ordering service"
            )
    if network._pending:
        details.append(
            f"liveness: {len(network._pending)} proposals never resolved"
        )
    if not converged:
        details.append(
            "liveness: live peers did not converge on one tip within "
            f"{max_convergence_rounds} extra rounds"
        )

    consensus = metrics.consensus
    faults = [window.describe() for window in schedule.crashes]
    faults += [window.describe() for window in schedule.orderer_crashes]
    faults += [window.describe() for window in schedule.partitions]
    if schedule.drop_probability:
        faults.append(f"drop {schedule.drop_probability:.0%} of messages")
    if schedule.jitter_mean:
        faults.append(f"jitter mean {schedule.jitter_mean * 1e3:.1f}ms")
    faults.append(
        f"killed after checkpoint {kill_after} "
        f"(t={killed.latest['time']}), resumed"
        + (" with pruning" if prune else "")
    )

    return ChaosReport(
        seed=seed,
        faults=faults,
        invariants=invariants,
        liveness=liveness,
        converged=converged,
        details=details,
        fired=metrics.fired,
        resolved=metrics.resolved,
        committed=metrics.outcomes.get(TxOutcome.COMMITTED, 0),
        blocks=metrics.blocks_committed,
        elections=consensus.elections_started if consensus else 0,
        leader_changes=consensus.leader_changes if consensus else 0,
        messages_dropped=consensus.messages_dropped if consensus else 0,
        txs_reproposed=consensus.txs_reproposed if consensus else 0,
        duplicates_suppressed=(
            consensus.duplicate_txs_suppressed if consensus else 0
        ),
        sim_time=network.env.now,
    )


def run_chaos_suite(
    seeds: Sequence[int],
    duration: float = 1.5,
    drain: float = 4.0,
    orderer_nodes: int = 3,
    fabric_plus_plus: bool = False,
) -> List[ChaosReport]:
    """Run :func:`run_chaos` for every seed, in order."""
    return [
        run_chaos(
            seed,
            duration=duration,
            drain=drain,
            orderer_nodes=orderer_nodes,
            fabric_plus_plus=fabric_plus_plus,
        )
        for seed in seeds
    ]
