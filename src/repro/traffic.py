"""Open-loop arrival processes for client traffic shaping.

The paper's Caliper-style evaluation fires transactions *closed-loop*: each
client sleeps a fixed ``1 / client_rate`` between proposals and caps its own
in-flight window, so offered load can never exceed what the system absorbs.
Real deployments are open-loop — arrivals keep coming whether or not earlier
requests finished — which is the regime where queues grow and overload
behavior matters (Wang & Chu, arXiv:2008.05946).

:class:`ArrivalProcess` is the picklable, declarative description that lives
on :class:`~repro.fabric.config.FabricConfig`. The default ``kind="closed"``
leaves the client's original pacing loop untouched (bit-identical golden
hashes); any other kind switches that client to an open-loop
:class:`ArrivalSampler` drawing interarrival gaps from a dedicated seeded
stream:

``poisson``
    Homogeneous Poisson process: exponential interarrivals at ``rate``.
``diurnal``
    Non-homogeneous Poisson with a sinusoidal day curve,
    ``lambda(t) = rate * (1 + amplitude * sin(2*pi*t / period))``.
``flash``
    Non-homogeneous Poisson with a rectangular flash-crowd spike:
    ``rate * flash_factor`` inside ``[flash_at, flash_at + flash_duration)``
    and ``rate`` everywhere else.
``heavy_tail``
    Pareto interarrivals (shape ``pareto_shape`` > 1) scaled so the *mean*
    interarrival stays ``1 / rate`` — bursty think times with rare long
    silences.

Non-homogeneous kinds are sampled by thinning (Lewis & Shedler): draw
candidate gaps at the peak rate ``lambda_max`` and accept each candidate
with probability ``lambda(t) / lambda_max``. Thinning consumes a data-
dependent but fully deterministic number of draws from the sampler's
private :class:`~repro.sim.distributions.Rng`, so identical seeds yield
identical arrival streams regardless of worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .errors import ConfigError
from .sim.distributions import Rng

#: Salt mixed into per-client arrival RNG seeds so traffic streams are
#: decorrelated from workload, fault, and backoff streams.
TRAFFIC_SEED_SALT = 0x7AFF

#: The arrival kinds :class:`ArrivalProcess` accepts.
ARRIVAL_KINDS = ("closed", "poisson", "diurnal", "flash", "heavy_tail")


@dataclass(frozen=True)
class ArrivalProcess:
    """Declarative, picklable description of one client's arrival process.

    ``rate`` is the mean arrivals per simulated second; when ``None`` the
    client's ``client_rate`` is used, so a traffic shape can be swept
    independently of the base load.
    """

    kind: str = "closed"
    rate: Optional[float] = None
    #: Diurnal: sinusoid period in simulated seconds and relative amplitude.
    period: float = 1.0
    amplitude: float = 0.8
    #: Flash crowd: spike start, width, and rate multiplier.
    flash_at: float = 0.5
    flash_duration: float = 0.5
    flash_factor: float = 8.0
    #: Heavy tail: Pareto shape; must exceed 1 so the mean exists.
    pareto_shape: float = 1.5

    @property
    def is_closed(self) -> bool:
        """True when the original closed-loop pacing applies."""
        return self.kind == "closed"

    def effective_rate(self, default: float) -> float:
        """The base arrival rate, falling back to the client rate."""
        return default if self.rate is None else self.rate

    def validate(self) -> None:
        """Raise :class:`ConfigError` for out-of-range parameters."""
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival kind {self.kind!r}; "
                f"expected one of {', '.join(ARRIVAL_KINDS)}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"arrival rate must be positive, got {self.rate}")
        if self.period <= 0:
            raise ConfigError(f"diurnal period must be positive, got {self.period}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"diurnal amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.flash_at < 0:
            raise ConfigError(f"flash_at must be >= 0, got {self.flash_at}")
        if self.flash_duration <= 0:
            raise ConfigError(
                f"flash_duration must be positive, got {self.flash_duration}"
            )
        if self.flash_factor < 1.0:
            raise ConfigError(
                f"flash_factor must be >= 1, got {self.flash_factor}"
            )
        if self.pareto_shape <= 1.0:
            raise ConfigError(
                "pareto_shape must exceed 1 so the mean interarrival is "
                f"finite, got {self.pareto_shape}"
            )


class ArrivalSampler:
    """Draws interarrival gaps for one client from a private seeded stream.

    The sampler owns its :class:`Rng`: every draw — including rejected
    thinning candidates — comes from this stream and nowhere else, which is
    what makes arrival sequences reproducible across repeats and worker
    processes.
    """

    def __init__(self, process: ArrivalProcess, base_rate: float, rng: Rng) -> None:
        if process.is_closed:
            raise ConfigError("closed-loop traffic does not use an ArrivalSampler")
        self.process = process
        self.rate = process.effective_rate(base_rate)
        self.rng = rng

    def _intensity(self, at: float) -> float:
        """Instantaneous arrival rate ``lambda(at)``."""
        process = self.process
        if process.kind == "diurnal":
            phase = math.sin(2.0 * math.pi * at / process.period)
            return self.rate * (1.0 + process.amplitude * phase)
        if process.kind == "flash":
            start = process.flash_at
            if start <= at < start + process.flash_duration:
                return self.rate * process.flash_factor
            return self.rate
        return self.rate

    def _peak_rate(self) -> float:
        """Upper bound ``lambda_max`` used by the thinning sampler."""
        process = self.process
        if process.kind == "diurnal":
            return self.rate * (1.0 + process.amplitude)
        if process.kind == "flash":
            return self.rate * max(1.0, process.flash_factor)
        return self.rate

    def next_interval(self, now: float) -> float:
        """The gap until this client's next arrival after time ``now``."""
        kind = self.process.kind
        if kind == "poisson":
            return self.rng.exponential(1.0 / self.rate)
        if kind == "heavy_tail":
            # Pareto(shape, xm) with xm chosen so the mean is 1 / rate.
            shape = self.process.pareto_shape
            scale = (shape - 1.0) / (shape * self.rate)
            draw = max(self.rng.random(), 1e-12)
            return scale / draw ** (1.0 / shape)
        # Non-homogeneous kinds: thinning against the peak rate.
        peak = self._peak_rate()
        elapsed = 0.0
        while True:
            elapsed += self.rng.exponential(1.0 / peak)
            accept = self._intensity(now + elapsed) / peak
            if self.rng.random() < accept:
                return elapsed
