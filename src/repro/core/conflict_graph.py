"""Conflict-graph construction from read/write sets (Algorithm 1, step 1).

The paper builds, for every transaction, bit vectors over the unique keys
the block touches — one for reads, one for writes — and finds conflicts via
bitwise AND: Ti conflicts into Tj (edge Ti -> Tj) iff Ti writes a key that
Tj reads. Python integers serve as arbitrary-width bit vectors, so the
pairwise test is a single ``&`` per ordered pair, mirroring the paper's
quadratic-but-cheap scheme ("the number of transactions to consider is very
small in practice due to the limitation by the block size").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.graphalgo.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.rwset import ReadWriteSet


class KeyUniverse:
    """Maps the keys touched by a block to bit positions.

    The same universe also answers "how many unique keys so far" — the
    quantity bounded by Fabric++'s extra batch-cutting criterion.
    """

    def __init__(self) -> None:
        self._positions: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def position(self, key: str) -> int:
        """Return the bit position for ``key``, assigning one if new."""
        pos = self._positions.get(key)
        if pos is None:
            pos = len(self._positions)
            self._positions[key] = pos
        return pos

    def bitvector(self, keys) -> int:
        """Encode an iterable of keys as an integer bit vector."""
        vector = 0
        for key in keys:
            vector |= 1 << self.position(key)
        return vector


def rwset_bitvectors(
    rwsets: Sequence["ReadWriteSet"], universe: KeyUniverse = None
) -> Tuple[List[int], List[int]]:
    """Return (read_vectors, write_vectors) for ``rwsets``.

    These correspond to the paper's ``vec_r(Ti)`` and ``vec_w(Ti)``
    (Table 3 interpreted as rows of bits).
    """
    if universe is None:
        universe = KeyUniverse()
    read_vectors = [universe.bitvector(rwset.reads) for rwset in rwsets]
    write_vectors = [universe.bitvector(rwset.writes) for rwset in rwsets]
    return read_vectors, write_vectors


def build_conflict_graph(rwsets: Sequence["ReadWriteSet"]) -> DiGraph:
    """Build the conflict graph of a block's transactions.

    Nodes are the transaction indices ``0..len(rwsets)-1``; an edge
    ``i -> j`` means transaction ``i`` writes a key that transaction ``j``
    reads, so any serializable schedule must place ``j`` before ``i``.
    A transaction's conflict with itself (reading a key it also writes) is
    not an edge — the paper only considers pairs with ``j != i``.
    """
    read_vectors, write_vectors = rwset_bitvectors(rwsets)
    graph = DiGraph(range(len(rwsets)))
    for i, writes in enumerate(write_vectors):
        if not writes:
            continue
        for j, reads in enumerate(read_vectors):
            if i != j and writes & reads:
                graph.add_edge(i, j)
    return graph


def _writes_into_ranges(writer: "ReadWriteSet", reader: "ReadWriteSet") -> bool:
    """True if any of ``writer``'s written keys falls inside one of
    ``reader``'s scanned ranges (phantom territory).

    The scan's *result keys* are already covered by key-intersection
    tests; this catches inserts of keys the scan did **not** observe but
    whose bounds it covers — exactly the phantoms the validation phase
    re-executes scans to detect.
    """
    if not reader.range_reads or not writer.writes:
        return False
    for range_read in reader.range_reads:
        for key in writer.writes:
            if key < range_read.start_key:
                continue
            if range_read.end_key is not None and key >= range_read.end_key:
                continue
            return True
    return False


def build_validation_dependencies(rwsets: Sequence["ReadWriteSet"]) -> DiGraph:
    """Build the intra-block dependency graph for parallel validation.

    Nodes are transaction indices in block order; an edge ``i -> j``
    (always ``i < j``) means transaction ``j``'s MVCC check/commit must
    wait for ``i``'s. Unlike :func:`build_conflict_graph` (which only
    needs write->read pairs to reorder), a *scheduler* must respect every
    hazard of the sequential validator's semantics:

    - true dependency: ``i`` writes a key ``j`` reads (point read or a
      key in a range-scan result) — ``j``'s version check must see ``i``'s
      pending write;
    - output dependency: ``i`` and ``j`` write the same key — last write
      (block order) must win in the store;
    - anti dependency: ``i`` reads a key ``j`` writes — ``j``'s write must
      not be visible to ``i``'s check;
    - phantom coverage, both directions: a write landing inside the
      other's scanned range changes that scan's re-execution.

    Edges only point from lower to higher index, so the graph is acyclic
    by construction and block order is always a valid topological order.
    """
    universe = KeyUniverse()
    read_vectors = [universe.bitvector(rwset.read_keys) for rwset in rwsets]
    write_vectors = [universe.bitvector(rwset.writes) for rwset in rwsets]
    graph = DiGraph(range(len(rwsets)))
    for j in range(len(rwsets)):
        for i in range(j):
            if (
                write_vectors[i] & (read_vectors[j] | write_vectors[j])
                or read_vectors[i] & write_vectors[j]
                or _writes_into_ranges(rwsets[i], rwsets[j])
                or _writes_into_ranges(rwsets[j], rwsets[i])
            ):
                graph.add_edge(i, j)
    return graph


def dependency_waves(graph: DiGraph) -> List[List[int]]:
    """Group a validation dependency graph into topological waves.

    Wave ``w`` holds the transactions whose longest dependency chain has
    exactly ``w`` predecessors; every transaction in a wave is
    independent of the others in the same wave, so a scheduler may
    validate a whole wave concurrently and commit waves in order. The
    number of waves is the block's critical-path length — the lower bound
    on sequential MVCC steps no amount of parallelism can beat. Requires
    edges to point from lower to higher node (as
    :func:`build_validation_dependencies` guarantees); within a wave,
    transactions keep ascending block order.
    """
    levels: Dict[int, int] = {}
    waves: List[List[int]] = []
    for node in sorted(graph.nodes()):
        level = 0
        for pred in graph.predecessors(node):
            level = max(level, levels[pred] + 1)
        levels[node] = level
        if level == len(waves):
            waves.append([])
        waves[level].append(node)
    return waves


def schedule_is_serializable(
    rwsets: Sequence["ReadWriteSet"], schedule: Sequence[int]
) -> bool:
    """Check that ``schedule`` respects every conflict among its members.

    For every pair of scheduled transactions with an edge ``i -> j``
    (i writes what j reads), ``j`` must appear before ``i``. This is the
    correctness oracle used by the test-suite's property-based tests.
    """
    position = {tx: pos for pos, tx in enumerate(schedule)}
    graph = build_conflict_graph(rwsets)
    for i, j in graph.edges():
        if i in position and j in position and position[j] > position[i]:
            return False
    return True
