"""Conflict-graph construction from read/write sets (Algorithm 1, step 1).

The paper builds, for every transaction, bit vectors over the unique keys
the block touches — one for reads, one for writes — and finds conflicts via
bitwise AND: Ti conflicts into Tj (edge Ti -> Tj) iff Ti writes a key that
Tj reads. Python integers serve as arbitrary-width bit vectors, so the
pairwise test is a single ``&`` per ordered pair, mirroring the paper's
quadratic-but-cheap scheme ("the number of transactions to consider is very
small in practice due to the limitation by the block size").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.graphalgo.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.rwset import ReadWriteSet


class KeyUniverse:
    """Maps the keys touched by a block to bit positions.

    The same universe also answers "how many unique keys so far" — the
    quantity bounded by Fabric++'s extra batch-cutting criterion.
    """

    def __init__(self) -> None:
        self._positions: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def position(self, key: str) -> int:
        """Return the bit position for ``key``, assigning one if new."""
        pos = self._positions.get(key)
        if pos is None:
            pos = len(self._positions)
            self._positions[key] = pos
        return pos

    def bitvector(self, keys) -> int:
        """Encode an iterable of keys as an integer bit vector."""
        vector = 0
        for key in keys:
            vector |= 1 << self.position(key)
        return vector


def rwset_bitvectors(
    rwsets: Sequence["ReadWriteSet"], universe: KeyUniverse = None
) -> Tuple[List[int], List[int]]:
    """Return (read_vectors, write_vectors) for ``rwsets``.

    These correspond to the paper's ``vec_r(Ti)`` and ``vec_w(Ti)``
    (Table 3 interpreted as rows of bits).
    """
    if universe is None:
        universe = KeyUniverse()
    read_vectors = [universe.bitvector(rwset.reads) for rwset in rwsets]
    write_vectors = [universe.bitvector(rwset.writes) for rwset in rwsets]
    return read_vectors, write_vectors


def build_conflict_graph(rwsets: Sequence["ReadWriteSet"]) -> DiGraph:
    """Build the conflict graph of a block's transactions.

    Nodes are the transaction indices ``0..len(rwsets)-1``; an edge
    ``i -> j`` means transaction ``i`` writes a key that transaction ``j``
    reads, so any serializable schedule must place ``j`` before ``i``.
    A transaction's conflict with itself (reading a key it also writes) is
    not an edge — the paper only considers pairs with ``j != i``.
    """
    read_vectors, write_vectors = rwset_bitvectors(rwsets)
    graph = DiGraph(range(len(rwsets)))
    for i, writes in enumerate(write_vectors):
        if not writes:
            continue
        for j, reads in enumerate(read_vectors):
            if i != j and writes & reads:
                graph.add_edge(i, j)
    return graph


def schedule_is_serializable(
    rwsets: Sequence["ReadWriteSet"], schedule: Sequence[int]
) -> bool:
    """Check that ``schedule`` respects every conflict among its members.

    For every pair of scheduled transactions with an edge ``i -> j``
    (i writes what j reads), ``j`` must appear before ``i``. This is the
    correctness oracle used by the test-suite's property-based tests.
    """
    position = {tx: pos for pos, tx in enumerate(schedule)}
    graph = build_conflict_graph(rwsets)
    for i, j in graph.edges():
        if i in position and j in position and position[j] > position[i]:
            return False
    return True
