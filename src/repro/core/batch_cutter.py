"""Batch cutting inside the ordering service (paper Section 5.1.2).

The ordering service receives a stream of transactions and decides when to
"cut" the current batch into a block. Vanilla Fabric cuts when one of three
conditions holds: (a) the batch reached a transaction count, (b) it reached
a byte size, (c) a timeout elapsed since the batch's first transaction.
Fabric++ adds (d): the batch touches a bounded number of unique keys, which
keeps the reordering computation (dominated by conflict-graph construction
over unique keys) bounded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.conflict_graph import KeyUniverse
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.transaction import Transaction


@dataclass(frozen=True)
class BatchCutConfig:
    """When the ordering service cuts the current batch into a block.

    Vanilla criteria (paper Section 5.1.2): transaction count, byte size,
    and time since the first transaction of the batch. Fabric++ adds the
    unique-key bound so the reordering run time stays bounded.
    """

    max_transactions: int = 1024
    max_bytes: int = 2 * 1024 * 1024
    max_batch_delay: float = 1.0
    #: Fabric++ extension: cut when the batch touches this many unique keys.
    #: ``None`` disables the criterion (vanilla behaviour).
    max_unique_keys: Optional[int] = 16384

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical limits."""
        if self.max_transactions < 1:
            raise ConfigError("max_transactions must be >= 1")
        if self.max_bytes < 1:
            raise ConfigError("max_bytes must be >= 1")
        if self.max_batch_delay <= 0:
            raise ConfigError("max_batch_delay must be > 0")
        if self.max_unique_keys is not None and self.max_unique_keys < 1:
            raise ConfigError("max_unique_keys must be >= 1 or None")


class CutReason(enum.Enum):
    """Why a batch was cut."""

    TX_COUNT = "tx_count"
    BYTES = "bytes"
    TIMEOUT = "timeout"
    UNIQUE_KEYS = "unique_keys"
    FLUSH = "flush"


class BatchCutter:
    """Accumulates transactions and reports when to cut a block."""

    def __init__(self, config: BatchCutConfig, track_unique_keys: bool = False) -> None:
        """``track_unique_keys`` enables Fabric++'s criterion (d)."""
        config.validate()
        self._config = config
        self._track_unique_keys = track_unique_keys and (
            config.max_unique_keys is not None
        )
        self._batch: List["Transaction"] = []
        self._bytes = 0
        self._first_arrival: Optional[float] = None
        self._universe = KeyUniverse()
        self.last_cut_reason: Optional[CutReason] = None

    def __len__(self) -> int:
        return len(self._batch)

    @property
    def is_empty(self) -> bool:
        """True when no transaction is pending."""
        return not self._batch

    @property
    def first_arrival(self) -> Optional[float]:
        """Arrival time of the oldest pending transaction."""
        return self._first_arrival

    @property
    def unique_keys(self) -> int:
        """Unique keys touched by the pending batch (0 if not tracked)."""
        return len(self._universe)

    def deadline(self) -> Optional[float]:
        """Simulated time at which the timeout criterion fires."""
        if self._first_arrival is None:
            return None
        return self._first_arrival + self._config.max_batch_delay

    def add(self, transaction: "Transaction", now: float) -> Optional[CutReason]:
        """Add a transaction; return a :class:`CutReason` if the batch is full.

        The caller cuts (via :meth:`cut`) when a reason is returned. The
        count/bytes/keys criteria are checked after adding, so a block
        holds *at most* the configured limits.
        """
        if self._first_arrival is None:
            self._first_arrival = now
        self._batch.append(transaction)
        self._bytes += transaction.estimated_size_bytes()
        if self._track_unique_keys:
            for key in transaction.rwset.unique_keys:
                self._universe.position(key)

        if len(self._batch) >= self._config.max_transactions:
            return CutReason.TX_COUNT
        if self._bytes >= self._config.max_bytes:
            return CutReason.BYTES
        if (
            self._track_unique_keys
            and len(self._universe) >= self._config.max_unique_keys
        ):
            return CutReason.UNIQUE_KEYS
        return None

    def timeout_due(self, now: float) -> bool:
        """True if the timeout criterion has fired for the pending batch."""
        deadline = self.deadline()
        return deadline is not None and now >= deadline

    def cut(self, reason: CutReason) -> List["Transaction"]:
        """Return the pending batch and reset for the next one."""
        batch = self._batch
        self._batch = []
        self._bytes = 0
        self._first_arrival = None
        self._universe = KeyUniverse()
        self.last_cut_reason = reason
        return batch
