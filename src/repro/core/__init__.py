"""Fabric++'s contributions: reordering, early abort, batch cutting.

This package is the paper's primary contribution, kept free of DES / network
concerns so it can be tested and benchmarked standalone (the paper does the
same in its Appendix B micro-benchmarks):

- :mod:`repro.core.conflict_graph` — bit-vector read/write-set conflict
  detection and conflict-graph construction (Algorithm 1, step 1);
- :mod:`repro.core.reorder` — cycle detection and removal plus serializable
  schedule generation (Algorithm 1, steps 2-5);
- :mod:`repro.core.early_abort` — the within-block version-mismatch filter
  applied in the ordering phase (Section 5.2.2);
- :mod:`repro.core.batch_cutter` — batch cutting with the vanilla criteria
  plus Fabric++'s unique-keys bound (Section 5.1.2).
"""

from repro.core.batch_cutter import BatchCutter, CutReason
from repro.core.conflict_graph import build_conflict_graph, KeyUniverse
from repro.core.early_abort import filter_stale_within_block
from repro.core.reorder import ReorderResult, reorder

__all__ = [
    "BatchCutter",
    "CutReason",
    "build_conflict_graph",
    "KeyUniverse",
    "filter_stale_within_block",
    "ReorderResult",
    "reorder",
]
