"""Early abort in the ordering phase (paper Section 5.2.2).

Fabric commits at block granularity, so two transactions within the same
block that read the same key must have read the same *version* of that key
— otherwise a commit from an earlier block intervened between their
simulations, and the transaction that read the **older** version is provably
stale (it can never pass validation). The orderer can therefore abort it
before the block is distributed.

Note on direction: the paper's running text says "the latter transaction"
is aborted, but the official correction attached to the paper states that
in the example it is T6 — the transaction holding the *older* version —
that becomes invalid. We implement the corrected rule: for each key, keep
the transactions that read the newest observed version and abort the rest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.ledger.state_db import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.rwset import ReadWriteSet


def filter_stale_within_block(
    rwsets: Sequence["ReadWriteSet"],
) -> Tuple[List[int], List[int]]:
    """Split a batch into (kept, early_aborted) indices by version mismatch.

    For every key read by at least two transactions of the batch at
    *different* versions, the transactions that read anything but the
    newest observed version of that key are early-aborted. Reads of an
    absent key (version ``None``) are treated as older than any concrete
    version, since a concrete read proves the key now exists.
    """
    newest: Dict[str, Optional[Version]] = {}
    for rwset in rwsets:
        for key, version in rwset.reads.items():
            if key not in newest:
                newest[key] = version
            elif _is_newer(version, newest[key]):
                newest[key] = version

    kept: List[int] = []
    aborted: List[int] = []
    for index, rwset in enumerate(rwsets):
        stale = any(
            rwset.reads[key] != newest[key] for key in rwset.reads
        )
        if stale:
            aborted.append(index)
        else:
            kept.append(index)
    return kept, aborted


def _is_newer(candidate: Optional[Version], incumbent: Optional[Version]) -> bool:
    """True if ``candidate`` is a strictly newer version than ``incumbent``."""
    if candidate is None:
        return False
    if incumbent is None:
        return True
    return candidate > incumbent
