"""Baseline schedulers to compare Algorithm 1 against.

Three comparators frame the greedy reordering heuristic:

- :func:`arrival_order` — vanilla Fabric's behaviour: no reordering at
  all; the within-block validation rule decides who survives.
- :func:`optimal_reorder` — exhaustive search for the *largest* subset of
  transactions whose conflict graph is acyclic (the abort-minimal
  schedule). Exponential, only usable on small blocks; the quality
  ceiling in the scheduler ablation bench.
- :func:`bcc_reorder` — a within-block adaptation of BCC's "move the
  commit back to the begin time" idea (Yuan et al., VLDB 2016; the
  paper's related work [28]): a transaction that conflicts with already
  committed transactions may still commit *before* all of them if none of
  them read or wrote anything it writes. The paper argues this recovers
  strictly less than full reordering — the bench quantifies that.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

from repro.core.conflict_graph import build_conflict_graph
from repro.core.reorder import ReorderResult, _build_schedule, wall_clock_seconds
from repro.graphalgo import is_acyclic


def arrival_order(count: int) -> List[int]:
    """The identity schedule: transactions in arrival order."""
    return list(range(count))


def optimal_reorder(rwsets: Sequence, max_transactions: int = 16) -> ReorderResult:
    """Abort-minimal reordering by exhaustive subset search.

    Finds a maximum subset of transactions whose induced conflict graph
    is acyclic and returns a serializable schedule over it. Complexity is
    exponential (maximum induced acyclic subgraph is NP-hard), so inputs
    larger than ``max_transactions`` are rejected.
    """
    n = len(rwsets)
    if n > max_transactions:
        raise ValueError(
            f"optimal_reorder is exponential; refusing n={n} > {max_transactions}"
        )
    started = wall_clock_seconds()
    graph = build_conflict_graph(rwsets)
    if is_acyclic(graph):
        best = list(range(n))
    else:
        best = []
        found = False
        for size in range(n - 1, 0, -1):
            for subset in combinations(range(n), size):
                if is_acyclic(graph.subgraph(subset)):
                    best = list(subset)
                    found = True
                    break
            if found:
                break
    survivors = set(best)
    reduced = build_conflict_graph([rwsets[i] for i in best])
    local_schedule = _build_schedule(reduced)
    schedule = [best[i] for i in local_schedule]
    aborted = [i for i in range(n) if i not in survivors]
    return ReorderResult(
        schedule=schedule,
        aborted=aborted,
        cycles_found=0,
        elapsed_seconds=wall_clock_seconds() - started,
    )


def bcc_reorder(rwsets: Sequence) -> Tuple[List[int], List[int]]:
    """BCC-style rescue: retro-date conflicting commits to their begin.

    Processes transactions in arrival order against the within-block
    validation rule. A transaction that would abort (it read a key an
    earlier committed transaction wrote) is *rescued to the front* of the
    schedule if committing it before every already-committed transaction
    causes no conflict: nothing committed may have read or written a key
    it writes. Returns ``(schedule, aborted)``.
    """
    front: List[int] = []     # rescued transactions, committed "at begin"
    tail: List[int] = []      # normally committed transactions
    aborted: List[int] = []
    written_by_committed: set = set()
    read_by_committed: set = set()
    front_writes: set = set()

    for index, rwset in enumerate(rwsets):
        stale = any(key in written_by_committed for key in rwset.read_keys)
        if not stale:
            tail.append(index)
            written_by_committed |= set(rwset.write_keys)
            read_by_committed |= set(rwset.read_keys)
            continue
        # Try the begin-time rescue. Moving the commit to the begin time
        # must not (a) read anything an earlier-rescued transaction wrote
        # (those commit even earlier in the final order), nor (b) write
        # anything an already-committed transaction read or wrote.
        reads_front = set(rwset.read_keys) & front_writes
        writes_clash = (
            set(rwset.write_keys) & read_by_committed
            or set(rwset.write_keys) & written_by_committed
        )
        if reads_front or writes_clash:
            aborted.append(index)
            continue
        front.append(index)
        front_writes |= set(rwset.write_keys)
        # Its writes become visible "before" everyone; future readers of
        # those keys read the committed state, which now includes them.
        written_by_committed |= set(rwset.write_keys)
        read_by_committed |= set(rwset.read_keys)
    return front + tail, aborted
