"""Transaction reordering — Algorithm 1 of the paper.

Given the read/write sets of one block's transactions, produce a
serializable schedule that minimises unnecessary within-block aborts:

1. build the conflict graph (``repro.core.conflict_graph``);
2. split it into strongly connected subgraphs (Tarjan) and enumerate the
   elementary cycles within each (Johnson);
3. count, per transaction, the number of cycles it participates in;
4. greedily remove the transaction occurring in the most cycles (ties
   break toward the smaller index, keeping the algorithm deterministic)
   until no cycle survives — the removed transactions are aborted early;
5. rebuild the now cycle-free conflict graph and emit a serializable
   schedule by repeatedly locating a "source" (a node whose parents are
   all scheduled) walking upwards, scheduling it, then walking downwards —
   finally inverting the collected order, exactly as the paper's
   pseudo-code does.

The reordering is deliberately not abort-minimal (that would be NP-hard, as
the paper notes); it is a lightweight heuristic.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.core.conflict_graph import build_conflict_graph
from repro.graphalgo.digraph import DiGraph
from repro.graphalgo.johnson import simple_cycles
from repro.graphalgo.tarjan import strongly_connected_components

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.rwset import ReadWriteSet


def wall_clock_seconds() -> float:
    """The wall-clock channel's clock source.

    Every wall-clock reading feeding :attr:`ReorderResult.elapsed_seconds`
    goes through this single function, and the field is ``compare=False``:
    wall time is reporting-only (the paper's Figures 15/16; trace span
    args) and never participates in determinism comparisons.
    """
    return time.perf_counter()


@dataclass
class ReorderResult:
    """Outcome of reordering one block.

    ``schedule`` holds the indices of the surviving transactions in final
    commit order; ``aborted`` the indices removed to break conflict
    cycles. ``elapsed_seconds`` is the wall-clock cost of the reordering
    computation itself (the quantity plotted in the paper's Figures 15
    and 16); it is *not* simulated time, and it is excluded from equality
    so two runs over the same block compare equal field-for-field.
    """

    schedule: List[int]
    aborted: List[int]
    cycles_found: int
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def num_kept(self) -> int:
        """Number of transactions that survived reordering."""
        return len(self.schedule)


def reorder(
    rwsets: Sequence["ReadWriteSet"],
    max_cycles: Optional[int] = None,
    max_cycle_nodes: Optional[int] = None,
) -> ReorderResult:
    """Run Algorithm 1 on a block's read/write sets.

    ``max_cycles`` caps how many cycles Johnson's algorithm enumerates and
    ``max_cycle_nodes`` caps the total node mass across the enumerated
    cycles (dense blocks contain exponentially many, very long cycles
    whose full enumeration adds nothing to the greedy choice). When either
    cap is hit the result is still guaranteed acyclic: after the counted
    cycles are cleared, residual cycles are broken by a linear-time
    feedback-vertex-set sweep.
    """
    started = wall_clock_seconds()
    if max_cycle_nodes is None:
        max_cycle_nodes = max(10_000, 10 * len(rwsets))

    # Step 1: conflict graph over all transactions of the block.
    graph = build_conflict_graph(rwsets)

    # Step 2: strongly connected subgraphs, then the cycles within each.
    cycles: List[Set[int]] = []
    cycle_nodes = 0
    truncated = False
    for component in strongly_connected_components(graph):
        if len(component) <= 1:
            continue
        subgraph = graph.subgraph(component)
        budget = None if max_cycles is None else max_cycles - len(cycles)
        if (budget is not None and budget <= 0) or cycle_nodes >= max_cycle_nodes:
            truncated = True
            break
        found = 0
        for cycle in simple_cycles(subgraph, max_cycles=budget):
            cycles.append(set(cycle))
            cycle_nodes += len(cycle)
            found += 1
            if cycle_nodes >= max_cycle_nodes:
                truncated = True
                break
        if budget is not None and found >= budget:
            truncated = True

    # Steps 3 + 4: count cycle membership and greedily abort.
    aborted = _break_cycles(cycles)

    surviving = [i for i in range(len(rwsets)) if i not in aborted]

    if truncated:
        # The cycle list was incomplete; make sure nothing cyclic survives.
        aborted |= _abort_residual_cycles(graph, surviving)
        surviving = [i for i in range(len(rwsets)) if i not in aborted]

    # Step 5: rebuild the cycle-free conflict graph and derive the schedule.
    survivor_rwsets = [rwsets[i] for i in surviving]
    reduced = build_conflict_graph(survivor_rwsets)
    local_schedule = _build_schedule(reduced)
    schedule = [surviving[local] for local in local_schedule]

    elapsed = wall_clock_seconds() - started
    return ReorderResult(
        schedule=schedule,
        aborted=sorted(aborted),
        cycles_found=len(cycles),
        elapsed_seconds=elapsed,
    )


def _break_cycles(cycles: List[Set[int]]) -> Set[int]:
    """Greedily pick transactions to abort until every cycle is broken.

    Implements the max-heap strategy of Algorithm 1 (lines 23-42): pop the
    transaction participating in the most cycles, clear those cycles, and
    decrement the counts of their other members. Ties break toward the
    smaller transaction index so the result is deterministic.
    """
    counts: Dict[int, int] = {}
    membership: Dict[int, List[int]] = {}
    for cycle_index, cycle in enumerate(cycles):
        for tx in cycle:
            counts[tx] = counts.get(tx, 0) + 1
            membership.setdefault(tx, []).append(cycle_index)

    # Lazy-deletion max-heap keyed by (-count, tx index).
    heap = [(-count, tx) for tx, count in counts.items()]
    heapq.heapify(heap)
    alive_cycles = len(cycles)
    cleared = [False] * len(cycles)
    aborted: Set[int] = set()

    while alive_cycles > 0:
        negative_count, tx = heapq.heappop(heap)
        if tx in aborted or counts.get(tx, 0) != -negative_count:
            continue  # stale heap entry
        if counts[tx] == 0:
            continue
        aborted.add(tx)
        for cycle_index in membership.get(tx, ()):
            if cleared[cycle_index]:
                continue
            cleared[cycle_index] = True
            alive_cycles -= 1
            for member in cycles[cycle_index]:
                if member != tx and member not in aborted:
                    counts[member] -= 1
                    heapq.heappush(heap, (-counts[member], member))
        counts[tx] = 0
    return aborted


def _abort_residual_cycles(graph: DiGraph, surviving: List[int]) -> Set[int]:
    """Fallback for truncated cycle enumeration: force acyclicity.

    A feedback-vertex-set heuristic with O(E) bookkeeping: repeatedly trim
    nodes that cannot be on a cycle (in-degree or out-degree zero), then
    remove the highest-degree remaining node, until nothing is left. The
    removed high-degree nodes are the extra aborts. Runs only when the
    ``max_cycles`` cap fired on a dense block.
    """
    keep = set(surviving)
    successors: Dict[int, Set[int]] = {}
    predecessors: Dict[int, Set[int]] = {}
    extra: Set[int] = set()
    for node in surviving:
        succ = {t for t in graph.successors(node) if t in keep and t != node}
        pred = {s for s in graph.predecessors(node) if s in keep and s != node}
        if graph.has_edge(node, node):
            # A self-conflict cannot occur (i != j in the builder), but
            # guard anyway: a self-loop is an unbreakable cycle.
            extra.add(node)
            continue
        successors[node] = succ
        predecessors[node] = pred
    for node in extra:
        for other in successors:
            successors[other].discard(node)
            predecessors[other].discard(node)

    def detach(node: int) -> None:
        for target in successors.pop(node):
            if target in predecessors:
                predecessors[target].discard(node)
        for source in predecessors.pop(node):
            if source in successors:
                successors[source].discard(node)

    trim = [
        n
        for n in successors
        if not successors[n] or not predecessors[n]
    ]
    while successors:
        while trim:
            node = trim.pop()
            if node not in successors:
                continue
            neighbours = successors[node] | predecessors[node]
            detach(node)
            for neighbour in neighbours:
                if neighbour in successors and (
                    not successors[neighbour] or not predecessors[neighbour]
                ):
                    trim.append(neighbour)
        if not successors:
            break
        victim = max(
            successors,
            key=lambda n: (len(successors[n]) + len(predecessors[n]), -n),
        )
        extra.add(victim)
        neighbours = successors[victim] | predecessors[victim]
        detach(victim)
        for neighbour in neighbours:
            if neighbour in successors and (
                not successors[neighbour] or not predecessors[neighbour]
            ):
                trim.append(neighbour)
    return extra


def _build_schedule(graph: DiGraph) -> List[int]:
    """Derive the serializable schedule from a cycle-free conflict graph.

    Follows the paper's traversal (Algorithm 1, lines 47-71): starting
    from the unscheduled node with the smallest index, walk *upwards*
    (to parents) until a node whose parents are all scheduled is found,
    schedule it, then walk *downwards* to an unscheduled child and repeat.
    The collected order is inverted at the end, so "sources" — writers —
    commit last and the readers they would invalidate commit first.
    """
    nodes = sorted(graph.nodes())
    scheduled: Set[int] = set()
    order: List[int] = []
    cursor = 0  # getNextNode() position

    current: Optional[int] = None
    safety = 0
    limit = max(1, len(nodes) * len(nodes) + len(nodes))
    while len(order) < len(nodes):
        safety += 1
        if safety > 4 * limit:  # pragma: no cover - guarded by acyclicity
            raise RuntimeError("schedule traversal failed to terminate")
        if current is None or current in scheduled:
            while cursor < len(nodes) and nodes[cursor] in scheduled:
                cursor += 1
            if cursor >= len(nodes):  # pragma: no cover - loop guard
                break
            current = nodes[cursor]
        # Traverse upwards to find a source.
        parent_found = False
        for parent in sorted(graph.predecessors(current)):
            if parent not in scheduled:
                current = parent
                parent_found = True
                break
        if parent_found:
            continue
        # A source: schedule it and traverse downwards.
        scheduled.add(current)
        order.append(current)
        next_node: Optional[int] = None
        for child in sorted(graph.successors(current)):
            if child not in scheduled:
                next_node = child
                break
        current = next_node
    order.reverse()
    return order
