"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LedgerError(ReproError):
    """Raised for violations of ledger invariants (broken hash chain, etc.)."""


class LedgerVerificationError(LedgerError):
    """Raised when an exported ledger file is truncated, corrupt, or fails
    verification; carries the offending block index when known."""

    def __init__(self, message: str, block_index=None) -> None:
        super().__init__(message)
        self.block_index = block_index


class CheckpointError(ReproError):
    """Raised when a checkpoint file is corrupt, unreadable, or a resumed
    run diverges from the digests the checkpoint recorded."""


class StateError(ReproError):
    """Raised for invalid operations on the state database."""


class CryptoError(ReproError):
    """Raised for signature or identity failures."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class ChaincodeError(ReproError):
    """Raised when a chaincode invocation fails or misbehaves."""


class PolicyError(ReproError):
    """Raised for malformed endorsement policies."""


class ConfigError(ReproError):
    """Raised for invalid network or benchmark configuration."""
