"""Deterministic, seeded fault injection for the simulated Fabric network.

The paper evaluates a healthy 6-node cluster, but the system it models is
a crash-tolerant distributed OS: gossip dissemination, leader peers and
``OutOf`` endorsement policies exist precisely to survive node failures
(Androulaki et al.). This module lets the reproduction study that failure
behaviour without giving up determinism:

- :class:`FaultSchedule` is plain, picklable configuration data carried
  inside :class:`~repro.fabric.config.FabricConfig`. It describes peer
  crash/recovery windows, per-link message loss and latency jitter, and
  orderer stall windows. Because it is data, it composes with the sweep
  engine and is part of the result-cache fingerprint.
- :class:`FaultInjector` is the runtime built by
  :class:`~repro.fabric.network.FabricNetwork` when the schedule is not
  all-zero. All randomness (drop draws, jitter draws, retry-backoff
  jitter) comes from dedicated seeded streams derived from the network
  seed, so a fault run is exactly reproducible — the same config and seed
  produce the same metrics, the same crash/recovery event log and the
  same ledger, in-process or across sweep workers.

With an all-zero schedule no injector is built and no extra simulation
event is ever scheduled, so the healthy path stays bit-identical to a
build without this module (enforced by a regression test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.distributions import Rng, mix_seed

#: Seed salt (an int, so derivation never depends on string hashing)
#: separating the fault streams from the workload streams.
FAULT_SEED_SALT = 0xFA17

#: Seed salt separating misbehaving-client population and behavior draws
#: from every other stream.
MISBEHAVIOR_SEED_SALT = 0x3BAD

#: The client misbehavior kinds :class:`MisbehaviorSpec` accepts.
MISBEHAVIOR_KINDS = ("stale_replay", "oversized_rwset", "resubmit_storm")


@dataclass(frozen=True)
class CrashWindow:
    """One peer outage: ``peer`` is down during ``[at, at + duration)``.

    While down the peer refuses endorsements, drops in-flight work and
    discards delivered blocks; on recovery it catches up by replaying the
    blocks it missed and re-joins gossip one hop behind its org leader.
    """

    peer: str
    at: float
    duration: float

    def describe(self) -> str:
        """Compact ``peer@at+duration`` form for error messages."""
        return f"{self.peer}@{self.at}+{self.duration}"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed window."""
        if not self.peer:
            raise ConfigError("crash window needs a peer name")
        if self.at < 0:
            raise ConfigError(f"crash time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ConfigError(
                f"crash duration must be > 0, got {self.duration}"
            )

    @property
    def until(self) -> float:
        """The recovery instant."""
        return self.at + self.duration


@dataclass(frozen=True)
class StallWindow:
    """An ordering-service stall: consensus makes no progress in
    ``[at, at + duration)`` (leader re-election, fsync storm, ...)."""

    at: float
    duration: float

    def describe(self) -> str:
        """Compact ``stall@at+duration`` form for error messages."""
        return f"stall@{self.at}+{self.duration}"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed window."""
        if self.at < 0:
            raise ConfigError(f"stall time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ConfigError(
                f"stall duration must be > 0, got {self.duration}"
            )

    @property
    def until(self) -> float:
        """The instant the orderer resumes."""
        return self.at + self.duration


@dataclass(frozen=True)
class OrdererCrashWindow:
    """One ordering-node outage: node ``node`` (an index into the
    replicated cluster) is down during ``[at, at + duration)``.

    A crashed node stops all consensus activity — timers, votes,
    replication — and ignores every message. Its Raft log and term
    survive the crash (crash-fault tolerance models a durable write-ahead
    log); on recovery the node resumes as a follower and is reconciled by
    the current leader. Requires ``FabricConfig.orderer_nodes > 1``.
    """

    node: int
    at: float
    duration: float

    def describe(self) -> str:
        """Compact ``orderer<node>@at+duration`` form for errors."""
        return f"orderer{self.node}@{self.at}+{self.duration}"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed window."""
        if self.node < 0:
            raise ConfigError(
                f"orderer crash needs a node index >= 0, got {self.node}"
            )
        if self.at < 0:
            raise ConfigError(
                f"orderer crash time must be >= 0, got {self.at}"
            )
        if self.duration <= 0:
            raise ConfigError(
                f"orderer crash duration must be > 0, got {self.duration}"
            )

    @property
    def until(self) -> float:
        """The recovery instant."""
        return self.at + self.duration


@dataclass(frozen=True)
class PartitionWindow:
    """A network partition of the ordering cluster during
    ``[at, at + duration)``.

    ``groups`` lists disjoint groups of orderer-node indices; nodes can
    exchange consensus messages only within their group. Nodes not named
    in any group are each isolated on their own. Minority groups cannot
    assemble a quorum and stall; when the window ends the cluster heals
    and log reconciliation brings every group onto one chain without
    forking. Requires ``FabricConfig.orderer_nodes > 1``.

    Alternatively ``channels`` (sharded runs only, ``FabricConfig.
    channels >= 2``) names whole channel runtimes to isolate: each listed
    channel's ordering service makes no progress during the window —
    a clustered orderer is split into quorumless singletons, a single
    orderer stalls — while every other channel keeps committing. Exactly
    one of ``groups`` / ``channels`` must be set.
    """

    at: float
    duration: float
    groups: Tuple[Tuple[int, ...], ...] = ()
    channels: Tuple[int, ...] = ()

    def describe(self) -> str:
        """Compact ``partition@at+duration [0,1|2]`` form for errors."""
        if self.channels:
            layout = ",".join(f"ch{channel}" for channel in self.channels)
        else:
            layout = "|".join(
                ",".join(str(node) for node in group) for group in self.groups
            )
        return f"partition@{self.at}+{self.duration} [{layout}]"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed window."""
        if self.at < 0:
            raise ConfigError(
                f"partition time must be >= 0, got {self.at}"
            )
        if self.duration <= 0:
            raise ConfigError(
                f"partition duration must be > 0, got {self.duration}"
            )
        if self.channels:
            if self.groups:
                raise ConfigError(
                    "a partition window takes either node groups or "
                    "channels, not both"
                )
            seen_channels = set()
            for channel in self.channels:
                if channel < 0:
                    raise ConfigError(
                        f"partition channel indices must be >= 0, got {channel}"
                    )
                if channel in seen_channels:
                    raise ConfigError(
                        f"channel {channel} appears twice in the partition"
                    )
                seen_channels.add(channel)
            return
        if len(self.groups) < 2:
            raise ConfigError(
                "a partition needs at least two groups of node indices"
            )
        seen = set()
        for group in self.groups:
            if not group:
                raise ConfigError("partition groups must be non-empty")
            for node in group:
                if node < 0:
                    raise ConfigError(
                        f"partition node indices must be >= 0, got {node}"
                    )
                if node in seen:
                    raise ConfigError(
                        f"node {node} appears in more than one partition group"
                    )
                seen.add(node)

    @property
    def until(self) -> float:
        """The instant the partition heals."""
        return self.at + self.duration


@dataclass(frozen=True)
class MisbehaviorSpec:
    """One population of misbehaving clients, as picklable data.

    ``fraction`` of each channel's clients (at least one, chosen from a
    dedicated seeded stream) adopt the behavior; honest clients are
    untouched. The kinds model the client-side abuse catalogued for real
    Fabric deployments:

    ``stale_replay``
        The client holds a fully endorsed transaction for ``hold_time``
        simulated seconds before submitting it, so its read set is stale
        by the time validation runs — a replayed or long-buffered
        proposal. Surfaces as MVCC aborts (or early aborts on Fabric++).
    ``oversized_rwset``
        The client pads the transaction's read/write set with ``padding``
        extra keys *after* endorsement, so the submitted rw-set no longer
        matches what the endorsers signed. Surfaces as policy aborts.
    ``resubmit_storm``
        Every failed transaction is refired ``storm_factor`` times
        (bounded by ``storm_cap`` per client) regardless of the
        ``resubmit_failed`` setting — a buggy retry loop amplifying load
        exactly when the system is struggling.
    """

    kind: str
    #: Fraction of each channel's clients adopting the behavior.
    fraction: float = 0.25
    #: Probability that one transaction of a misbehaving client is
    #: affected (stale_replay / oversized_rwset).
    rate: float = 1.0
    #: stale_replay: seconds an endorsed transaction is held back.
    hold_time: float = 0.25
    #: oversized_rwset: extra keys appended to the write set.
    padding: int = 64
    #: resubmit_storm: refires per failure and the per-client lifetime cap.
    storm_factor: int = 4
    storm_cap: int = 256

    def describe(self) -> str:
        """Compact ``kind x fraction`` form for error messages."""
        return f"{self.kind} x {self.fraction}"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed spec."""
        if self.kind not in MISBEHAVIOR_KINDS:
            raise ConfigError(
                f"unknown misbehavior kind {self.kind!r}; "
                f"expected one of {', '.join(MISBEHAVIOR_KINDS)}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(
                f"misbehavior fraction must be in (0, 1], got {self.fraction}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError(
                f"misbehavior rate must be in (0, 1], got {self.rate}"
            )
        if self.hold_time <= 0:
            raise ConfigError(f"hold_time must be > 0, got {self.hold_time}")
        if self.padding < 1:
            raise ConfigError(f"padding must be >= 1, got {self.padding}")
        if self.storm_factor < 1:
            raise ConfigError(
                f"storm_factor must be >= 1, got {self.storm_factor}"
            )
        if self.storm_cap < 1:
            raise ConfigError(f"storm_cap must be >= 1, got {self.storm_cap}")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that may go wrong in one run, as picklable data.

    The default instance is all-zero: no crashes, no loss, no jitter, no
    stalls, no endorsement timeout — and the network then builds no fault
    machinery at all. Every field participates in the experiment cache
    fingerprint through :func:`~repro.bench.results.config_to_dict`.
    """

    #: Peer outages. The reference peer (``peer0`` of the first org) is
    #: the measurement anchor and must not appear here.
    crashes: Tuple[CrashWindow, ...] = ()
    #: Probability that any faulty-link message is lost. Applies to the
    #: client<->endorser exchange and to block dissemination; the
    #: client->orderer path models a reliable TCP session.
    drop_probability: float = 0.0
    #: Mean of the exponential extra latency added per faulty-link
    #: message (0 = no jitter).
    jitter_mean: float = 0.0
    #: Ordering-service stall windows (apply to every channel).
    stalls: Tuple[StallWindow, ...] = ()
    #: Crash/recovery windows for individual nodes of the replicated
    #: ordering cluster (``repro.consensus``). Each window names a node
    #: index; requires ``orderer_nodes > 1``.
    orderer_crashes: Tuple[OrdererCrashWindow, ...] = ()
    #: Network partitions splitting the ordering cluster into groups
    #: that cannot exchange consensus messages. At most one partition is
    #: active at a time; requires ``orderer_nodes > 1``.
    partitions: Tuple[PartitionWindow, ...] = ()
    #: Client-side endorsement collection deadline (simulated seconds).
    #: 0 disables the robust collection path entirely; required > 0 when
    #: crashes or message loss are scheduled, because a client waiting
    #: forever on a dead endorser would otherwise hang.
    endorsement_timeout: float = 0.0
    #: Bounded retries after an unsatisfiable endorsement round.
    max_endorsement_retries: int = 3
    #: Exponential backoff between endorsement retries:
    #: ``base * factor**attempt * (1 + jitter * U[0,1))``.
    retry_backoff_base: float = 0.05
    retry_backoff_factor: float = 2.0
    retry_backoff_jitter: float = 0.5
    #: Gossip anti-entropy: a dropped block delivery is re-attempted
    #: after this many simulated seconds.
    block_redelivery_interval: float = 0.25
    #: A recovering peer polls its catch-up source at this interval until
    #: it has replayed every block it missed while down.
    catchup_poll_interval: float = 0.1
    #: Misbehaving-client populations (stale replayers, oversized rw-set
    #: senders, resubmit storms). Membership and behavior draws come from
    #: dedicated seeded streams, so populations are deterministic.
    misbehaviors: Tuple[MisbehaviorSpec, ...] = ()

    @property
    def is_zero(self) -> bool:
        """True when this schedule injects nothing at all."""
        return (
            not self.crashes
            and self.drop_probability == 0.0
            and self.jitter_mean == 0.0
            and not self.stalls
            and not self.orderer_crashes
            and not self.partitions
            and self.endorsement_timeout == 0.0
            and not self.misbehaviors
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (``asdict``); inverse of :func:`schedule_from_dict`."""
        from dataclasses import asdict

        return asdict(self)

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the schedule is inconsistent."""
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )
        if self.jitter_mean < 0:
            raise ConfigError(
                f"jitter_mean must be >= 0, got {self.jitter_mean}"
            )
        if self.endorsement_timeout < 0:
            raise ConfigError(
                f"endorsement_timeout must be >= 0, got {self.endorsement_timeout}"
            )
        if self.max_endorsement_retries < 0:
            raise ConfigError("max_endorsement_retries must be >= 0")
        if self.retry_backoff_base <= 0 or self.retry_backoff_factor < 1:
            raise ConfigError("retry backoff must have base > 0 and factor >= 1")
        if self.retry_backoff_jitter < 0:
            raise ConfigError("retry_backoff_jitter must be >= 0")
        if self.block_redelivery_interval <= 0:
            raise ConfigError("block_redelivery_interval must be > 0")
        if self.catchup_poll_interval <= 0:
            raise ConfigError("catchup_poll_interval must be > 0")
        for kind, windows in (
            ("crashes", self.crashes),
            ("stalls", self.stalls),
            ("orderer_crashes", self.orderer_crashes),
            ("partitions", self.partitions),
            ("misbehaviors", self.misbehaviors),
        ):
            for index, window in enumerate(windows):
                try:
                    window.validate()
                except ConfigError as error:
                    # Name the offending window so a schedule assembled
                    # from a file or a generator is debuggable.
                    raise ConfigError(
                        f"{kind}[{index}] ({window.describe()}): {error}"
                    ) from error
        # A client facing a dead or lossy endorser needs a deadline to
        # make progress; refuse schedules that would hang it instead.
        if (self.crashes or self.drop_probability > 0) and (
            self.endorsement_timeout <= 0
        ):
            raise ConfigError(
                "schedules with crashes or message loss need "
                "endorsement_timeout > 0 (clients must not wait forever)"
            )
        by_peer: Dict[str, List[CrashWindow]] = {}
        for window in self.crashes:
            by_peer.setdefault(window.peer, []).append(window)
        for peer, windows in by_peer.items():
            windows.sort(key=lambda w: w.at)
            for earlier, later in zip(windows, windows[1:]):
                if later.at < earlier.until:
                    raise ConfigError(
                        f"overlapping crash windows for {peer}: "
                        f"({earlier.describe()}) and ({later.describe()})"
                    )
        by_node: Dict[int, List[OrdererCrashWindow]] = {}
        for orderer_window in self.orderer_crashes:
            by_node.setdefault(orderer_window.node, []).append(orderer_window)
        for node, node_windows in by_node.items():
            node_windows.sort(key=lambda w: w.at)
            for earlier, later in zip(node_windows, node_windows[1:]):
                if later.at < earlier.until:
                    raise ConfigError(
                        f"overlapping orderer crash windows for node {node}: "
                        f"({earlier.describe()}) and ({later.describe()})"
                    )
        ordered_partitions = sorted(self.partitions, key=lambda w: w.at)
        for earlier, later in zip(ordered_partitions, ordered_partitions[1:]):
            if later.at < earlier.until:
                raise ConfigError(
                    "overlapping partition windows: "
                    f"({earlier.describe()}) and ({later.describe()})"
                )


def schedule_from_dict(data: Dict[str, object]) -> FaultSchedule:
    """Rebuild a :class:`FaultSchedule` from its ``asdict`` form.

    Accepts both tuples (fresh ``asdict``) and lists (after a JSON round
    trip) for the window collections. Unknown top-level keys raise
    :class:`ConfigError` naming the key, so a typo in a ``--faults-file``
    fails loudly instead of silently configuring nothing.
    """
    from dataclasses import fields as dataclass_fields

    data = dict(data)
    known = {field.name for field in dataclass_fields(FaultSchedule)}
    unknown = sorted(set(data) - known)
    if unknown:
        keys = ", ".join(repr(key) for key in unknown)
        raise ConfigError(
            f"unknown fault schedule key(s) {keys}; "
            f"expected a subset of: {', '.join(sorted(known))}"
        )
    crashes = tuple(
        window if isinstance(window, CrashWindow) else CrashWindow(**window)
        for window in data.pop("crashes", ())
    )
    stalls = tuple(
        window if isinstance(window, StallWindow) else StallWindow(**window)
        for window in data.pop("stalls", ())
    )
    orderer_crashes = tuple(
        window
        if isinstance(window, OrdererCrashWindow)
        else OrdererCrashWindow(**window)
        for window in data.pop("orderer_crashes", ())
    )
    partitions = []
    for window in data.pop("partitions", ()):
        if isinstance(window, PartitionWindow):
            partitions.append(window)
            continue
        window = dict(window)
        window["groups"] = tuple(
            tuple(group) for group in window.get("groups", ())
        )
        window["channels"] = tuple(window.get("channels", ()))
        partitions.append(PartitionWindow(**window))
    misbehaviors = tuple(
        spec if isinstance(spec, MisbehaviorSpec) else MisbehaviorSpec(**spec)
        for spec in data.pop("misbehaviors", ())
    )
    return FaultSchedule(
        crashes=crashes,
        stalls=stalls,
        orderer_crashes=orderer_crashes,
        partitions=tuple(partitions),
        misbehaviors=misbehaviors,
        **data,
    )


def assign_misbehaviors(
    schedule: FaultSchedule,
    seed: int,
    channel_index: int,
    num_clients: int,
) -> Dict[int, MisbehaviorSpec]:
    """Pick which of a channel's clients misbehave, deterministically.

    Each spec selects ``round(fraction * num_clients)`` clients (at least
    one) from its own seeded stream; when specs overlap on a client, the
    first spec wins. The assignment depends only on
    ``(seed, channel_index, spec index)``, never on call order, so it is
    identical in-process and across sweep workers.
    """
    assignment: Dict[int, MisbehaviorSpec] = {}
    for spec_index, spec in enumerate(schedule.misbehaviors):
        rng = Rng(
            mix_seed(seed, MISBEHAVIOR_SEED_SALT, channel_index, spec_index, 0)
        )
        count = max(1, round(spec.fraction * num_clients))
        count = min(count, num_clients)
        for client_index in rng.sample_distinct(num_clients, count):
            assignment.setdefault(client_index, spec)
    return assignment


def crash_schedule(
    peers: Sequence[str],
    crashes_per_peer: float,
    run_duration: float,
    mean_outage: float,
    seed: int,
) -> Tuple[CrashWindow, ...]:
    """Generate a random-but-deterministic crash schedule, as data.

    Each named peer suffers ``round(crashes_per_peer)`` outages (the
    fractional part adds one more outage with that probability), placed
    uniformly over ``[0, run_duration)`` with exponentially distributed
    lengths of mean ``mean_outage``. Windows for one peer never overlap:
    they are spaced over disjoint segments of the run. The same inputs
    always produce the same windows, so benchmarks can describe a whole
    crash-density axis by a single float.
    """
    rng = Rng((seed * 0x9E3779B1 + FAULT_SEED_SALT) & 0x7FFFFFFF)
    windows: List[CrashWindow] = []
    for peer in peers:
        count = int(crashes_per_peer)
        if rng.random() < crashes_per_peer - count:
            count += 1
        if count <= 0:
            continue
        # One outage per equal segment keeps windows disjoint by design.
        segment = run_duration / count
        for index in range(count):
            length = min(rng.exponential(mean_outage), 0.8 * segment)
            start = segment * index + rng.uniform(0.0, segment - length)
            windows.append(CrashWindow(peer=peer, at=start, duration=length))
    return tuple(windows)


class FaultInjector:
    """Runtime fault machinery for one network (built only when needed).

    Owns the seeded fault randomness and the event log. The message
    stream (drop and jitter draws) is separate from each client's
    retry-backoff stream, and both are separate from the workload
    streams, so enabling faults never perturbs which transactions a
    workload generates.
    """

    def __init__(self, env, schedule: FaultSchedule, seed: int, metrics) -> None:
        self.env = env
        self.schedule = schedule
        self.metrics = metrics
        self.seed = seed
        self._message_rng = Rng((seed * 0x9E3779B1 + FAULT_SEED_SALT) & 0x7FFFFFFF)

    # -- randomness ---------------------------------------------------------

    def backoff_rng(self, channel_index: int, client_index: int) -> Rng:
        """A dedicated backoff-jitter stream for one client."""
        return Rng(
            hash((self.seed, FAULT_SEED_SALT, channel_index, client_index))
            & 0x7FFFFFFF
        )

    def message_delay(self, base: float) -> Optional[float]:
        """The effective latency of one faulty-link message.

        Returns None when the message is lost (counted as a drop), else
        ``base`` plus an exponential jitter draw.
        """
        schedule = self.schedule
        if schedule.drop_probability > 0 and (
            self._message_rng.random() < schedule.drop_probability
        ):
            self.record("messages_dropped")
            return None
        if schedule.jitter_mean > 0:
            return base + self._message_rng.exponential(schedule.jitter_mean)
        return base

    # -- event log ----------------------------------------------------------

    def record(self, counter: str, amount: int = 1) -> None:
        """Bump a fault counter on the run's metrics."""
        self.metrics.record_fault(counter, amount)

    def log_event(self, kind: str, subject: str) -> None:
        """Append a timestamped entry to the fault event log."""
        self.metrics.record_fault_event(self.env.now, kind, subject)

    # -- schedule execution --------------------------------------------------

    def start(self, network) -> None:
        """Launch the crash and stall processes against ``network``."""
        for window in self.schedule.crashes:
            self.env.process(
                self._crash_process(network, window),
                name=f"fault/crash/{window.peer}",
            )
        if self.schedule.stalls:
            windows = tuple(
                sorted(self.schedule.stalls, key=lambda w: (w.at, w.duration))
            )
            for orderer in network.orderers.values():
                orderer.install_stalls(windows)
            for window in windows:
                self.env.process(
                    self._stall_logger(window), name="fault/stall"
                )
        for window in self.schedule.orderer_crashes:
            self.env.process(
                self._orderer_crash_process(network, window),
                name=f"fault/orderer-crash/{window.node}",
            )
        for window in self.schedule.partitions:
            self.env.process(
                self._partition_process(network, window),
                name="fault/partition",
            )

    def _crash_process(self, network, window: CrashWindow):
        yield window.at  # bare-delay sleep until the window opens
        network.crash_peer(window.peer)
        yield window.duration
        network.recover_peer(window.peer)

    def _stall_logger(self, window: StallWindow):
        yield window.at  # bare-delay sleep until the window opens
        self.record("orderer_stalls")
        self.log_event("stall_begin", "orderer")
        yield window.duration
        self.log_event("stall_end", "orderer")

    def _orderer_crash_process(self, network, window: OrdererCrashWindow):
        yield window.at  # bare-delay sleep until the window opens
        self.record("orderer_crashes")
        self.log_event("orderer_crash", f"orderer{window.node}")
        network.crash_orderer(window.node)
        yield window.duration
        self.log_event("orderer_recover", f"orderer{window.node}")
        network.recover_orderer(window.node)

    def _partition_process(self, network, window: PartitionWindow):
        yield window.at  # bare-delay sleep until the window opens
        self.record("partitions")
        self.log_event("partition_begin", window.describe())
        network.set_partition(window.groups)
        yield window.duration
        self.log_event("partition_heal", "orderers")
        network.heal_partition()
