"""Fabric++ reproduction — transaction reordering and early abort for
Hyperledger Fabric.

A from-scratch Python reproduction of *Blurring the Lines between
Blockchains and Database Systems: the Case of Hyperledger Fabric*
(Sharma, Schuhknecht, Agrawal, Dittrich — SIGMOD 2019): the full
simulate-order-validate-commit pipeline of Fabric v1.2, plus the paper's
two optimizations (within-block transaction reordering and early
transaction abort), running on a deterministic discrete-event simulation.

Quickstart::

    from repro import FabricConfig, FabricNetwork, SmallbankWorkload

    vanilla = FabricConfig()
    fabricpp = vanilla.with_fabric_plus_plus()
    workload = SmallbankWorkload()

    metrics = FabricNetwork(fabricpp, workload).run(duration=5.0)
    print(metrics.summary())
"""

from repro.chaos import ChaosReport, generate_chaos_schedule, run_chaos
from repro.core.reorder import ReorderResult, reorder
from repro.core.early_abort import filter_stale_within_block
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.fabric.config import (
    BatchCutConfig,
    ConsensusConfig,
    CostModel,
    FabricConfig,
)
from repro.fabric.metrics import PipelineMetrics, TxOutcome
from repro.fabric.network import FabricNetwork
from repro.fabric.policy import AllOrgs, AnyOrg, OutOf, RequireOrg
from repro.fabric.rwset import ReadWriteSet
from repro.ledger.state_db import StateDatabase, Version
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload
from repro.workloads.ycsb import YcsbParams, YcsbWorkload

__version__ = "1.0.0"

__all__ = [
    "reorder",
    "ReorderResult",
    "filter_stale_within_block",
    "Chaincode",
    "ChaincodeStub",
    "ChaosReport",
    "generate_chaos_schedule",
    "run_chaos",
    "BatchCutConfig",
    "ConsensusConfig",
    "CostModel",
    "FabricConfig",
    "PipelineMetrics",
    "TxOutcome",
    "FabricNetwork",
    "AllOrgs",
    "AnyOrg",
    "OutOf",
    "RequireOrg",
    "ReadWriteSet",
    "StateDatabase",
    "Version",
    "BlankWorkload",
    "CustomWorkload",
    "CustomWorkloadParams",
    "SmallbankParams",
    "SmallbankWorkload",
    "YcsbParams",
    "YcsbWorkload",
    "__version__",
]
