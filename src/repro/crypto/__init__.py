"""Simulated cryptography and membership substrate.

The real Fabric uses X.509 certificates (an MSP) and ECDSA signatures; the
paper shows (Figure 1) that these cryptographic computations, together with
networking, dominate end-to-end throughput. This package substitutes the
EC math with deterministic HMAC-SHA256 "signatures" over canonical payload
bytes. The substitution preserves everything the reproduced experiments
depend on:

- endorsers *sign* read/write sets, validators *verify* one signature per
  endorsement (same code path, same count of operations),
- tampered payloads or forged signers are detected (Appendix A.3.1), and
- each operation carries a configurable simulated CPU cost, so the cost
  structure (crypto-bound pipeline) matches the paper's observation.
"""

from repro.crypto.identity import Identity, IdentityRegistry, KeyPair
from repro.crypto.signing import Signature, sign, verify

__all__ = [
    "Identity",
    "IdentityRegistry",
    "KeyPair",
    "Signature",
    "sign",
    "verify",
]
