"""Simulated signatures over transaction payloads.

An endorser signs the read set, write set, executed smart contract, and the
endorsement policy (paper Appendix A.3.1). Validators recompute the
signature from the *received* payload and compare: a client that swapped in
a different write set, or a signature produced by someone other than the
claimed endorser, fails verification.

Signatures are HMAC-SHA256 under the signer's secret; verification re-MACs
with the secret fetched from the trusted :class:`IdentityRegistry`. The
registry is trusted exactly as the MSP's certificate chain is in Fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.identity import Identity, IdentityRegistry, mac

#: Optional observer called as ``recorder(kind, payload_size)`` for every
#: crypto primitive invocation ("sign" / "verify"). Installed by the trace
#: layer for the duration of a traced run; None means no overhead beyond
#: one comparison per call.
_trace_recorder: Optional[Callable[[str, int], None]] = None


def set_trace_recorder(
    recorder: Optional[Callable[[str, int], None]]
) -> Optional[Callable[[str, int], None]]:
    """Install ``recorder`` as the crypto-op observer; returns the previous
    one so callers can restore it (try/finally discipline)."""
    global _trace_recorder
    previous = _trace_recorder
    _trace_recorder = recorder
    return previous


@dataclass(frozen=True)
class Signature:
    """A signature: the claimed signer's name plus the MAC bytes."""

    signer: str
    value: bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sig({self.signer})"


def sign(identity: Identity, payload: bytes) -> Signature:
    """Sign ``payload`` as ``identity``."""
    if _trace_recorder is not None:
        _trace_recorder("sign", len(payload))
    return Signature(identity.name, mac(identity.keypair.secret, payload))


def verify(registry: IdentityRegistry, signature: Signature, payload: bytes) -> bool:
    """Check that ``signature`` is valid for ``payload``.

    Returns False (rather than raising) for a bad MAC or an unknown
    signer — validation marks such transactions invalid, it does not
    crash the peer.
    """
    if _trace_recorder is not None:
        _trace_recorder("verify", len(payload))
    if signature.signer not in registry:
        return False
    identity = registry.lookup(signature.signer)
    expected = mac(identity.keypair.secret, payload)
    return _constant_time_eq(expected, signature.value)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    """Constant-time byte comparison (hmac.compare_digest wrapper)."""
    import hmac as _hmac

    return _hmac.compare_digest(a, b)
