"""Simulated signatures over transaction payloads.

An endorser signs the read set, write set, executed smart contract, and the
endorsement policy (paper Appendix A.3.1). Validators recompute the
signature from the *received* payload and compare: a client that swapped in
a different write set, or a signature produced by someone other than the
claimed endorser, fails verification.

Signatures are HMAC-SHA256 under the signer's secret; verification re-MACs
with the secret fetched from the trusted :class:`IdentityRegistry`. The
registry is trusted exactly as the MSP's certificate chain is in Fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.identity import Identity, IdentityRegistry, mac


@dataclass(frozen=True)
class Signature:
    """A signature: the claimed signer's name plus the MAC bytes."""

    signer: str
    value: bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sig({self.signer})"


def sign(identity: Identity, payload: bytes) -> Signature:
    """Sign ``payload`` as ``identity``."""
    return Signature(identity.name, mac(identity.keypair.secret, payload))


def verify(registry: IdentityRegistry, signature: Signature, payload: bytes) -> bool:
    """Check that ``signature`` is valid for ``payload``.

    Returns False (rather than raising) for a bad MAC or an unknown
    signer — validation marks such transactions invalid, it does not
    crash the peer.
    """
    if signature.signer not in registry:
        return False
    identity = registry.lookup(signature.signer)
    expected = mac(identity.keypair.secret, payload)
    return _constant_time_eq(expected, signature.value)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    """Constant-time byte comparison (hmac.compare_digest wrapper)."""
    import hmac as _hmac

    return _hmac.compare_digest(a, b)
