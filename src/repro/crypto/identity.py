"""Identities: the membership-service-provider (MSP) stand-in.

Fabric is permissioned — all peers are known, grouped into organizations
(paper Section 2.1). An :class:`IdentityRegistry` plays the role of the MSP:
it mints key pairs for named members and lets validators look up the public
key of any signer. Because our signatures are HMAC-based (symmetric), the
"public key" is a verification token derived from the secret; the registry
is trusted, exactly like the MSP certificate authority it replaces.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.errors import CryptoError


@dataclass(frozen=True)
class KeyPair:
    """A signing secret and its derived verification token."""

    secret: bytes
    verify_token: bytes

    @classmethod
    def generate(cls, seed: bytes) -> "KeyPair":
        """Derive a deterministic key pair from ``seed``."""
        secret = hashlib.sha256(b"secret:" + seed).digest()
        verify_token = hashlib.sha256(b"verify:" + secret).digest()
        return cls(secret, verify_token)


@dataclass(frozen=True)
class Identity:
    """A named network member (peer, client, or orderer) within an org."""

    name: str
    org: str
    keypair: KeyPair = field(repr=False, compare=False, hash=False)

    @classmethod
    def create(cls, name: str, org: str) -> "Identity":
        """Mint an identity with a key pair derived from its name."""
        return cls(name, org, KeyPair.generate(f"{org}/{name}".encode()))


class IdentityRegistry:
    """The trusted directory of all network identities (MSP stand-in)."""

    def __init__(self) -> None:
        self._members: Dict[str, Identity] = {}

    def register(self, name: str, org: str) -> Identity:
        """Create and store the identity ``name`` belonging to ``org``."""
        if name in self._members:
            raise CryptoError(f"identity {name!r} already registered")
        identity = Identity.create(name, org)
        self._members[name] = identity
        return identity

    def lookup(self, name: str) -> Identity:
        """Return the registered identity called ``name``."""
        try:
            return self._members[name]
        except KeyError:
            raise CryptoError(f"unknown identity {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __iter__(self) -> Iterator[Identity]:
        return iter(self._members.values())

    def members_of(self, org: str) -> Iterator[Identity]:
        """Iterate over all identities belonging to ``org``."""
        return (member for member in self._members.values() if member.org == org)


def mac(secret: bytes, payload: bytes) -> bytes:
    """Compute the keyed MAC at the core of our simulated signatures."""
    return hmac.new(secret, payload, hashlib.sha256).digest()
