"""A lazily-materialised client population with Zipf channel affinity.

The production deployments the paper's Fabric++ optimisations would ship
into serve *millions* of accounts spread unevenly across channels. This
module models that population without ever materialising it: channel
affinity weights, per-channel account ranges and account-to-channel
lookups are all computed from seeded streams and closed-form
apportionment, so memory stays O(channels) whether the population is a
thousand accounts or a hundred million.

The affinity model composes with :mod:`repro.traffic`: a channel holding
``w`` of the account mass receives ``w`` of the fleet's client load, so
the sharded network scales each runtime's ``client_rate`` by
``channels * w`` — which feeds straight into the closed-loop pacing or
the open-loop :class:`~repro.traffic.ArrivalSampler`, whatever the
configured arrival process is.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigError
from repro.fabric.config import PopulationConfig
from repro.sim.distributions import Rng, mix_seed

#: Seed salt separating the population's rank permutation (and any
#: account-sampling stream derived here) from every other stream.
POPULATION_SEED_SALT = 0x90B5


def _zipf_weights(channels: int, s_value: float, seed: int) -> Tuple[float, ...]:
    """Per-channel account-mass weights, summing to 1.0.

    Rank ``r`` (1-based) carries mass proportional to ``1 / r**s``; the
    rank-to-channel mapping is a seeded permutation so the "hot" channel
    is a deterministic function of the seed, not always channel 0.
    """
    raw = [1.0 / (rank ** s_value) for rank in range(1, channels + 1)]
    total = sum(raw)
    permutation = Rng(mix_seed(seed, POPULATION_SEED_SALT, 0)).sample_distinct(
        channels, channels
    )
    weights = [0.0] * channels
    for channel, rank in enumerate(permutation):
        weights[channel] = raw[rank] / total
    return tuple(weights)


def _apportion(accounts: int, weights: Tuple[float, ...]) -> List[int]:
    """Largest-remainder apportionment of ``accounts`` over ``weights``."""
    quotas = [accounts * weight for weight in weights]
    counts = [int(quota) for quota in quotas]
    leftover = accounts - sum(counts)
    by_remainder = sorted(
        range(len(weights)),
        key=lambda index: (-(quotas[index] - counts[index]), index),
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return counts


@dataclass(frozen=True)
class ClientPopulation:
    """The account population of one sharded run, computed lazily.

    Accounts are numbered ``0 .. accounts-1`` and assigned to channels in
    contiguous ranges (channel order), sized by the Zipf affinity
    weights. Lookups run in O(log channels) via bisect; nothing of size
    O(accounts) is ever allocated. Instances are plain frozen dataclasses
    of a few integers per channel and pickle cleanly across sweep
    workers.
    """

    config: PopulationConfig
    channels: int
    seed: int
    _weights: Tuple[float, ...] = field(init=False, repr=False, default=())
    _starts: Tuple[int, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        if self.channels < 2:
            raise ConfigError("a client population requires channels >= 2")
        if self.config.is_off:
            raise ConfigError(
                "ClientPopulation needs a PopulationConfig with accounts > 0"
            )
        weights = _zipf_weights(self.channels, self.config.zipf_s, self.seed)
        counts = _apportion(self.config.accounts, weights)
        starts = [0]
        for count in counts:
            starts.append(starts[-1] + count)
        object.__setattr__(self, "_weights", weights)
        object.__setattr__(self, "_starts", tuple(starts))

    @property
    def accounts(self) -> int:
        """Total logical accounts."""
        return self.config.accounts

    def channel_weight(self, channel: int) -> float:
        """Fraction of the account mass homed on ``channel``."""
        return self._weights[channel]

    def channel_accounts(self, channel: int) -> int:
        """Number of accounts homed on ``channel``."""
        return self._starts[channel + 1] - self._starts[channel]

    def channel_range(self, channel: int) -> Tuple[int, int]:
        """The half-open ``[start, end)`` account-id range of ``channel``."""
        return self._starts[channel], self._starts[channel + 1]

    def account_home(self, account_id: int) -> int:
        """The channel an account id is homed on (O(log channels))."""
        if not 0 <= account_id < self.accounts:
            raise ConfigError(
                f"account id {account_id} outside [0, {self.accounts})"
            )
        return bisect.bisect_right(self._starts, account_id) - 1

    def sample_account(self, channel: int, rng: Rng) -> int:
        """Draw one account homed on ``channel`` from ``rng``.

        Uniform within the channel — key-level skew stays a *workload*
        concern; this model only decides channel affinity.
        """
        start, end = self.channel_range(channel)
        if start == end:
            raise ConfigError(
                f"channel {channel} holds no accounts "
                f"({self.accounts} accounts over {self.channels} channels)"
            )
        return rng.randint(start, end - 1)

    def client_rate_for(self, channel: int, base_rate: float) -> float:
        """Per-client firing rate on ``channel``.

        The fleet-wide offered load is preserved: a uniform population
        (``zipf_s = 0``) returns ``base_rate`` on every channel, while a
        skewed one concentrates the same total on the hot channels —
        ``sum_i rate_i == channels * base_rate`` always holds.
        """
        return base_rate * self.channels * self._weights[channel]
