"""Multi-channel sharded Fabric (``repro.channels``).

Fabric scales horizontally by *channels*: independent chains with their
own ordering service and peer subset (Androulaki et al.,
arXiv:1801.10228). This package turns ``FabricConfig.channels >= 2``
into that deployment shape inside one deterministic simulation:

- :class:`~repro.channels.topology.ChannelTopology` maps orgs and peers
  to channels and owns the qualified peer namespace
  (``peer0.OrgB.ch2``) fault schedules use;
- :class:`~repro.channels.population.ClientPopulation` models a large
  (think millions) logical account population with Zipf channel
  affinity, lazily — O(channels) memory regardless of size;
- :class:`~repro.channels.saga.SagaRouter` implements cross-channel
  transactions as two independent legs with **no atomicity guarantee**,
  surfacing half-committed sagas as a terminal outcome;
- :class:`~repro.channels.network.ShardedNetwork` wires one
  ``FabricNetwork`` runtime per channel into a shared environment and
  aggregates per-channel metrics into fleet-level
  :class:`~repro.fabric.metrics.PipelineMetrics`.

:func:`build_network` is the dispatch point the bench harness uses:
``channels == 1`` keeps the legacy single-runtime
:class:`~repro.fabric.network.FabricNetwork` bit-identical.
"""

from __future__ import annotations

from repro.channels.network import ShardedNetwork, build_network
from repro.channels.population import ClientPopulation
from repro.channels.saga import SagaRouter
from repro.channels.topology import ChannelTopology

__all__ = [
    "ChannelTopology",
    "ClientPopulation",
    "SagaRouter",
    "ShardedNetwork",
    "build_network",
]
