"""Cross-channel transactions as sagas — honestly non-atomic.

Fabric offers no atomic commit across channels: a business intent that
must touch two chains is, in practice, two independent transactions plus
application-level compensation (the saga pattern). This module models
exactly that and nothing more:

- with probability ``cross_channel_fraction`` a client's next intent
  becomes a saga: its *home leg* runs on the client's own channel and a
  *remote leg* runs on a partner channel picked from a seeded stream;
- both legs travel the full pipeline of their channel independently —
  endorsement, ordering, validation — and each terminates in its
  channel's own outcome counters (the per-channel sub-transaction
  outcomes stay honest);
- there is **no coordinator, no lock, no rollback**. When the legs
  split one-commit/one-abort the committed leg stays committed and the
  saga terminates as :attr:`~repro.fabric.metrics.TxOutcome.
  SAGA_HALF_COMMITTED` at the fleet level — the half-done state a real
  cross-channel deployment must reconcile out-of-band.

Within any single channel each leg is an ordinary transaction, so the
chaos invariants (exactly-once commit per channel, no committed loss)
hold unchanged; a saga can never double-commit a leg.

All saga randomness — the per-client decision draw, the partner-channel
pick and the remote-leg invocation draws — comes from dedicated streams
salted with :data:`~repro.fabric.config.SAGA_SEED_SALT`, so enabling
sagas never perturbs the workload streams of any client.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fabric.config import SAGA_SEED_SALT
from repro.fabric.metrics import SagaStats, TxOutcome
from repro.sim.distributions import Rng, mix_seed


class _Saga:
    """One in-flight saga: the terminal outcomes of its two legs."""

    __slots__ = ("outcomes",)

    def __init__(self) -> None:
        self.outcomes: List[TxOutcome] = []


class _ClientStreams:
    """The two seeded streams one home client draws sagas from."""

    __slots__ = ("decision", "legs", "channel")

    def __init__(self, decision: Rng, legs: Rng, channel: int) -> None:
        self.decision = decision
        self.legs = legs
        self.channel = channel


class SagaRouter:
    """Turns a fraction of fired intents into two-channel sagas.

    Wired by :class:`~repro.channels.network.ShardedNetwork`: every
    client of a saga-enabled fleet gets ``client.saga_router = router``;
    the client consults :meth:`take` once per fresh intent and reports
    every terminal outcome through :meth:`on_outcome`.
    """

    def __init__(self, fraction: float, seed: int, runtimes) -> None:
        self.fraction = fraction
        self.runtimes = list(runtimes)
        self.stats = SagaStats()
        #: Fleet-level terminal events for half-committed sagas:
        #: ``(simulated time, TxOutcome.SAGA_HALF_COMMITTED)`` — merged
        #: into the fleet outcome_times by the metrics aggregation.
        self.events: List[Tuple[float, TxOutcome]] = []
        self._legs: Dict[str, _Saga] = {}
        self._streams: Dict[str, _ClientStreams] = {}
        for channel_index, runtime in enumerate(self.runtimes):
            for client_index, client in enumerate(runtime.clients):
                self._streams[client.identity.name] = _ClientStreams(
                    decision=Rng(
                        mix_seed(
                            seed, SAGA_SEED_SALT, channel_index, client_index, 0
                        )
                    ),
                    legs=Rng(
                        mix_seed(
                            seed, SAGA_SEED_SALT, channel_index, client_index, 1
                        )
                    ),
                    channel=channel_index,
                )
                client.saga_router = self

    # -- client hooks --------------------------------------------------------

    def take(self, client, invocation) -> bool:
        """Decide whether ``client``'s next intent becomes a saga.

        Returns False (and draws exactly one decision) for local
        intents. For sagas, fires the home leg through ``client`` —
        reusing the invocation the client already drew, so its workload
        stream is identical either way — and the remote leg through the
        partner channel's gateway client (client 0), with the remote
        invocation drawn from this router's own stream.
        """
        streams = self._streams[client.identity.name]
        if streams.decision.random() >= self.fraction:
            return False
        home = streams.channel
        partner = streams.legs.randint(0, len(self.runtimes) - 2)
        if partner >= home:
            partner += 1
        remote_runtime = self.runtimes[partner]
        gateway = remote_runtime.clients[0]
        remote_workload = remote_runtime.workloads[remote_runtime.channels[0]]

        saga = _Saga()
        self.stats.started += 1
        home_tx = client.fire_invocation(invocation)
        self._legs[home_tx] = saga
        remote_invocation = remote_workload.next_invocation(streams.legs)
        remote_tx = gateway.fire_invocation(remote_invocation)
        self._legs[remote_tx] = saga
        return True

    def on_outcome(self, tx_id: Optional[str], outcome: TxOutcome, now: float) -> None:
        """Record one leg's terminal outcome; classify finished sagas."""
        saga = self._legs.pop(tx_id, None) if tx_id is not None else None
        if saga is None:
            return
        saga.outcomes.append(outcome)
        if len(saga.outcomes) < 2:
            return
        committed = sum(1 for leg in saga.outcomes if leg.is_success)
        if committed == 2:
            self.stats.committed += 1
        elif committed == 1:
            self.stats.half_committed += 1
            self.events.append((now, TxOutcome.SAGA_HALF_COMMITTED))
        else:
            self.stats.aborted += 1

    @property
    def unresolved_legs(self) -> int:
        """Legs still awaiting a terminal outcome (0 after a full drain)."""
        return len(self._legs)
