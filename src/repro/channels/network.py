"""The sharded fleet: one ``FabricNetwork`` runtime per channel.

:class:`ShardedNetwork` turns ``FabricConfig.channels >= 2`` into N
*independent* channel runtimes — each with its own peer subset, its own
ordering service (or Raft cluster), its own ledger and CC strategy —
embedded in ONE shared :class:`~repro.sim.engine.Environment`, so the
whole fleet advances on a single deterministic event clock.

Each runtime is an unmodified :class:`~repro.fabric.network.FabricNetwork`
built from a derived single-channel config:

- its seed is ``mix_seed(fleet_seed, CHANNEL_SEED_SALT, channel)``, so
  per-channel streams are decorrelated from each other and from any
  single-channel run;
- its one channel is named ``ch<i>`` (the *global* channel name), which
  makes client identities (``client0.ch2``) and transaction ids
  fleet-unique without touching the client code;
- its fault schedule is the fleet schedule *routed*: crash windows
  addressed to ``peer1.OrgB.ch2`` reach runtime 2 as ``peer1.OrgB``,
  channel-isolation partitions become quorumless singleton partitions
  (clustered orderer) or stall windows (single orderer) on the listed
  runtimes only, and shared knobs (loss, jitter, misbehavior) are
  copied to every runtime.

:func:`build_network` is the dispatch point for the bench harness and
CLI: ``channels == 1`` returns the legacy single-runtime network
untouched, keeping the default path bit-identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.fabric.config import (
    CHANNEL_SEED_SALT,
    FabricConfig,
    PopulationConfig,
)
from repro.fabric.metrics import (
    STREAMING_SEED_SALT,
    ChannelFleetStats,
    ConsensusStats,
    OverloadStats,
    PipelineMetrics,
    SagaStats,
    TxOutcome,
    ValidationStats,
)
from repro.fabric.network import FabricNetwork, WorkloadSpec
from repro.fabric.policy import EndorsementPolicy
from repro.faults import FaultSchedule, PartitionWindow, StallWindow
from repro.channels.population import ClientPopulation
from repro.channels.saga import SagaRouter
from repro.channels.topology import ChannelTopology
from repro.sim.distributions import mix_seed
from repro.sim.engine import Environment
from repro.trace.tracer import Tracer


def route_faults(
    config: FabricConfig, topology: ChannelTopology
) -> List[FaultSchedule]:
    """Split the fleet fault schedule into one schedule per channel.

    Crash windows are addressed in the qualified namespace
    (``peer<i>.<org>.ch<k>``) and land only on their channel, renamed to
    the base peer name the runtime knows. Channel-isolation partitions
    (``channels=(...)``) are converted per listed runtime: a clustered
    orderer is split into all-singleton groups (no quorum anywhere), a
    single orderer simply stalls. Node-group partitions, stalls and all
    scalar knobs apply to every channel unchanged.
    """
    count = topology.channels
    crashes: List[List[object]] = [[] for _ in range(count)]
    for window in config.faults.crashes:
        index, base = topology.route_peer(window.peer)
        crashes[index].append(replace(window, peer=base))
    stalls: List[List[object]] = [list(config.faults.stalls) for _ in range(count)]
    partitions: List[List[object]] = [[] for _ in range(count)]
    for window in config.faults.partitions:
        if window.channels:
            for channel in window.channels:
                if config.orderer_nodes >= 2:
                    partitions[channel].append(
                        PartitionWindow(
                            at=window.at,
                            duration=window.duration,
                            groups=tuple(
                                (node,) for node in range(config.orderer_nodes)
                            ),
                        )
                    )
                else:
                    stalls[channel].append(
                        StallWindow(at=window.at, duration=window.duration)
                    )
        else:
            for channel in range(count):
                partitions[channel].append(window)
    return [
        replace(
            config.faults,
            crashes=tuple(crashes[channel]),
            stalls=tuple(stalls[channel]),
            partitions=tuple(partitions[channel]),
        )
        for channel in range(count)
    ]


def channel_config(
    config: FabricConfig,
    channel: int,
    faults: FaultSchedule,
    population: Optional[ClientPopulation],
) -> FabricConfig:
    """The derived single-channel config runtime ``channel`` is built from."""
    return replace(
        config,
        channels=1,
        num_channels=1,
        cross_channel_fraction=0.0,
        channel_cc_strategies=(),
        population=PopulationConfig(),
        cc_strategy=(
            config.channel_cc_strategies[channel]
            if config.channel_cc_strategies
            else config.cc_strategy
        ),
        faults=faults,
        client_rate=(
            population.client_rate_for(channel, config.client_rate)
            if population is not None
            else config.client_rate
        ),
        seed=mix_seed(config.seed, CHANNEL_SEED_SALT, channel),
    )


class ShardedNetwork:
    """N independent channel runtimes sharing one deterministic clock."""

    def __init__(
        self,
        config: FabricConfig,
        workload: WorkloadSpec,
        policy: Optional[EndorsementPolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        config.validate()
        if not config.uses_sharding:
            raise ConfigError(
                "ShardedNetwork requires channels >= 2; "
                "use FabricNetwork (or build_network) for single-channel runs"
            )
        self.config = config
        self.env = Environment()
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self.env)
        self.topology = ChannelTopology.for_config(config)
        self.population: Optional[ClientPopulation] = None
        if not config.population.is_off:
            self.population = ClientPopulation(
                config.population, config.channels, config.seed
            )
        routed = route_faults(config, self.topology)
        self.runtimes: List[FabricNetwork] = []
        for channel in range(config.channels):
            runtime = FabricNetwork(
                channel_config(config, channel, routed[channel], self.population),
                workload(channel) if callable(workload) else workload,
                policy=policy,
                tracer=tracer,
                env=self.env,
                channel_names=(self.topology.channel_names[channel],),
            )
            self.runtimes.append(runtime)
        self.saga: Optional[SagaRouter] = None
        if config.cross_channel_fraction > 0:
            self.saga = SagaRouter(
                config.cross_channel_fraction, config.seed, self.runtimes
            )
        self.metrics = PipelineMetrics()

    # -- facade over the runtimes ---------------------------------------------

    @property
    def channels(self) -> List[str]:
        """Global channel names, in channel order."""
        return [runtime.channels[0] for runtime in self.runtimes]

    @property
    def peers(self):
        """Every peer of every runtime, in channel order."""
        return [peer for runtime in self.runtimes for peer in runtime.peers]

    @property
    def orderers(self):
        """Channel-name -> ordering service, across the fleet."""
        merged = {}
        for runtime in self.runtimes:
            merged.update(runtime.orderers)
        return merged

    @property
    def _pending(self) -> Dict[str, object]:
        """Unresolved transactions across the fleet (liveness checks)."""
        merged: Dict[str, object] = {}
        for runtime in self.runtimes:
            merged.update(runtime._pending)
        return merged

    # -- running --------------------------------------------------------------

    def begin(self, duration: float) -> None:
        """Launch every runtime's faults and clients without running the
        environment — the embedding hook for the segmented checkpoint
        loop (``repro.checkpoint``), mirroring ``FabricNetwork.begin``."""
        if duration <= 0:
            raise ConfigError("duration must be > 0")
        for runtime in self.runtimes:
            runtime.begin(duration)

    def finish(self, duration: float) -> PipelineMetrics:
        """Finalise per-runtime and fleet metrics after the environment
        has been run (split out of :meth:`run` for external drivers)."""
        for runtime in self.runtimes:
            runtime.metrics.duration = duration
        self.metrics = self._aggregate(duration)
        if self.tracer is not None:
            self.metrics.cost_breakdown = self.tracer.breakdown
        return self.metrics

    def run(self, duration: float, drain: float = 3.0) -> PipelineMetrics:
        """Fire every channel's workload for ``duration`` simulated seconds.

        All runtimes start at t=0 on the shared clock; the environment is
        run exactly once for the whole fleet. Returns the aggregated
        fleet metrics (per-channel rows + saga accounting attached as
        :attr:`PipelineMetrics.channels`); per-channel metrics stay
        available as ``network.runtimes[i].metrics``.
        """
        self.begin(duration)
        if self.tracer is not None:
            from repro.crypto import signing

            previous = signing.set_trace_recorder(self.tracer.record_crypto_op)
            try:
                self.env.run(until=duration + drain)
            finally:
                signing.set_trace_recorder(previous)
        else:
            self.env.run(until=duration + drain)
        return self.finish(duration)

    # -- aggregation ----------------------------------------------------------

    def _aggregate(self, duration: float) -> PipelineMetrics:
        """Fold the per-channel metrics into one fleet-level object.

        Scalar counters sum; sample lists concatenate in channel order;
        timestamped series merge by time (stable sort, so simultaneous
        events keep channel order). Saga half-commits are added on top of
        the per-leg outcomes — the fleet's ``resolved`` can therefore
        exceed ``fired``, which is the honest reading: one saga is one
        intent with three terminal facts (two legs + the saga itself).
        """
        fleet = PipelineMetrics()
        fleet.duration = duration
        if self.config.streaming_metrics:
            # Streaming fleets merge bounded aggregates instead of
            # concatenating per-transaction rows: the fleet object holds
            # O(1) state regardless of run length or channel count. The
            # merge is deterministic (order statistics, no RNG draws),
            # so the fleet seed only names the — never-drawn-from —
            # replacement stream.
            fleet.enable_streaming(
                mix_seed(self.config.seed, STREAMING_SEED_SALT)
            )
            fleet.streaming.set_window(duration)
        per_channel: List[Dict[str, object]] = []
        for channel, runtime in enumerate(self.runtimes):
            metrics = runtime.metrics
            for outcome, count in metrics.outcomes.items():
                fleet.outcomes[outcome] += count
            if fleet.streaming is not None and metrics.streaming is not None:
                fleet.streaming.merge(metrics.streaming)
            fleet.commit_latencies.extend(metrics.commit_latencies)
            fleet.phase_latencies.extend(metrics.phase_latencies)
            fleet.block_sizes.extend(metrics.block_sizes)
            fleet.fired += metrics.fired
            fleet.blocks_committed += metrics.blocks_committed
            for counter, amount in metrics.fault_counters.items():
                fleet.record_fault(counter, amount)
            name = runtime.channels[0]
            for time, kind, subject in metrics.fault_events:
                if name not in subject:
                    subject = f"{subject}.{name}"
                fleet.fault_events.append((time, kind, subject))
            row: Dict[str, object] = {
                "channel": name,
                "cc_strategy": runtime.config.resolved_cc_strategy,
                "fired": metrics.fired,
                "successful": metrics.successful,
                "failed": metrics.failed,
                "successful_tps": round(metrics.successful_tps(), 2),
                "failed_tps": round(metrics.failed_tps(), 2),
                "blocks": metrics.blocks_committed,
            }
            if self.population is not None:
                row["affinity"] = round(
                    self.population.channel_weight(channel), 4
                )
                row["accounts"] = self.population.channel_accounts(channel)
            per_channel.append(row)

        times = [
            event
            for runtime in self.runtimes
            for event in runtime.metrics.outcome_times
        ]
        if self.saga is not None:
            fleet.outcomes[TxOutcome.SAGA_HALF_COMMITTED] += (
                self.saga.stats.half_committed
            )
            if fleet.streaming is not None:
                # Per-runtime streams already counted each leg; the saga
                # outcomes (all non-success) fold in on top, matching
                # the list-mode merge below.
                for time, outcome in self.saga.events:
                    fleet.streaming.window.observe(time, outcome.is_success)
            else:
                times.extend(self.saga.events)
        times.sort(key=lambda event: event[0])
        fleet.outcome_times = times
        fleet.fault_events.sort(key=lambda event: event[0])

        fleet.validation = self._merge_validation()
        fleet.consensus = self._merge_consensus()
        fleet.overload = self._merge_overload()
        fleet.channels = ChannelFleetStats(
            channels=len(self.runtimes),
            per_channel=per_channel,
            saga=self.saga.stats if self.saga is not None else SagaStats(),
        )
        return fleet

    def _merge_validation(self) -> Optional[ValidationStats]:
        stats = [
            runtime.metrics.validation
            for runtime in self.runtimes
            if runtime.metrics.validation is not None
        ]
        if not stats:
            return None
        first = stats[0]
        merged = ValidationStats(
            workers=first.workers,
            scheduler=first.scheduler,
            pipeline_depth=first.pipeline_depth,
            strategy=first.strategy,
        )
        for entry in stats:
            merged.blocks += entry.blocks
            merged.txs += entry.txs
            merged.critical_path_total += entry.critical_path_total
            merged.verify_tasks += entry.verify_tasks
            merged.queue_delay_total += entry.queue_delay_total
            merged.lane_busy.extend(entry.lane_busy)
            merged.horizon = max(merged.horizon, entry.horizon)
        return merged

    def _merge_consensus(self) -> Optional[ConsensusStats]:
        stats = [
            runtime.metrics.consensus
            for runtime in self.runtimes
            if runtime.metrics.consensus is not None
        ]
        if not stats:
            return None
        merged = ConsensusStats(nodes=stats[0].nodes)
        for entry in stats:
            merged.elections_started += entry.elections_started
            merged.leader_changes += entry.leader_changes
            merged.max_term = max(merged.max_term, entry.max_term)
            merged.messages_sent += entry.messages_sent
            merged.messages_dropped += entry.messages_dropped
            merged.entries_proposed += entry.entries_proposed
            merged.entries_committed += entry.entries_committed
            merged.txs_reproposed += entry.txs_reproposed
            merged.duplicate_txs_suppressed += entry.duplicate_txs_suppressed
        return merged

    def _merge_overload(self) -> Optional[OverloadStats]:
        stats = [
            runtime.metrics.overload
            for runtime in self.runtimes
            if runtime.metrics.overload is not None
        ]
        if not stats:
            return None
        merged = OverloadStats(
            orderer_queue_limit=stats[0].orderer_queue_limit,
            endorse_queue_limit=stats[0].endorse_queue_limit,
        )
        for entry in stats:
            merged.submissions += entry.submissions
            merged.orderer_rejections += entry.orderer_rejections
            merged.endorse_rejections += entry.endorse_rejections
            merged.client_retries += entry.client_retries
            merged.txs_shed += entry.txs_shed
            merged.queue_depth_peak = max(
                merged.queue_depth_peak, entry.queue_depth_peak
            )
            merged.queue_depth_sum += entry.queue_depth_sum
            merged.endorse_inflight_peak = max(
                merged.endorse_inflight_peak, entry.endorse_inflight_peak
            )
            merged.delivery_stall_seconds += entry.delivery_stall_seconds
        return merged


def build_network(
    config: FabricConfig,
    workload: WorkloadSpec,
    policy: Optional[EndorsementPolicy] = None,
    tracer: Optional[Tracer] = None,
):
    """Build the network a config describes: sharded fleet or legacy.

    ``channels == 1`` constructs the classic single-runtime
    :class:`~repro.fabric.network.FabricNetwork` exactly as before — the
    bit-identity anchor the golden-hash tests pin down.
    """
    if config.uses_sharding:
        return ShardedNetwork(config, workload, policy=policy, tracer=tracer)
    return FabricNetwork(config, workload, policy=policy, tracer=tracer)
