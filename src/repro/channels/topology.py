"""Channel topology: which orgs, peers and orderers serve which channel.

A sharded deployment gives every channel its *own* peer subset and its
own ordering service — unlike the co-hosted ``num_channels`` model where
all peers join all channels. :class:`ChannelTopology` is the static map:
it derives the channel names, the per-channel org/peer rosters and the
qualified peer namespace (``peer<i>.<org>.ch<k>``) that fault schedules
address, and routes qualified names back to their owning channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.fabric.config import FabricConfig


@dataclass(frozen=True)
class ChannelTopology:
    """Static org/peer-to-channel mapping of one sharded deployment.

    Plain picklable data: every runtime hosts the same org layout
    (``num_orgs`` orgs of ``peers_per_org`` peers — the paper's cluster
    shape, replicated per shard), so the topology is fully described by
    the channel names plus the base peer roster.
    """

    #: Channel names in channel-index order (``ch0``, ``ch1``, ...).
    channel_names: Tuple[str, ...]
    #: Organization names, identical in every channel runtime.
    orgs: Tuple[str, ...]
    #: Unqualified peer names one runtime instantiates.
    base_peer_names: Tuple[str, ...]
    #: Ordering nodes per channel (1 = single orderer, >= 2 = cluster).
    orderer_nodes: int = 1

    @classmethod
    def for_config(cls, config: FabricConfig) -> "ChannelTopology":
        """Derive the topology a sharded ``config`` will build."""
        orgs = config.org_names()
        return cls(
            channel_names=tuple(f"ch{i}" for i in range(config.channels)),
            orgs=orgs,
            base_peer_names=tuple(
                f"peer{index}.{org}"
                for org in orgs
                for index in range(config.peers_per_org)
            ),
            orderer_nodes=config.orderer_nodes,
        )

    @property
    def channels(self) -> int:
        """Number of channels."""
        return len(self.channel_names)

    def qualified_peer_names(self, channel_index: int) -> Tuple[str, ...]:
        """The fleet-unique peer names of one channel runtime."""
        suffix = self.channel_names[channel_index]
        return tuple(f"{name}.{suffix}" for name in self.base_peer_names)

    def route_peer(self, qualified: str) -> Tuple[int, str]:
        """Resolve a qualified peer name to ``(channel_index, base_name)``.

        Raises :class:`ConfigError` naming the peer when the name does
        not belong to any channel of this topology.
        """
        base, dot, suffix = qualified.rpartition(".")
        if dot and base in self.base_peer_names:
            try:
                index = self.channel_names.index(suffix)
            except ValueError:
                index = -1
            if index >= 0:
                return index, base
        known = [
            name
            for channel in range(self.channels)
            for name in self.qualified_peer_names(channel)
        ]
        raise ConfigError(
            f"peer {qualified!r} belongs to no channel of this topology "
            f"(known peers: {known})"
        )

    def describe(self) -> List[Dict[str, object]]:
        """One row per channel (reports and the channels doc examples)."""
        return [
            {
                "channel": name,
                "orgs": list(self.orgs),
                "peers": list(self.qualified_peer_names(index)),
                "orderer_nodes": self.orderer_nodes,
            }
            for index, name in enumerate(self.channel_names)
        ]
