"""The legacy inline serial validator, moved here verbatim.

This is the validation/commit loop the peer has always run: one block at
a time, one transaction after the other, signature verification folded
into a single per-transaction CPU charge whose cost model divides the
verification work by ``CostModel.validation_parallelism`` (an *assumed*
worker pool). It remains the default because every golden hash in the
test suite was captured under it — every other concurrency-control
strategy in :mod:`repro.validation.registry` must be opted into via the
``cc_strategy`` / ``validation_workers`` / ``validation_scheduler`` /
``pipeline_depth`` knobs, and the default configuration stays
bit-identical to the pre-pipeline build.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.fabric.metrics import TxOutcome
from repro.ledger.state_db import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer, PeerChannelState
    from repro.ledger.block import Block


def next_expected_block(pcs: "PeerChannelState") -> Generator:
    """Yield deliveries until the next in-order block is available.

    Delivery may arrive out of order (gossip races); validation must
    follow block-id order, so early arrivals wait in a reorder buffer.
    The next expected id is derived from the ledger tip so that recovery
    catch-up (which appends replayed blocks directly) transparently
    advances this loop past the blocks it missed. Re-gossiped duplicates
    of an id that is already buffered are dropped (first delivery wins):
    a second copy can never legitimately differ, and overwriting would
    let a late duplicate replace the block the validator is about to
    pick up.
    """
    while True:
        expected = pcs.ledger.tip_block_id + 1
        for stale_id in [
            block_id
            for block_id in pcs.pending_blocks
            if block_id < expected
        ]:
            del pcs.pending_blocks[stale_id]  # applied via catch-up
        if expected in pcs.pending_blocks:
            break
        block = yield pcs.incoming_blocks.get()
        if (
            block.block_id >= pcs.ledger.tip_block_id + 1
            and block.block_id not in pcs.pending_blocks
        ):
            pcs.pending_blocks[block.block_id] = block
    return pcs.pending_blocks.pop(expected)


def serial_validator(peer: "Peer", channel: str) -> Generator:
    """Sequential per-channel validation pipeline (one block at a time)."""
    pcs = peer.channels[channel]
    costs = peer.config.costs
    vanilla = not peer.config.early_abort_simulation
    while True:
        block = yield from next_expected_block(pcs)
        pcs.validating = True
        tracer = peer.tracer
        block_start = peer.env.now
        committed_in_block = 0
        if vanilla:
            # Vanilla serialises validation against simulation: the
            # whole block validation runs under the exclusive write
            # lock, so every in-flight simulation on this peer stalls
            # until the block committed (Section 4.2.1). Fabric++'s
            # fine-grained concurrency control removes this lock and
            # lets both phases overlap (Section 5.2.1).
            yield pcs.lock.acquire_write()
        try:
            yield from peer.cpu.use(costs.block_overhead * peer.speed_factor)
            if tracer is not None:
                tracer.charge(
                    "ledger", costs.block_overhead * peer.speed_factor
                )

            pending_writes: Dict[str, Version] = {}
            valid_writes: List[Tuple[int, Dict[str, object]]] = []
            for index, tx in enumerate(block.transactions):
                tx_start = peer.env.now
                yield from peer.cpu.use(
                    costs.tx_validation_cost(len(tx.endorsements))
                    * peer.speed_factor
                )
                outcome = peer._validate_transaction(
                    channel, tx, pending_writes
                )
                valid = outcome is TxOutcome.COMMITTED
                block.mark(tx.tx_id, valid)
                if tracer is not None:
                    verify_cost = (
                        costs.verify_signature
                        * len(tx.endorsements)
                        / costs.validation_parallelism
                    ) * peer.speed_factor
                    tracer.charge(
                        "verify", verify_cost, count=len(tx.endorsements)
                    )
                    tracer.charge(
                        "mvcc", costs.mvcc_check * peer.speed_factor
                    )
                    tracer.span(
                        "tx.validate",
                        cat="validate",
                        track=f"{peer.name}/{channel}/validator",
                        start=tx_start,
                        tx_id=tx.tx_id,
                        outcome=outcome.value,
                    )
                committed_in_block += 1 if valid else 0
                if valid:
                    version = Version(block.block_id, index)
                    if vanilla:
                        for key in tx.rwset.writes:
                            pending_writes[key] = version
                        valid_writes.append((index, tx.rwset.writes))
                    else:
                        # Fabric++'s fine-grained concurrency control:
                        # each valid transaction's writes apply
                        # atomically right away, visible to chaincodes
                        # simulating in parallel (Section 5.2.1's
                        # "apply their updates in an atomic fashion
                        # while T5 is simulating").
                        for key, value in tx.rwset.writes.items():
                            pcs.state.apply_write(key, value, version)
                else:
                    tx.failure_reason = outcome.value
                if peer.is_reference:
                    peer._report(tx, outcome)

            # Commit: vanilla applies all valid writes at once under
            # the write lock; Fabric++ already applied them inline and
            # only finalises the block height.
            if vanilla:
                pcs.state.apply_block_writes(block.block_id, valid_writes)
            else:
                pcs.state.advance_block(block.block_id)
            pcs.ledger.append(block)
            if tracer is not None:
                tracer.span(
                    "block.validate",
                    cat="validate",
                    track=f"{peer.name}/{channel}/validator",
                    start=block_start,
                    block_id=block.block_id,
                    txs=len(block.transactions),
                    committed=committed_in_block,
                    strategy="serial",
                )
        finally:
            pcs.validating = False
            if vanilla:
                pcs.lock.release_write()

        if peer.is_reference and peer._metrics is not None:
            peer._metrics.record_block(len(block.transactions))
