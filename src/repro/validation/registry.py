"""The concurrency-control strategy registry — the CC zoo.

ROADMAP item 3: the peer's validation/commit stage is a seam where
database-style concurrency control pays off, and several papers propose
competing schemes. This registry generalises the old hard-wired
``validation_scheduler=serial|dependency`` branch into named, pluggable
*strategies* (mirroring :mod:`repro.workloads.registry`): a strategy is
a factory that, given a peer and a channel, returns the generator that
owns the per-block verify/resolve/commit loop.

Built-in strategies:

- ``serial`` — the legacy inline loop (default, golden-hash pinned), or
  the modelled pipeline with the serial scheduler when any pipeline knob
  (``validation_workers`` / ``pipeline_depth``) is non-default.
- ``dependency`` — the modelled pipeline with topological MVCC waves
  from the intra-block conflict graph (identical outcomes to serial;
  timing only).
- ``lockless`` — OCC-style validation after Meir et al.,
  *Lockless Transaction Isolation in Hyperledger Fabric*
  (arXiv:1911.12711): reads validate against the block-start snapshot,
  no exclusive write lock is ever taken, and write-write races within a
  block abort at commit (first-committer-wins,
  ``TxOutcome.ABORT_OCC_WW``).
- ``depaware`` — conflict-graph-driven dataflow execution after Kaul et
  al., *Dependency-Aware Execution in Hyperledger Fabric*
  (arXiv:2509.07425): each transaction validates as soon as all its
  graph predecessors have resolved, so non-conflicting transactions
  commit out of arrival order — but serializably, with outcomes
  identical to serial.

``serial``, ``dependency`` and ``depaware`` are outcome-equivalent: the
committed ledger and every per-transaction outcome match the serial
baseline bit for bit. ``lockless`` intentionally diverges on
write-write races; :data:`StrategyInfo.divergence` documents the bound
and the oracle test (``tests/validation/test_cc_oracle.py``) pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer

#: A strategy factory: builds the validator generator for one channel.
StrategyFactory = Callable[["Peer", str], Generator]


@dataclass(frozen=True)
class StrategyInfo:
    """A registered concurrency-control strategy."""

    name: str
    factory: StrategyFactory
    #: One-line description for ``--help`` and docs.
    description: str
    #: Empty string == outcome-equivalent to the serial baseline
    #: (identical committed ledger and per-tx outcomes). Otherwise a
    #: short statement of the intentional, pinned divergence.
    divergence: str = ""


_STRATEGIES: Dict[str, StrategyInfo] = {}


def register_strategy(
    name: str,
    factory: StrategyFactory,
    description: str = "",
    divergence: str = "",
) -> None:
    """Register ``factory`` as the CC strategy named ``name``."""
    if name in _STRATEGIES:
        raise ConfigError(f"cc strategy {name!r} is already registered")
    _STRATEGIES[name] = StrategyInfo(
        name=name,
        factory=factory,
        description=description,
        divergence=divergence,
    )


def strategy_names() -> Tuple[str, ...]:
    """The registered strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def get_strategy(name: str) -> StrategyInfo:
    """Look up a registered strategy, raising :class:`ConfigError`."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ConfigError(
            f"unknown cc strategy {name!r}; known: {known}"
        ) from None


def build_strategy(name: str, peer: "Peer", channel: str) -> Generator:
    """Build the validator generator for ``peer``/``channel``."""
    return get_strategy(name).factory(peer, channel)


# -- built-in strategies --------------------------------------------------------


def _make_serial(peer: "Peer", channel: str) -> Generator:
    from repro.validation.pipeline import PipelinedValidator
    from repro.validation.serial import serial_validator

    # The pipeline knobs still select the modelled pipeline (worker
    # lanes, cross-block overlap) with its serial MVCC scheduler; the
    # all-default configuration keeps the legacy loop bit-identical.
    if peer.config.uses_validation_pipeline:
        return PipelinedValidator(peer, channel, scheduler="serial").run()
    return serial_validator(peer, channel)


def _make_dependency(peer: "Peer", channel: str) -> Generator:
    from repro.validation.pipeline import PipelinedValidator

    return PipelinedValidator(peer, channel, scheduler="dependency").run()


def _make_lockless(peer: "Peer", channel: str) -> Generator:
    from repro.validation.lockless import LocklessValidator

    return LocklessValidator(peer, channel).run()


def _make_depaware(peer: "Peer", channel: str) -> Generator:
    from repro.validation.depaware import DepAwareValidator

    return DepAwareValidator(peer, channel).run()


register_strategy(
    "serial",
    _make_serial,
    description=(
        "legacy in-order validation; the modelled pipeline's serial "
        "scheduler when validation_workers/pipeline_depth are set"
    ),
)
register_strategy(
    "dependency",
    _make_dependency,
    description=(
        "pipeline with topological MVCC waves over the intra-block "
        "conflict graph (outcome-identical to serial)"
    ),
)
register_strategy(
    "lockless",
    _make_lockless,
    description=(
        "OCC validation against the block-start snapshot, no exclusive "
        "write lock, first-committer-wins write-write aborts "
        "(Meir et al., arXiv:1911.12711)"
    ),
    divergence=(
        "blocks containing intra-block write-write races resolve them "
        "first-committer-wins (abort_occ_ww) instead of "
        "last-writer-wins; all other blocks are outcome-identical"
    ),
)
register_strategy(
    "depaware",
    _make_depaware,
    description=(
        "conflict-graph dataflow execution: transactions validate as "
        "soon as their dependencies resolve and commit out of arrival "
        "order, serializably (Kaul et al., arXiv:2509.07425)"
    ),
)
