"""The verify worker pool: modelled parallel signature-verification lanes.

Real Fabric validates a block's endorsement signatures on a pool of
worker goroutines; the legacy cost model *assumed* that pool by dividing
the per-transaction verification cost by
``CostModel.validation_parallelism``. The pool here models it instead:
each lane is a :class:`~repro.sim.resources.Resource` of capacity one, a
task occupies its lane for the full (undivided) verification cost, and
all lanes multiplex onto the peer's CPU cores — so queueing, core
contention, and diminishing returns past saturation emerge from the
simulation rather than from a constant.

Dispatch is deterministic: a task goes to the lane with the fewest
outstanding tasks, ties broken by the lowest lane index. Determinism
matters more than realism here — the whole test suite's bit-identity
discipline relies on identical event schedules for identical seeds.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.trace.tracer import Tracer


class VerifyWorkerPool:
    """``num_workers`` verification lanes multiplexed onto a peer's CPU."""

    def __init__(
        self,
        env: Environment,
        cpu: Resource,
        num_workers: int,
        priority: int = 0,
        owner: str = "peer",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.cpu = cpu
        self.priority = priority
        self.owner = owner
        self.tracer = tracer
        self.lanes = [Resource(env, 1) for _ in range(num_workers)]
        self._outstanding = [0] * num_workers
        self._sequence = 0
        #: Tasks that have started executing (accounting).
        self.tasks = 0
        #: Total seconds tasks spent queued (submit -> execution start).
        self.queue_delay_total = 0.0

    @property
    def num_workers(self) -> int:
        """Number of lanes in the pool."""
        return len(self.lanes)

    def lane_busy_times(self) -> List[float]:
        """Per-lane busy seconds so far (the utilisation numerator)."""
        return [lane.busy_time() for lane in self.lanes]

    def submit(self, duration: float, label: Optional[str] = None) -> Event:
        """Schedule ``duration`` seconds of verification work on a lane.

        Returns an event that fires when the task completes. The lane is
        chosen deterministically (least outstanding tasks, lowest index
        on ties) at submission time, modelling a static work-stealing-free
        dispatcher.
        """
        lane_index = min(
            range(len(self.lanes)),
            key=lambda index: (self._outstanding[index], index),
        )
        self._outstanding[lane_index] += 1
        self._sequence += 1
        done = self.env.event()
        self.env.process(
            self._run(lane_index, duration, done, self.env.now, label),
            name=f"{self.owner}/verify-lane{lane_index}/task{self._sequence}",
        )
        return done

    def _run(
        self,
        lane_index: int,
        duration: float,
        done: Event,
        submitted_at: float,
        label: Optional[str],
    ):
        lane = self.lanes[lane_index]
        yield lane.request()
        try:
            # A lane is a logical validator thread: it still needs one of
            # the peer's CPU cores to make progress, in the validation
            # priority band so endorsement floods cannot starve it.
            yield self.cpu.request(self.priority)
            try:
                started_at = self.env.now
                self.queue_delay_total += started_at - submitted_at
                self.tasks += 1
                yield duration  # bare-delay sleep
                if self.tracer is not None:
                    self.tracer.span(
                        "verify.task",
                        cat="validate",
                        track=f"{self.owner}/lane{lane_index}",
                        start=started_at,
                        tx_id=label,
                    )
            finally:
                self.cpu.release()
        finally:
            lane.release()
            self._outstanding[lane_index] -= 1
        done.succeed()
