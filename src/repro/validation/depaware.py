"""Dependency-aware dataflow validation (Kaul et al., arXiv:2509.07425).

*Dependency-Aware Execution in Hyperledger Fabric* replaces the block's
sequential validate/commit loop with a dataflow over the intra-block
conflict graph: every transaction becomes a task gated only on its
graph predecessors, so non-conflicting transactions validate and commit
concurrently and *out of arrival order* — while conflict chains
serialise exactly as the sequential validator would.

The modelled strategy reuses
:func:`repro.core.conflict_graph.build_validation_dependencies`, whose
edges cover every hazard (true, anti, output, and phantom-range), and
runs one task per transaction on the peer's verify worker pool
(``validation_workers`` lanes, full per-endorsement verification cost
like the modelled pipeline). A task:

1. verifies its endorsements on a pool lane (no dependencies — this is
   the embarrassingly parallel part);
2. waits for all graph predecessors to *decide*;
3. runs its MVCC check on a pool lane against the committed store
   overlaid with the pending writes of decided winners, then decides,
   applies its writes, and fires its decision event.

Because the dependency edges cover every key and range intersection, a
transaction's check can never observe (or miss) a write of a
non-predecessor — the overlay only ever differs from the sequential
validator's in keys the transaction provably does not touch. Outcomes
are therefore bit-identical to the serial baseline; only timing
changes. The block itself still commits atomically at the end (vanilla
holds the write lock over the block like the pipeline's commit stage;
Fabric++ applies winners' writes inline as each task decides).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.core.conflict_graph import (
    build_validation_dependencies,
    dependency_waves,
)
from repro.fabric.metrics import TxOutcome, ValidationStats
from repro.ledger.state_db import Version
from repro.validation.serial import next_expected_block

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer
    from repro.ledger.block import Block
    from repro.sim.engine import Event

STRATEGY = "depaware"

#: Mirror of ``repro.fabric.peer.VALIDATE_PRIORITY`` (imported lazily to
#: avoid a module cycle; asserted equal in the test suite).
VALIDATE_PRIORITY = 0


class DepAwareValidator:
    """Per-channel dataflow validator over the conflict graph."""

    def __init__(self, peer: "Peer", channel: str) -> None:
        self.peer = peer
        self.channel = channel
        self.pcs = peer.channels[channel]
        self.config = peer.config
        self.costs = peer.config.costs
        self.vanilla = not peer.config.early_abort_simulation
        self.pool = peer.verify_pool()

    def run(self) -> Generator:
        """The validator loop; registered as the channel validator."""
        return self._loop()

    def _loop(self) -> Generator:
        peer = self.peer
        pcs = self.pcs
        env = peer.env
        costs = self.costs
        speed = peer.speed_factor
        while True:
            block = yield from next_expected_block(pcs)
            pcs.validating = True
            tracer = peer.tracer
            block_start = env.now
            if self.vanilla:
                # Like the pipeline's commit stage: only the
                # state-touching phase takes the exclusive lock.
                yield pcs.lock.acquire_write()
            try:
                yield from peer.cpu.use(
                    costs.block_overhead * speed, VALIDATE_PRIORITY
                )
                if tracer is not None:
                    tracer.charge("ledger", costs.block_overhead * speed)

                graph = build_validation_dependencies(
                    [tx.rwset for tx in block.transactions]
                )
                waves = dependency_waves(graph)

                decided: List["Event"] = [
                    env.event() for _ in block.transactions
                ]
                # Shared commit state, mutated by the tasks in decision
                # (dataflow) order.
                pending_writes: Dict[str, Version] = {}
                valid_writes: List[Tuple[int, Dict[str, object]]] = []
                committed = [0]
                for index, tx in enumerate(block.transactions):
                    preds = sorted(graph.predecessors(index))
                    env.process(
                        self._tx_task(
                            block,
                            index,
                            tx,
                            [decided[p] for p in preds],
                            decided[index],
                            pending_writes,
                            valid_writes,
                            committed,
                        ),
                        name=f"{peer.name}/{self.channel}/depaware-{index}",
                    )
                if decided:
                    yield env.all_of(decided)

                if self.vanilla:
                    # Tasks append in decision order; the store applies
                    # writes exactly as the serial validator would.
                    valid_writes.sort(key=lambda entry: entry[0])
                    pcs.state.apply_block_writes(block.block_id, valid_writes)
                else:
                    pcs.state.advance_block(block.block_id)
                pcs.ledger.append(block)
                if tracer is not None:
                    tracer.span(
                        "block.validate",
                        cat="validate",
                        track=f"{peer.name}/{self.channel}/validator",
                        start=block_start,
                        block_id=block.block_id,
                        txs=len(block.transactions),
                        committed=committed[0],
                        strategy=STRATEGY,
                        waves=len(waves),
                    )
            finally:
                pcs.validating = False
                if self.vanilla:
                    pcs.lock.release_write()

            if peer.is_reference and peer._metrics is not None:
                peer._metrics.record_block(len(block.transactions))
                self._sync_stats(len(waves), len(block.transactions))

    def _tx_task(
        self,
        block: "Block",
        index: int,
        tx,
        pred_events: List["Event"],
        done: "Event",
        pending_writes: Dict[str, Version],
        valid_writes: List[Tuple[int, Dict[str, object]]],
        committed: List[int],
    ) -> Generator:
        """One transaction's dataflow task: verify → wait preds → decide."""
        peer = self.peer
        env = peer.env
        costs = self.costs
        speed = peer.speed_factor
        tracer = peer.tracer
        tx_start = env.now
        # Endorsement verification depends on no other transaction.
        policy_ok = peer._endorsements_valid(self.channel, tx)
        verify_cost = costs.verify_signature * len(tx.endorsements) * speed
        yield self.pool.submit(verify_cost, label=tx.tx_id)
        if tracer is not None:
            tracer.charge("verify", verify_cost, count=len(tx.endorsements))
        if pred_events:
            yield env.all_of(pred_events)
        yield self.pool.submit(costs.mvcc_check * speed, label=tx.tx_id)
        if tracer is not None:
            tracer.charge("mvcc", costs.mvcc_check * speed)

        if not policy_ok:
            outcome = TxOutcome.ABORT_POLICY
        elif not peer._reads_current(self.channel, tx, pending_writes):
            outcome = TxOutcome.ABORT_MVCC
        else:
            outcome = TxOutcome.COMMITTED
        valid = outcome is TxOutcome.COMMITTED
        block.mark(tx.tx_id, valid)
        if valid:
            committed[0] += 1
            version = Version(block.block_id, index)
            if self.vanilla:
                for key in tx.rwset.writes:
                    pending_writes[key] = version
                valid_writes.append((index, tx.rwset.writes))
            else:
                # Fabric++: the winner's writes apply atomically as soon
                # as it decides — commit out of arrival order.
                for key in tx.rwset.writes:
                    pending_writes[key] = version
                for key, value in tx.rwset.writes.items():
                    self.pcs.state.apply_write(key, value, version)
        else:
            tx.failure_reason = outcome.value
        if tracer is not None:
            tracer.span(
                "tx.validate",
                cat="validate",
                track=f"{peer.name}/{self.channel}/validator",
                start=tx_start,
                tx_id=tx.tx_id,
                outcome=outcome.value,
            )
        if peer.is_reference:
            peer._report(tx, outcome)
        done.succeed()

    def _sync_stats(self, wave_count: int, tx_count: int) -> None:
        """Attach/update the reference peer's validation stats.

        Pool totals are copied (the pool is shared across channels, so
        the copy is idempotent); per-block counters are incremented.
        """
        metrics = self.peer._metrics
        if metrics.validation is None:
            metrics.validation = ValidationStats(
                workers=self.config.validation_workers,
                scheduler=STRATEGY,
                pipeline_depth=self.config.pipeline_depth,
                strategy=STRATEGY,
            )
        stats = metrics.validation
        stats.blocks += 1
        stats.txs += tx_count
        stats.critical_path_total += wave_count
        stats.verify_tasks = self.pool.tasks
        stats.queue_delay_total = self.pool.queue_delay_total
        stats.lane_busy = self.pool.lane_busy_times()
        stats.horizon = self.peer.env.now
