"""Lockless OCC validation (Meir et al., arXiv:1911.12711).

*Lockless Transaction Isolation in Hyperledger Fabric* removes the
peer's state read-write lock: validation never blocks endorsement-time
simulation, reads validate optimistically against the snapshot the
block started from, and conflicts surface as commit-time aborts instead
of lock waits.

The modelled strategy keeps the serial validator's per-transaction cost
charges (so throughput differences come from concurrency control, not
from a different cost model) but changes two things:

1. **No exclusive write lock, ever** — even on vanilla Fabric, where
   the serial validator stalls every in-flight simulation for the whole
   block (paper Section 4.2.1). Valid writes apply atomically inline,
   like Fabric++'s fine-grained commit. This is where lockless beats
   vanilla committed-TPS under low contention: endorsements no longer
   queue behind block validation.

2. **First-committer-wins write-write resolution** — all MVCC decisions
   are taken in one pure OCC pass against the block-start snapshot
   before any write applies. A transaction whose write set intersects
   an earlier winner's write set aborts with
   :attr:`TxOutcome.ABORT_OCC_WW` (Fabric's native rule lets later
   blind writers silently overwrite — last-writer-wins). This is the
   strategy's one *intentional* divergence from the serial baseline;
   blocks without intra-block write-write races are outcome-identical,
   which the CC oracle test pins.

A transaction that both reads stale data and loses a write-write race
is classified ``abort_mvcc`` (the read check runs first, mirroring the
serial validator's check order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List

from repro.fabric.metrics import TxOutcome, ValidationStats
from repro.ledger.state_db import Version
from repro.validation.serial import next_expected_block

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer
    from repro.ledger.block import Block

STRATEGY = "lockless"


class LocklessValidator:
    """Per-channel OCC validator: snapshot reads, no write lock."""

    def __init__(self, peer: "Peer", channel: str) -> None:
        self.peer = peer
        self.channel = channel
        self.pcs = peer.channels[channel]
        self.config = peer.config
        self.costs = peer.config.costs

    def run(self) -> Generator:
        """The validator loop; registered as the channel validator."""
        return self._loop()

    def _decide(self, block: "Block") -> List[TxOutcome]:
        """Phase 1: pure OCC decisions against the block-start snapshot.

        No simulated time passes and no write applies during this pass,
        so every decision sees exactly the state the block arrived at —
        the OCC snapshot — plus the pending writes of earlier winners
        (first-committer-wins).
        """
        peer = self.peer
        winner_writes: Dict[str, Version] = {}
        outcomes: List[TxOutcome] = []
        for index, tx in enumerate(block.transactions):
            if not peer._endorsements_valid(self.channel, tx):
                outcome = TxOutcome.ABORT_POLICY
            elif not peer._reads_current(self.channel, tx, winner_writes):
                outcome = TxOutcome.ABORT_MVCC
            elif any(key in winner_writes for key in tx.rwset.writes):
                outcome = TxOutcome.ABORT_OCC_WW
            else:
                outcome = TxOutcome.COMMITTED
                version = Version(block.block_id, index)
                for key in tx.rwset.writes:
                    winner_writes[key] = version
            outcomes.append(outcome)
        return outcomes

    def _loop(self) -> Generator:
        peer = self.peer
        pcs = self.pcs
        costs = self.costs
        speed = peer.speed_factor
        while True:
            block = yield from next_expected_block(pcs)
            pcs.validating = True
            tracer = peer.tracer
            block_start = peer.env.now
            committed_in_block = 0
            ww_aborts = 0
            try:
                yield from peer.cpu.use(costs.block_overhead * speed)
                if tracer is not None:
                    tracer.charge("ledger", costs.block_overhead * speed)

                # Phase 1 is free of simulated time; phase 2 below pays
                # the same per-transaction validation cost as the serial
                # baseline and applies the winners' writes inline.
                outcomes = self._decide(block)
                for index, tx in enumerate(block.transactions):
                    tx_start = peer.env.now
                    yield from peer.cpu.use(
                        costs.tx_validation_cost(len(tx.endorsements))
                        * speed
                    )
                    outcome = outcomes[index]
                    valid = outcome is TxOutcome.COMMITTED
                    block.mark(tx.tx_id, valid)
                    if tracer is not None:
                        verify_cost = (
                            costs.verify_signature
                            * len(tx.endorsements)
                            / costs.validation_parallelism
                        ) * speed
                        tracer.charge(
                            "verify", verify_cost, count=len(tx.endorsements)
                        )
                        tracer.charge("mvcc", costs.mvcc_check * speed)
                        tracer.span(
                            "tx.validate",
                            cat="validate",
                            track=f"{peer.name}/{self.channel}/validator",
                            start=tx_start,
                            tx_id=tx.tx_id,
                            outcome=outcome.value,
                        )
                    committed_in_block += 1 if valid else 0
                    if valid:
                        version = Version(block.block_id, index)
                        for key, value in tx.rwset.writes.items():
                            pcs.state.apply_write(key, value, version)
                    else:
                        if outcome is TxOutcome.ABORT_OCC_WW:
                            ww_aborts += 1
                        tx.failure_reason = outcome.value
                    if peer.is_reference:
                        peer._report(tx, outcome)

                pcs.state.advance_block(block.block_id)
                pcs.ledger.append(block)
                if tracer is not None:
                    tracer.span(
                        "block.validate",
                        cat="validate",
                        track=f"{peer.name}/{self.channel}/validator",
                        start=block_start,
                        block_id=block.block_id,
                        txs=len(block.transactions),
                        committed=committed_in_block,
                        strategy=STRATEGY,
                        ww_aborts=ww_aborts,
                    )
            finally:
                pcs.validating = False

            if peer.is_reference and peer._metrics is not None:
                peer._metrics.record_block(len(block.transactions))
                self._sync_stats(len(block.transactions))

    def _sync_stats(self, tx_count: int) -> None:
        """Attach/update the reference peer's validation stats."""
        metrics = self.peer._metrics
        if metrics.validation is None:
            metrics.validation = ValidationStats(
                workers=self.config.validation_workers,
                scheduler=STRATEGY,
                pipeline_depth=self.config.pipeline_depth,
                strategy=STRATEGY,
            )
        stats = metrics.validation
        stats.blocks += 1
        stats.txs += tx_count
        # OCC validates strictly in block order: the critical path is
        # the whole block.
        stats.critical_path_total += tx_count
        stats.horizon = self.peer.env.now
