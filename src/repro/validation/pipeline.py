"""The modelled validation/commit pipeline (opt-in replacement for serial).

Three orthogonal mechanisms, each behind its own config knob:

1. **Verify worker pool** (``validation_workers``): per-endorsement
   signature verification runs on modelled lanes
   (:class:`~repro.validation.workers.VerifyWorkerPool`). Unlike the
   legacy validator — which divides the verification cost by the assumed
   ``CostModel.validation_parallelism`` — the pipeline charges the *full*
   cost per transaction and lets the lanes provide the parallelism, so
   worker scaling, core contention and saturation are simulated.

2. **MVCC scheduler** (``validation_scheduler``): ``serial`` runs the
   conflict checks one transaction after the other in block order;
   ``dependency`` groups the block's transactions into topological waves
   of the intra-block dependency graph
   (:func:`repro.core.conflict_graph.build_validation_dependencies`) and
   checks each wave concurrently on the worker lanes. Waves commit in
   order, and the dependency edges (true, anti, output, and phantom-range
   hazards) guarantee every transaction still observes exactly the state
   the sequential validator would have shown it — outcomes are identical,
   only timing changes.

3. **Cross-block pipelining** (``pipeline_depth``): verification of block
   *k+1* may overlap the commit of block *k*. Verification touches no
   state, so it runs outside the vanilla RWLock; only the MVCC/commit
   stage takes the exclusive write lock, preserving the
   simulation-vs-validation coupling of paper Section 4.2.1 (and
   Fabric++'s lock-free inline applies in Section 5.2.1).

The commit stage enforces block order even when verifications finish out
of order, and drops verified blocks that recovery catch-up has already
applied underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.core.conflict_graph import (
    build_validation_dependencies,
    dependency_waves,
)
from repro.fabric.metrics import TxOutcome, ValidationStats
from repro.ledger.block import Block
from repro.ledger.state_db import Version
from repro.sim.engine import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer

#: Mirror of ``repro.fabric.peer.VALIDATE_PRIORITY`` (imported lazily to
#: avoid a module cycle; asserted equal in the test suite).
VALIDATE_PRIORITY = 0


@dataclass
class _VerifiedBlock:
    """A block that finished the verify stage, awaiting in-order commit."""

    block: Block
    #: Per-transaction endorsement-policy verdicts, by block position.
    policy_ok: List[bool]


class PipelinedValidator:
    """Per-channel validation pipeline: fetch/verify stage + commit stage."""

    def __init__(
        self, peer: "Peer", channel: str, scheduler: Optional[str] = None
    ) -> None:
        self.peer = peer
        self.channel = channel
        self.pcs = peer.channels[channel]
        self.config = peer.config
        self.costs = peer.config.costs
        self.vanilla = not peer.config.early_abort_simulation
        # The CC-strategy registry passes the resolved scheduler
        # explicitly; direct construction falls back to the config knob.
        self.scheduler = (
            scheduler
            if scheduler is not None
            else peer.config.validation_scheduler
        )
        self.pool = peer.verify_pool()
        #: Bounds the number of blocks in flight (verifying or waiting to
        #: commit). Depth 1 makes verify and commit strictly alternate;
        #: depth k lets verification run k-1 blocks ahead of the commit.
        self.depth_tokens = Resource(peer.env, peer.config.pipeline_depth)
        self._ready: Dict[int, _VerifiedBlock] = {}
        self._ready_signal: Optional[Event] = None
        #: Highest block id handed to the verify stage; the fetcher must
        #: not re-fetch blocks that are in flight but not yet committed
        #: (the ledger tip lags them by design).
        self._last_fetched = 0
        peer.env.process(
            self._commit_loop(), name=f"{peer.name}/{channel}/committer"
        )

    def run(self) -> Generator:
        """The fetch/verify stage; registered as the channel validator."""
        return self._fetch_verify()

    # -- stage 1: in-order fetch + parallel verify --------------------------

    def _fetch_verify(self) -> Generator:
        pcs = self.pcs
        env = self.peer.env
        while True:
            while True:
                expected = max(pcs.ledger.tip_block_id, self._last_fetched) + 1
                for stale_id in [
                    block_id
                    for block_id in pcs.pending_blocks
                    if block_id < expected
                ]:
                    del pcs.pending_blocks[stale_id]  # applied via catch-up
                if expected in pcs.pending_blocks:
                    break
                block = yield pcs.incoming_blocks.get()
                if block.block_id >= (
                    max(pcs.ledger.tip_block_id, self._last_fetched) + 1
                ) and block.block_id not in pcs.pending_blocks:
                    # First delivery wins: a re-gossiped duplicate of a
                    # buffered id must not replace the original block.
                    pcs.pending_blocks[block.block_id] = block
            block = pcs.pending_blocks.pop(expected)
            self._last_fetched = block.block_id
            # Acquire an in-flight slot *before* verifying, so at most
            # ``pipeline_depth`` blocks occupy the pipeline at once.
            yield self.depth_tokens.request()
            verified = yield from self._verify_block(block)
            self._ready[block.block_id] = verified
            signal = self._ready_signal
            self._ready_signal = None
            if signal is not None:
                signal.succeed()

    def _verify_block(self, block: Block) -> Generator:
        """Verify every transaction's endorsements on the worker pool.

        Signature verification reads no state, so it needs neither the
        write lock nor block order — this is the stage that overlaps the
        previous block's commit.
        """
        peer = self.peer
        env = peer.env
        costs = self.costs
        tracer = peer.tracer
        verify_start = env.now
        policy_ok: List[bool] = []
        events: List[Event] = []
        for tx in block.transactions:
            # The verdict is pure computation; the simulated time it
            # costs is modelled by the pool task below.
            policy_ok.append(peer._endorsements_valid(self.channel, tx))
            cost = (
                costs.verify_signature
                * len(tx.endorsements)
                * peer.speed_factor
            )
            events.append(self.pool.submit(cost, label=tx.tx_id))
            if tracer is not None:
                tracer.charge("verify", cost, count=len(tx.endorsements))
        if events:
            yield env.all_of(events)
        if tracer is not None:
            tracer.span(
                "block.verify",
                cat="validate",
                track=f"{peer.name}/{self.channel}/verify",
                start=verify_start,
                block_id=block.block_id,
                txs=len(block.transactions),
            )
        return _VerifiedBlock(block=block, policy_ok=policy_ok)

    # -- stage 2: in-order MVCC check + commit ------------------------------

    def _commit_loop(self) -> Generator:
        pcs = self.pcs
        env = self.peer.env
        while True:
            while True:
                tip = pcs.ledger.tip_block_id
                for stale_id in [
                    block_id for block_id in self._ready if block_id <= tip
                ]:
                    # Recovery catch-up already applied this block while
                    # it sat verified; its pipeline slot frees up.
                    del self._ready[stale_id]
                    self.depth_tokens.release()
                if tip + 1 in self._ready:
                    break
                self._ready_signal = env.event()
                yield self._ready_signal
            verified = self._ready.pop(pcs.ledger.tip_block_id + 1)
            try:
                yield from self._commit_block(verified)
            finally:
                self.depth_tokens.release()

    def _commit_block(self, verified: _VerifiedBlock) -> Generator:
        peer = self.peer
        pcs = self.pcs
        env = peer.env
        costs = self.costs
        tracer = peer.tracer
        block = verified.block
        speed = peer.speed_factor
        block_start = env.now
        committed_in_block = 0
        if self.vanilla:
            # Only the state-touching stage takes the exclusive lock;
            # verification of later blocks proceeds around it.
            yield pcs.lock.acquire_write()
        pcs.validating = True
        try:
            yield from peer.cpu.use(
                costs.block_overhead * speed, VALIDATE_PRIORITY
            )
            if tracer is not None:
                tracer.charge("ledger", costs.block_overhead * speed)

            if self.scheduler == "dependency":
                graph = build_validation_dependencies(
                    [tx.rwset for tx in block.transactions]
                )
                waves = dependency_waves(graph)
            else:
                # Serial: every transaction is its own wave, in order.
                waves = [[index] for index in range(len(block.transactions))]

            pending_writes: Dict[str, Version] = {}
            valid_writes: List[Tuple[int, Dict[str, object]]] = []
            for wave in waves:
                wave_start = env.now
                if self.scheduler == "dependency":
                    events = [
                        self.pool.submit(
                            costs.mvcc_check * speed,
                            label=block.transactions[index].tx_id,
                        )
                        for index in wave
                    ]
                    yield env.all_of(events)
                else:
                    yield from peer.cpu.use(
                        costs.mvcc_check * speed, VALIDATE_PRIORITY
                    )
                for index in wave:
                    tx = block.transactions[index]
                    if not verified.policy_ok[index]:
                        outcome = TxOutcome.ABORT_POLICY
                    elif not peer._reads_current(
                        self.channel, tx, pending_writes
                    ):
                        outcome = TxOutcome.ABORT_MVCC
                    else:
                        outcome = TxOutcome.COMMITTED
                    valid = outcome is TxOutcome.COMMITTED
                    block.mark(tx.tx_id, valid)
                    if tracer is not None:
                        tracer.charge("mvcc", costs.mvcc_check * speed)
                        tracer.span(
                            "tx.validate",
                            cat="validate",
                            track=f"{peer.name}/{self.channel}/validator",
                            start=wave_start,
                            tx_id=tx.tx_id,
                            outcome=outcome.value,
                        )
                    if valid:
                        committed_in_block += 1
                        version = Version(block.block_id, index)
                        if self.vanilla:
                            for key in tx.rwset.writes:
                                pending_writes[key] = version
                            valid_writes.append((index, tx.rwset.writes))
                        else:
                            for key, value in tx.rwset.writes.items():
                                pcs.state.apply_write(key, value, version)
                    else:
                        tx.failure_reason = outcome.value
                    if peer.is_reference:
                        peer._report(tx, outcome)

            if self.vanilla:
                # Waves may visit indices out of block order; the store
                # applies writes exactly as the serial validator would.
                valid_writes.sort(key=lambda entry: entry[0])
                pcs.state.apply_block_writes(block.block_id, valid_writes)
            else:
                pcs.state.advance_block(block.block_id)
            pcs.ledger.append(block)
            if tracer is not None:
                tracer.span(
                    "block.validate",
                    cat="validate",
                    track=f"{peer.name}/{self.channel}/validator",
                    start=block_start,
                    block_id=block.block_id,
                    txs=len(block.transactions),
                    committed=committed_in_block,
                    strategy=self.scheduler,
                    waves=len(waves),
                )
        finally:
            pcs.validating = False
            if self.vanilla:
                pcs.lock.release_write()

        if peer.is_reference and peer._metrics is not None:
            peer._metrics.record_block(len(block.transactions))
            self._sync_stats(len(waves), len(block.transactions))

    def _sync_stats(self, wave_count: int, tx_count: int) -> None:
        """Fold pipeline counters into the reference peer's metrics.

        Pool totals are copied (the pool is shared across channels, so
        the copy is idempotent); per-block counters are incremented.
        """
        metrics = self.peer._metrics
        if metrics.validation is None:
            metrics.validation = ValidationStats(
                workers=self.config.validation_workers,
                scheduler=self.scheduler,
                pipeline_depth=self.config.pipeline_depth,
                strategy=self.scheduler,
            )
        stats = metrics.validation
        stats.blocks += 1
        stats.txs += tx_count
        stats.critical_path_total += wave_count
        stats.verify_tasks = self.pool.tasks
        stats.queue_delay_total = self.pool.queue_delay_total
        stats.lane_busy = self.pool.lane_busy_times()
        stats.horizon = self.peer.env.now
