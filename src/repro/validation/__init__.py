"""``repro.validation`` — the peer's pluggable validation/commit pipeline.

The peer historically validated blocks in a single inline serial loop.
This package makes that stage pluggable:

- :func:`repro.validation.serial.serial_validator` is that loop, moved
  verbatim — the default, bit-identical to the pre-pipeline build;
- :class:`repro.validation.pipeline.PipelinedValidator` is the modelled
  pipeline: a verify worker pool, an optional dependency-aware MVCC
  scheduler, and cross-block verify/commit overlap — selected whenever
  any of ``validation_workers``, ``validation_scheduler``, or
  ``pipeline_depth`` leaves its default.

Whatever the configuration, committed ledgers and per-transaction
outcomes are identical; only simulated timing changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.validation.pipeline import PipelinedValidator
from repro.validation.serial import serial_validator
from repro.validation.workers import VerifyWorkerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer

__all__ = [
    "PipelinedValidator",
    "VerifyWorkerPool",
    "build_validator",
    "serial_validator",
]


def build_validator(peer: "Peer", channel: str) -> Generator:
    """Return the validator generator for ``peer`` on ``channel``.

    Dispatches on the configuration: the legacy serial loop for the
    default knobs, the modelled pipeline otherwise.
    """
    if peer.config.uses_validation_pipeline:
        return PipelinedValidator(peer, channel).run()
    return serial_validator(peer, channel)
