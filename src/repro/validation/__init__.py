"""``repro.validation`` — the peer's pluggable validation/commit stage.

The peer historically validated blocks in a single inline serial loop.
This package makes that stage a pluggable *concurrency-control
strategy*, dispatched through :mod:`repro.validation.registry`:

- ``serial`` — :func:`repro.validation.serial.serial_validator`, the
  legacy loop moved verbatim (the default, bit-identical to the
  pre-pipeline build), upgraded to
  :class:`repro.validation.pipeline.PipelinedValidator` with the serial
  scheduler when ``validation_workers`` / ``pipeline_depth`` are set;
- ``dependency`` — the modelled pipeline with topological MVCC waves;
- ``lockless`` — :class:`repro.validation.lockless.LocklessValidator`,
  OCC snapshot validation with no exclusive write lock and
  first-committer-wins write-write aborts (Meir et al.,
  arXiv:1911.12711);
- ``depaware`` — :class:`repro.validation.depaware.DepAwareValidator`,
  conflict-graph dataflow execution with out-of-arrival-order commits
  (Kaul et al., arXiv:2509.07425).

``serial``, ``dependency`` and ``depaware`` produce identical committed
ledgers and per-transaction outcomes — only simulated timing changes.
``lockless`` intentionally diverges on intra-block write-write races
(``abort_occ_ww``); the CC oracle test pins the exact bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.validation.pipeline import PipelinedValidator
from repro.validation.registry import (
    StrategyInfo,
    build_strategy,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.validation.serial import serial_validator
from repro.validation.workers import VerifyWorkerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.peer import Peer

__all__ = [
    "PipelinedValidator",
    "StrategyInfo",
    "VerifyWorkerPool",
    "build_strategy",
    "build_validator",
    "get_strategy",
    "register_strategy",
    "serial_validator",
    "strategy_names",
]


def build_validator(peer: "Peer", channel: str) -> Generator:
    """Return the validator generator for ``peer`` on ``channel``.

    Dispatches the configuration's resolved CC strategy through the
    registry; the all-default configuration resolves to the legacy
    serial loop.
    """
    return build_strategy(peer.config.resolved_cc_strategy, peer, channel)
