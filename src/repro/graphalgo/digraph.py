"""A minimal directed-graph container.

Nodes may be any hashable object. The graph stores forward (successor) and
backward (predecessor) adjacency so the scheduling step of the reordering
algorithm can walk both "parents" and "children" of a node, exactly as
Algorithm 1 of the paper does.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class DiGraph:
    """A simple directed graph with O(1) edge insertion and membership tests.

    >>> g = DiGraph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.successors(1))
    [2]
    >>> sorted(g.predecessors(3))
    [2]
    """

    def __init__(self, nodes: Iterable[Hashable] = ()) -> None:
        self._succ: Dict[Hashable, Set[Hashable]] = {}
        self._pred: Dict[Hashable, Set[Hashable]] = {}
        for node in nodes:
            self.add_node(node)

    # -- construction -----------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` to the graph; a no-op if already present."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add the directed edge ``source -> target``, creating the nodes."""
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and all incident edges."""
        for target in self._succ.pop(node):
            self._pred[target].discard(node)
        for source in self._pred.pop(node):
            self._succ[source].discard(node)

    def subgraph(self, nodes: Iterable[Hashable]) -> "DiGraph":
        """Return the induced subgraph on ``nodes`` as a new graph."""
        keep = set(nodes)
        sub = DiGraph(keep)
        for node in keep:
            for target in self._succ[node]:
                if target in keep:
                    sub.add_edge(node, target)
        return sub

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    def nodes(self) -> List[Hashable]:
        """Return the nodes in insertion order."""
        return list(self._succ)

    def edges(self) -> List[tuple]:
        """Return all edges as (source, target) pairs."""
        return [(u, v) for u in self._succ for v in self._succ[u]]

    def num_edges(self) -> int:
        """Return the total number of directed edges."""
        return sum(len(targets) for targets in self._succ.values())

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """Return True if the edge ``source -> target`` exists."""
        return source in self._succ and target in self._succ[source]

    def successors(self, node: Hashable) -> Set[Hashable]:
        """Return the set of nodes reachable from ``node`` via one edge."""
        return self._succ[node]

    def predecessors(self, node: Hashable) -> Set[Hashable]:
        """Return the set of nodes with an edge into ``node``."""
        return self._pred[node]

    def out_degree(self, node: Hashable) -> int:
        """Return the number of outgoing edges of ``node``."""
        return len(self._succ[node])

    def in_degree(self, node: Hashable) -> int:
        """Return the number of incoming edges of ``node``."""
        return len(self._pred[node])

    def copy(self) -> "DiGraph":
        """Return an independent copy of this graph."""
        clone = DiGraph(self._succ)
        for source, targets in self._succ.items():
            for target in targets:
                clone.add_edge(source, target)
        return clone
