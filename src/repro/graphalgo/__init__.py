"""From-scratch directed-graph algorithms used by the Fabric++ orderer.

The reordering mechanism of the paper (Section 5.1, Algorithm 1) needs:

- a directed-graph container (:class:`DiGraph`),
- Tarjan's strongly-connected-components algorithm (:func:`strongly_connected_components`)
  to split the conflict graph into subgraphs that may contain cycles, and
- Johnson's algorithm (:func:`simple_cycles`) to enumerate the elementary
  cycles within each strongly connected subgraph.

These are implemented here without third-party dependencies so the orderer
substrate is self-contained.
"""

from repro.graphalgo.digraph import DiGraph
from repro.graphalgo.johnson import simple_cycles
from repro.graphalgo.tarjan import condensation, strongly_connected_components
from repro.graphalgo.toposort import is_acyclic, topological_sort

__all__ = [
    "DiGraph",
    "simple_cycles",
    "strongly_connected_components",
    "condensation",
    "topological_sort",
    "is_acyclic",
]
