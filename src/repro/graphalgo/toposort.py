"""Topological ordering helpers for the conflict graph.

The schedule built by Algorithm 1 must respect every edge Tj -> Ti of the
cycle-free conflict graph ("Ti must be ordered after Tj"). These helpers
provide a Kahn topological sort and an acyclicity check used both as a
fallback correctness oracle in tests and by property-based invariants.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List

from repro.graphalgo.digraph import DiGraph


def topological_sort(graph: DiGraph) -> List[Hashable]:
    """Return a topological ordering of ``graph`` (Kahn's algorithm).

    Raises ``ValueError`` if the graph contains a cycle.
    """
    in_degree = {node: graph.in_degree(node) for node in graph}
    ready = deque(node for node, degree in in_degree.items() if degree == 0)
    order: List[Hashable] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for target in graph.successors(node):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                ready.append(target)
    if len(order) != len(graph):
        raise ValueError("graph contains a cycle; no topological order exists")
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """Return True if ``graph`` contains no directed cycle."""
    try:
        topological_sort(graph)
    except ValueError:
        return False
    return True
