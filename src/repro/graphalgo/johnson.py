"""Johnson's algorithm for enumerating elementary cycles.

Used by Algorithm 1, step 2 of the paper to list all cycles inside each
strongly connected subgraph of the conflict graph. Complexity is
O((N + E) * (C + 1)) for C cycles, so a cycle-free subgraph costs almost
nothing — the property the paper relies on for low ordering overhead.

The implementation is the iterative form of Johnson's 1975 algorithm,
restricted to a single strongly connected subgraph at a time (the caller —
``repro.core.reorder`` — already splits the graph with Tarjan's algorithm).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Set

from repro.graphalgo.digraph import DiGraph
from repro.graphalgo.tarjan import strongly_connected_components


def simple_cycles(
    graph: DiGraph, max_cycles: Optional[int] = None
) -> Iterator[List[Hashable]]:
    """Yield every elementary cycle of ``graph`` as a list of nodes.

    Each cycle is reported once, starting from its smallest node in the
    graph's deterministic node ordering. Self-loops are reported as
    single-node cycles.

    ``max_cycles`` optionally caps the enumeration; Fabric++ uses this as a
    safety valve so a pathological block cannot stall the orderer (the
    paper bounds the problem instead via batch cutting on unique keys —
    both mechanisms are available here).
    """
    emitted = 0
    order: Dict[Hashable, int] = {node: i for i, node in enumerate(graph.nodes())}

    # Work on a shrinking copy: after all cycles through the current root
    # are found, the root is removed.
    remaining = graph.copy()

    # Self-loops are elementary cycles that the main loop would miss.
    for node in graph.nodes():
        if graph.has_edge(node, node):
            yield [node]
            emitted += 1
            if max_cycles is not None and emitted >= max_cycles:
                return

    while len(remaining) > 0:
        # Find the SCC containing the smallest remaining node.
        components = [
            c for c in strongly_connected_components(remaining) if len(c) > 1
        ]
        if not components:
            break
        component = min(components, key=lambda c: min(order[n] for n in c))
        subgraph = remaining.subgraph(component)
        root = min(component, key=lambda n: order[n])

        for cycle in _cycles_through_root(subgraph, root):
            yield cycle
            emitted += 1
            if max_cycles is not None and emitted >= max_cycles:
                return
        remaining.remove_node(root)


def _cycles_through_root(
    subgraph: DiGraph, root: Hashable
) -> Iterator[List[Hashable]]:
    """Yield all elementary cycles through ``root`` inside one SCC."""
    blocked: Set[Hashable] = set()
    blocked_from: Dict[Hashable, Set[Hashable]] = {n: set() for n in subgraph}
    path: List[Hashable] = [root]
    blocked.add(root)
    # Self-loop edges are excluded: single-node cycles are reported by the
    # caller, and a self-loop can never be part of a longer elementary cycle.
    stack: List[tuple] = [(root, _targets(subgraph, root))]
    closed: Set[Hashable] = set()

    while stack:
        node, successors = stack[-1]
        if successors:
            target = successors.pop()
            if target == root:
                yield list(path)
                closed.update(path)
            elif target not in blocked:
                path.append(target)
                closed.discard(target)
                blocked.add(target)
                stack.append((target, _targets(subgraph, target)))
            continue
        # All successors of `node` explored: backtrack.
        if node in closed:
            _unblock(node, blocked, blocked_from)
        else:
            for target in subgraph.successors(node):
                blocked_from[target].add(node)
        stack.pop()
        path.pop()
        if stack and path and path[-1] != stack[-1][0]:  # pragma: no cover
            raise AssertionError("path/stack desynchronised")


def _targets(subgraph: DiGraph, node: Hashable) -> List[Hashable]:
    """Successors of ``node`` excluding any self-loop edge."""
    return [t for t in subgraph.successors(node) if t != node]


def _unblock(
    node: Hashable, blocked: Set[Hashable], blocked_from: Dict[Hashable, Set[Hashable]]
) -> None:
    """Johnson's UNBLOCK: recursively release nodes blocked behind ``node``."""
    pending = [node]
    while pending:
        current = pending.pop()
        if current in blocked:
            blocked.discard(current)
            pending.extend(blocked_from[current])
            blocked_from[current].clear()
