"""Tarjan's strongly-connected-components algorithm (iterative).

The paper's reordering mechanism (Algorithm 1, step 2) divides the conflict
graph into strongly connected subgraphs with Tarjan's algorithm [Tarjan 1972]
before enumerating cycles, because every cycle is confined to one SCC.

The implementation is iterative (explicit stack) so large blocks cannot hit
Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graphalgo.digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> List[List[Hashable]]:
    """Return the strongly connected components of ``graph``.

    Each component is returned as a list of nodes. Components are emitted
    in reverse topological order of the condensation (Tarjan's natural
    output order), and the node order inside a component is deterministic
    for a given graph construction order.

    Runs in O(N + E).
    """
    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Dict[Hashable, bool] = {}
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each work item is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, successors = work[-1]
            advanced = False
            for target in successors:
                if target not in index_of:
                    index_of[target] = lowlink[target] = counter
                    counter += 1
                    stack.append(target)
                    on_stack[target] = True
                    work.append((target, iter(graph.successors(target))))
                    advanced = True
                    break
                if on_stack.get(target, False):
                    lowlink[node] = min(lowlink[node], index_of[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(graph: DiGraph) -> DiGraph:
    """Return the condensation of ``graph``: one node per SCC.

    Nodes of the result are frozensets of the original nodes. The
    condensation is always acyclic; it is useful for testing the SCC
    decomposition itself.
    """
    components = strongly_connected_components(graph)
    member_of: Dict[Hashable, frozenset] = {}
    for component in components:
        key = frozenset(component)
        for node in component:
            member_of[node] = key
    result = DiGraph(frozenset(c) for c in components)
    for source, target in graph.edges():
        if member_of[source] != member_of[target]:
            result.add_edge(member_of[source], member_of[target])
    return result
