"""A YCSB-style workload (extension beyond the paper's two workloads).

The paper names YCSB among the standard suites blockchains lack
(Section 6.2); this module provides the classic core workload mixes over
the simulated Fabric pipeline:

- **A** — update heavy (50% read / 50% update)
- **B** — read mostly (95% read / 5% update)
- **C** — read only
- **D** — read latest (95% read / 5% insert)
- **E** — short ranges (95% scan / 5% insert)
- **F** — read-modify-write (50% read / 50% RMW)

Records live under zero-padded ordered keys so workload E's scans map to
``get_state_by_range``. Request keys follow a Zipf distribution with a
configurable s-value, like the Smallbank accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ChaincodeError, ConfigError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.sim.distributions import Rng, ZipfSampler
from repro.workloads.base import Invocation, Workload

#: Operation mixes of the standard YCSB core workloads.
PRESETS: Dict[str, Dict[str, float]] = {
    "a": {"read": 0.50, "update": 0.50},
    "b": {"read": 0.95, "update": 0.05},
    "c": {"read": 1.00},
    "d": {"read": 0.95, "insert": 0.05},
    "e": {"scan": 0.95, "insert": 0.05},
    "f": {"read": 0.50, "rmw": 0.50},
}

KEY_WIDTH = 10


def record_key(record_id: int) -> str:
    """Ordered state key of one YCSB record."""
    return f"user{record_id:0{KEY_WIDTH}d}"


@dataclass(frozen=True)
class YcsbParams:
    """Configuration of a YCSB run."""

    num_records: int = 10_000
    #: Operation mix; must sum to 1. Keys: read/update/insert/scan/rmw.
    mix: Dict[str, float] = field(
        default_factory=lambda: dict(PRESETS["a"])
    )
    #: Zipf skew of the request distribution (0 = uniform).
    s_value: float = 0.99
    #: Maximum records returned by one scan (workload E).
    max_scan_length: int = 20
    #: Operations between hot-set rotations per request stream
    #: (0 = static hot set; the classic YCSB behaviour).
    hotspot_interval: int = 0
    #: Fraction of the keyspace the hot set shifts at each rotation.
    hot_set_drift: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` for inconsistent parameters."""
        if self.num_records < 1:
            raise ConfigError("num_records must be >= 1")
        if self.max_scan_length < 1:
            raise ConfigError("max_scan_length must be >= 1")
        if self.hotspot_interval < 0:
            raise ConfigError("hotspot_interval must be >= 0")
        if not 0.0 <= self.hot_set_drift <= 1.0:
            raise ConfigError("hot_set_drift must be in [0, 1]")
        known = {"read", "update", "insert", "scan", "rmw"}
        unknown = set(self.mix) - known
        if unknown:
            raise ConfigError(f"unknown operations in mix: {sorted(unknown)}")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operation mix must sum to 1, got {total}")

    @classmethod
    def preset(cls, name: str, **overrides) -> "YcsbParams":
        """Build the standard workload ``name`` ('a'..'f')."""
        try:
            mix = dict(PRESETS[name.lower()])
        except KeyError:
            raise ConfigError(f"unknown YCSB preset {name!r}") from None
        return cls(mix=mix, **overrides)


class YcsbChaincode(Chaincode):
    """Smart contract implementing the five YCSB operations."""

    name = "ycsb"

    def invoke(self, stub: ChaincodeStub, function: str, args: tuple) -> object:
        handler = getattr(self, f"_{function}", None)
        if handler is None:
            raise ChaincodeError(f"ycsb has no operation {function!r}")
        return handler(stub, *args)

    def operation_count(self, function: str, args: tuple) -> int:
        if function == "scan":
            return 1 + args[1]  # start lookup + one per scanned record
        if function == "rmw":
            return 2
        return 1

    def _read(self, stub, key):
        return stub.get_state(key)

    def _update(self, stub, key, value):
        stub.put_state(key, value)

    def _insert(self, stub, key, value):
        stub.put_state(key, value)

    def _scan(self, stub, start_key, count):
        results = stub.get_state_by_range(start_key, None)
        return results[:count]

    def _rmw(self, stub, key, delta):
        value = stub.get_state(key) or 0
        stub.put_state(key, value + delta)
        return value + delta


class YcsbWorkload(Workload):
    """Invocation stream for a YCSB operation mix."""

    chaincode_name = YcsbChaincode.name

    def __init__(self, params: Optional[YcsbParams] = None, seed: int = 0) -> None:
        self.params = params or YcsbParams()
        self.params.validate()
        self._seed = seed
        self._samplers: Dict[int, ZipfSampler] = {}
        #: Per-stream ``[operations, shift]`` hot-set drift state, keyed
        #: like ``_samplers``; only populated when drift is active.
        self._hotspots: Dict[int, list] = {}
        #: Monotonic id source for inserted records (continues after the
        #: initial load, as in YCSB's ordered insert key chooser).
        self._next_insert_id = self.params.num_records
        # Precompute the cumulative mix for O(ops) selection.
        self._operations = sorted(self.params.mix)
        cumulative = 0.0
        self._thresholds = []
        for operation in self._operations:
            cumulative += self.params.mix[operation]
            self._thresholds.append(cumulative)

    def create_chaincode(self) -> Chaincode:
        return YcsbChaincode()

    def initial_state(self) -> Dict[str, object]:
        rng = Rng(self._seed)
        return {
            record_key(record_id): rng.randint(0, 1_000_000)
            for record_id in range(self.params.num_records)
        }

    def _pick_record(self, rng: Rng) -> int:
        sampler = self._samplers.get(id(rng))
        if sampler is None:
            sampler = ZipfSampler(self.params.num_records, self.params.s_value, rng)
            self._samplers[id(rng)] = sampler
        record = sampler.sample()
        interval = self.params.hotspot_interval
        if interval and self.params.hot_set_drift:
            state = self._hotspots.get(id(rng))
            if state is None:
                state = self._hotspots[id(rng)] = [0, 0]
            if state[0] and state[0] % interval == 0:
                step = int(self.params.hot_set_drift * self.params.num_records)
                state[1] = (state[1] + step) % self.params.num_records
            state[0] += 1
            record = (record + state[1]) % self.params.num_records
        return record

    def _pick_operation(self, rng: Rng) -> str:
        draw = rng.random()
        for operation, threshold in zip(self._operations, self._thresholds):
            if draw < threshold:
                return operation
        return self._operations[-1]

    def next_invocation(self, rng: Rng) -> Invocation:
        operation = self._pick_operation(rng)
        if operation == "read":
            return Invocation("read", (record_key(self._pick_record(rng)),))
        if operation == "update":
            return Invocation(
                "update",
                (record_key(self._pick_record(rng)), rng.randint(0, 1_000_000)),
            )
        if operation == "insert":
            record_id = self._next_insert_id
            self._next_insert_id += 1
            return Invocation(
                "insert", (record_key(record_id), rng.randint(0, 1_000_000))
            )
        if operation == "scan":
            length = rng.randint(1, self.params.max_scan_length)
            return Invocation(
                "scan", (record_key(self._pick_record(rng)), length)
            )
        # read-modify-write
        return Invocation(
            "rmw", (record_key(self._pick_record(rng)), rng.randint(1, 100))
        )
