"""The paper's custom configurable workload (Section 6.2.2, Table 7).

A single transaction type performs a configurable number of read and write
accesses (RW) over N account balances. A subset of the accounts — HSS
percent of them — are *hot*: each read access picks a hot account with
probability HR, each write access with probability HW. Hot-set contention
is what drives the serialization conflicts that Figures 1, 9, 10, and 11
study.

Reads and writes draw their accounts independently, so read and write sets
can be non-overlapping — the regime in which the paper notes Fabric++'s
reordering shines ("for the workload that potentially has non-overlapping
read and write sets, Fabric++ is able to re-organize the transaction block
to minimize the number of unnecessary aborts", Section 6.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ChaincodeError, ConfigError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.sim.distributions import Rng
from repro.workloads.base import Invocation, Workload


def account_key(account: int) -> str:
    """State key of one account balance."""
    return f"acc_{account}"


@dataclass(frozen=True)
class CustomWorkloadParams:
    """The five knobs of Table 7 (plus the account count N)."""

    #: Number of account balances (N).
    num_accounts: int = 10_000
    #: Reads and writes per transaction (RW).
    reads_writes: int = 4
    #: Probability that a read access picks a hot account (HR).
    prob_hot_read: float = 0.1
    #: Probability that a write access picks a hot account (HW).
    prob_hot_write: float = 0.05
    #: Fraction of accounts that are hot (HSS), e.g. 0.01 for 1%.
    hot_set_fraction: float = 0.01

    def validate(self) -> None:
        """Raise :class:`ConfigError` for out-of-range parameters."""
        if self.num_accounts < 1:
            raise ConfigError("num_accounts must be >= 1")
        if self.reads_writes < 1:
            raise ConfigError("reads_writes must be >= 1")
        for name in ("prob_hot_read", "prob_hot_write", "hot_set_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be within [0, 1], got {value}")
        if int(self.num_accounts * self.hot_set_fraction) < 1:
            raise ConfigError("hot set is empty; increase hot_set_fraction or N")

    @property
    def hot_set_size(self) -> int:
        """Number of hot accounts."""
        return max(1, int(self.num_accounts * self.hot_set_fraction))


class CustomChaincode(Chaincode):
    """Reads a set of accounts, then writes derived values to another set."""

    name = "custom"

    def invoke(self, stub: ChaincodeStub, function: str, args: tuple) -> object:
        if function != "readwrite":
            raise ChaincodeError(f"custom chaincode has no function {function!r}")
        read_accounts, write_accounts, delta = args
        total = 0
        for account in read_accounts:
            total += stub.get_state(account_key(account)) or 0
        checksum = (total + delta) % 1_000_003
        for offset, account in enumerate(write_accounts):
            stub.put_state(account_key(account), checksum + offset)
        return checksum

    def operation_count(self, function: str, args: tuple) -> int:
        read_accounts, write_accounts, _delta = args
        return len(read_accounts) + len(write_accounts)


class CustomWorkload(Workload):
    """Invocation stream for the custom hot-account workload."""

    chaincode_name = CustomChaincode.name

    def __init__(
        self,
        params: CustomWorkloadParams = CustomWorkloadParams(),
        seed: int = 0,
    ) -> None:
        params.validate()
        self.params = params
        self._seed = seed

    def create_chaincode(self) -> Chaincode:
        return CustomChaincode()

    def initial_state(self) -> Dict[str, object]:
        rng = Rng(self._seed)
        return {
            account_key(account): rng.randint(0, 100_000)
            for account in range(self.params.num_accounts)
        }

    def _pick_account(self, rng: Rng, hot_probability: float) -> int:
        """Pick one account: hot with the given probability, else cold."""
        hot_size = self.params.hot_set_size
        if rng.bernoulli(hot_probability):
            return rng.randint(0, hot_size - 1)
        if hot_size >= self.params.num_accounts:
            return rng.randint(0, self.params.num_accounts - 1)
        return rng.randint(hot_size, self.params.num_accounts - 1)

    def next_invocation(self, rng: Rng) -> Invocation:
        params = self.params
        reads: List[int] = []
        writes: List[int] = []
        for _ in range(params.reads_writes):
            read = self._pick_account(rng, params.prob_hot_read)
            while read in reads:
                read = self._pick_account(rng, params.prob_hot_read)
            reads.append(read)
        for _ in range(params.reads_writes):
            write = self._pick_account(rng, params.prob_hot_write)
            while write in writes:
                write = self._pick_account(rng, params.prob_hot_write)
            writes.append(write)
        delta = rng.randint(1, 1000)
        return Invocation("readwrite", (tuple(reads), tuple(writes), delta))
