"""Benchmark workloads.

Three workloads drive the evaluation, mirroring the paper's Section 6.2.2:

- :mod:`repro.workloads.smallbank` — the Smallbank banking benchmark
  (six transactions over checking/savings accounts, Zipfian account
  selection parameterised by an s-value);
- :mod:`repro.workloads.custom` — the paper's configurable
  read/write workload over hot and cold accounts (parameters N, RW, HR,
  HW, HSS);
- :mod:`repro.workloads.blank` — blank transactions without any logic,
  used by Figure 1 to show the pipeline is crypto/network-bound;
- :mod:`repro.workloads.ycsb` — a YCSB-style extension with the classic
  core mixes A-F (the paper names YCSB among the standard suites
  blockchains lack).
"""

from repro.workloads.base import Invocation, Workload
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams
from repro.workloads.registry import (
    WorkloadRef,
    make_workload,
    register_workload,
    workload_names,
)
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload
from repro.workloads.ycsb import YcsbParams, YcsbWorkload

__all__ = [
    "Invocation",
    "Workload",
    "WorkloadRef",
    "make_workload",
    "register_workload",
    "workload_names",
    "BlankWorkload",
    "CustomWorkload",
    "CustomWorkloadParams",
    "SmallbankParams",
    "SmallbankWorkload",
    "YcsbParams",
    "YcsbWorkload",
]
