"""Blank transactions without any logic (paper Figure 1, bottom bar).

A blank transaction reads and writes nothing; its read/write sets are
empty, so it always validates. Firing blank transactions isolates the
pipeline's fixed costs — cryptography, ordering, and networking — from
transaction processing: the paper observes that blank and meaningful
transactions achieve essentially the same *total* throughput, proving the
system is not bound by concurrency control.
"""

from __future__ import annotations

from typing import Dict

from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.sim.distributions import Rng
from repro.workloads.base import Invocation, Workload


class BlankChaincode(Chaincode):
    """A smart contract that does nothing."""

    name = "blank"

    def invoke(self, stub: ChaincodeStub, function: str, args: tuple) -> object:
        return None

    def operation_count(self, function: str, args: tuple) -> int:
        return 1


class BlankWorkload(Workload):
    """Fires no-op invocations."""

    chaincode_name = BlankChaincode.name

    def create_chaincode(self) -> Chaincode:
        return BlankChaincode()

    def initial_state(self) -> Dict[str, object]:
        return {}

    def next_invocation(self, rng: Rng) -> Invocation:
        return Invocation("noop", ())
