"""Workload interface shared by all benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.fabric.chaincode import Chaincode
from repro.sim.distributions import Rng


@dataclass(frozen=True)
class Invocation:
    """One chaincode call a client should fire."""

    function: str
    args: Tuple


class Workload:
    """A workload: a chaincode, its initial state, and an invocation stream.

    Implementations must be deterministic given the :class:`Rng` passed to
    :meth:`next_invocation`, so entire benchmark runs replay from a seed.
    """

    #: Name under which the chaincode is installed on the channel.
    chaincode_name = "workload"

    def create_chaincode(self) -> Chaincode:
        """Build the chaincode implementing this workload's transactions."""
        raise NotImplementedError

    def initial_state(self) -> Dict[str, object]:
        """Key-value pairs seeded into the channel's genesis state."""
        raise NotImplementedError

    def next_invocation(self, rng: Rng) -> Invocation:
        """Draw the next chaincode call for a client to fire."""
        raise NotImplementedError
