"""The Smallbank benchmark (paper Section 6.2.2, H-Store origin).

Each user owns a checking account and a savings account, initialised with
random balances. Six transactions operate on them:

- ``TransactSavings`` — increase a savings account;
- ``DepositChecking`` — increase a checking account;
- ``SendPayment`` — transfer between two checking accounts;
- ``WriteCheck`` — decrease a checking account (after checking the total
  balance, so it reads both accounts);
- ``Amalgamate`` — move all savings funds into the checking account;
- ``Query`` — read both accounts of one user (read-only).

A run picks one of the five modifying transactions with probability ``Pw``
(uniformly among the five) and ``Query`` with probability ``1 - Pw``;
accounts are selected by a Zipfian distribution with configurable s-value
(paper Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.sim.distributions import Rng, ZipfSampler
from repro.workloads.base import Invocation, Workload

MODIFYING_FUNCTIONS = (
    "transact_savings",
    "deposit_checking",
    "send_payment",
    "write_check",
    "amalgamate",
)


def checking_key(customer: int) -> str:
    """State key of a customer's checking account."""
    return f"checking_{customer}"


def savings_key(customer: int) -> str:
    """State key of a customer's savings account."""
    return f"savings_{customer}"


class SmallbankChaincode(Chaincode):
    """Smart contract implementing the six Smallbank transactions."""

    name = "smallbank"

    def invoke(self, stub: ChaincodeStub, function: str, args: tuple) -> object:
        handler = getattr(self, f"_{function}", None)
        if handler is None:
            raise ChaincodeError(f"smallbank has no function {function!r}")
        return handler(stub, *args)

    def operation_count(self, function: str, args: tuple) -> int:
        if function == "send_payment":
            return 4
        if function in ("write_check", "amalgamate", "query"):
            return 4 if function != "write_check" else 3
        return 2

    # -- the six transactions ---------------------------------------------------

    def _transact_savings(self, stub: ChaincodeStub, customer: int, amount: int):
        balance = stub.get_state(savings_key(customer)) or 0
        stub.put_state(savings_key(customer), balance + amount)

    def _deposit_checking(self, stub: ChaincodeStub, customer: int, amount: int):
        balance = stub.get_state(checking_key(customer)) or 0
        stub.put_state(checking_key(customer), balance + amount)

    def _send_payment(
        self, stub: ChaincodeStub, source: int, destination: int, amount: int
    ):
        source_balance = stub.get_state(checking_key(source)) or 0
        destination_balance = stub.get_state(checking_key(destination)) or 0
        stub.put_state(checking_key(source), source_balance - amount)
        stub.put_state(checking_key(destination), destination_balance + amount)

    def _write_check(self, stub: ChaincodeStub, customer: int, amount: int):
        checking = stub.get_state(checking_key(customer)) or 0
        savings = stub.get_state(savings_key(customer)) or 0
        # Overdraft penalty follows the H-Store specification.
        penalty = 1 if amount > checking + savings else 0
        stub.put_state(checking_key(customer), checking - amount - penalty)

    def _amalgamate(self, stub: ChaincodeStub, customer: int):
        savings = stub.get_state(savings_key(customer)) or 0
        checking = stub.get_state(checking_key(customer)) or 0
        stub.put_state(savings_key(customer), 0)
        stub.put_state(checking_key(customer), checking + savings)

    def _query(self, stub: ChaincodeStub, customer: int):
        checking = stub.get_state(checking_key(customer)) or 0
        savings = stub.get_state(savings_key(customer)) or 0
        return checking + savings


@dataclass(frozen=True)
class SmallbankParams:
    """Configuration of a Smallbank run (paper Table 6)."""

    num_users: int = 100_000
    #: Probability of firing a modifying transaction (Pw).
    prob_write: float = 0.95
    #: Zipf skew for account selection; 0 is uniform.
    s_value: float = 0.0
    #: Initial balance bounds.
    min_balance: int = 100
    max_balance: int = 50_000


class SmallbankWorkload(Workload):
    """Invocation stream + initial accounts for Smallbank."""

    chaincode_name = SmallbankChaincode.name

    def __init__(self, params: SmallbankParams = SmallbankParams(), seed: int = 0) -> None:
        self.params = params
        self._seed = seed
        # One Zipf sampler per client Rng (several clients share a
        # workload); keyed by object identity.
        self._samplers: Dict[int, ZipfSampler] = {}

    def create_chaincode(self) -> Chaincode:
        return SmallbankChaincode()

    def initial_state(self) -> Dict[str, object]:
        rng = Rng(self._seed)
        state: Dict[str, object] = {}
        for customer in range(self.params.num_users):
            state[checking_key(customer)] = rng.randint(
                self.params.min_balance, self.params.max_balance
            )
            state[savings_key(customer)] = rng.randint(
                self.params.min_balance, self.params.max_balance
            )
        return state

    def _customer(self, rng: Rng) -> int:
        sampler = self._samplers.get(id(rng))
        if sampler is None:
            sampler = ZipfSampler(self.params.num_users, self.params.s_value, rng)
            self._samplers[id(rng)] = sampler
        return sampler.sample()

    def next_invocation(self, rng: Rng) -> Invocation:
        customer = self._customer(rng)
        if not rng.bernoulli(self.params.prob_write):
            return Invocation("query", (customer,))
        function = MODIFYING_FUNCTIONS[rng.randint(0, 4)]
        if function == "send_payment":
            destination = self._customer(rng)
            if destination == customer:
                destination = (customer + 1) % self.params.num_users
            return Invocation(
                "send_payment", (customer, destination, rng.randint(1, 100))
            )
        if function == "amalgamate":
            return Invocation("amalgamate", (customer,))
        return Invocation(function, (customer, rng.randint(1, 100)))
