"""Named workload factories: build workloads from plain data.

The sweep engine describes an experiment entirely as data
(:class:`repro.bench.spec.ExperimentSpec`), so workloads must be
constructible from a ``(name, params, seed)`` triple that pickles cheaply
across process boundaries and hashes stably into a cache key. The
registry maps a public workload name to a factory callable;
:class:`WorkloadRef` is the picklable reference the bench layer stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload

_FACTORIES: Dict[str, Callable[..., Workload]] = {}


def register_workload(name: str, factory: Callable[..., Workload]) -> None:
    """Register ``factory`` under ``name``.

    The factory must accept a ``seed`` keyword plus the workload's own
    parameter keywords and return a fresh :class:`Workload`.
    """
    if name in _FACTORIES:
        raise ConfigError(f"workload {name!r} is already registered")
    _FACTORIES[name] = factory


def workload_names() -> Tuple[str, ...]:
    """The registered workload names, sorted."""
    return tuple(sorted(_FACTORIES))


def make_workload(name: str, seed: int = 0, **params) -> Workload:
    """Build a fresh workload instance from its name and parameters."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise ConfigError(f"unknown workload {name!r}; known: {known}") from None
    try:
        return factory(seed=seed, **params)
    except TypeError as error:
        raise ConfigError(f"bad parameters for workload {name!r}: {error}") from error


@dataclass(frozen=True)
class WorkloadRef:
    """A picklable, data-only reference to a registered workload.

    Unlike a :class:`Workload` instance or a closure, a ref can be
    fingerprinted for the result cache and shipped to worker processes
    without dragging simulation state along.
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> Workload:
        """Instantiate the workload this ref describes."""
        return make_workload(self.name, seed=self.seed, **self.params)

    def describe(self) -> Dict[str, object]:
        """A JSON-ready description (used for cache fingerprints)."""
        return {"name": self.name, "params": dict(self.params), "seed": self.seed}


# -- built-in workloads ---------------------------------------------------------


def _make_smallbank(seed: int = 0, **params) -> Workload:
    return SmallbankWorkload(SmallbankParams(**params), seed=seed)


def _make_custom(seed: int = 0, **params) -> Workload:
    return CustomWorkload(CustomWorkloadParams(**params), seed=seed)


def _make_blank(seed: int = 0, **params) -> Workload:
    if params:
        raise ConfigError(f"blank workload takes no parameters, got {sorted(params)}")
    return BlankWorkload()


def _make_ycsb(seed: int = 0, preset: str = None, **params) -> Workload:
    from repro.workloads.ycsb import YcsbParams, YcsbWorkload

    if preset is not None:
        ycsb_params = YcsbParams.preset(preset, **params)
    else:
        ycsb_params = YcsbParams(**params)
    return YcsbWorkload(ycsb_params, seed=seed)


register_workload("smallbank", _make_smallbank)
register_workload("custom", _make_custom)
register_workload("blank", _make_blank)
register_workload("ycsb", _make_ycsb)
