"""Named overload scenarios: traffic shape x faults x misbehaving clients.

Each :class:`Scenario` is a fully described stress situation — an
open-loop arrival process, a backpressure configuration, a fault
schedule (possibly including misbehaving-client populations) and a
workload — under a short, fast-to-simulate network. Scenarios are
seeded: ``scenario.spec(seed)`` derives every random stream (workload,
clients, traffic, misbehavior populations) from one integer through
independent salted streams, so the same ``(name, seed, system)`` triple
always reproduces the same run bit-for-bit.

``run_scenario`` executes one scenario and then holds it to the same
standard as the chaos harness: the five consensus safety invariants
(:data:`repro.chaos.INVARIANT_NAMES`) plus liveness — every fired
proposal resolved (committed, aborted, or explicitly shed as
``overload_rejected``; never silently dropped) and nothing left queued
inside the ordering service. Overload may degrade throughput; it must
never corrupt the chain or lose a resolution.

The CLI front end is ``python -m repro scenario <name>`` (see
:mod:`repro.cli`); ``docs/scenarios.md`` catalogues the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import run_experiment_with_network
from repro.bench.spec import ExperimentSpec
from repro.chaos import INVARIANT_NAMES, _settle, check_invariants
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import (
    BackpressureConfig,
    FabricConfig,
    PopulationConfig,
)
from repro.fabric.metrics import TxOutcome
from repro.faults import FaultSchedule, MisbehaviorSpec
from repro.sim.distributions import mix_seed
from repro.traffic import ArrivalProcess
from repro.workloads.registry import WorkloadRef

#: Salt separating scenario randomness from every other seeded stream.
SCENARIO_SEED_SALT = 0x5CE0


@dataclass(frozen=True)
class Scenario:
    """One named, seeded stress situation.

    ``config`` and ``workload`` carry placeholder seeds; :meth:`spec`
    re-derives both from the caller's seed through independent salted
    streams.
    """

    name: str
    description: str
    config: FabricConfig
    workload: WorkloadRef
    duration: float = 1.0
    drain: float = 3.0

    def spec(self, seed: int = 0, system: str = "fabric") -> ExperimentSpec:
        """The experiment spec one ``(seed, system)`` instance runs."""
        if system not in ("fabric", "fabric++"):
            raise ConfigError(
                f"unknown system {system!r}: expected 'fabric' or 'fabric++'"
            )
        config = replace(
            self.config, seed=mix_seed(seed, SCENARIO_SEED_SALT, 1)
        )
        config = (
            config.with_fabric_plus_plus()
            if system == "fabric++"
            else config.with_vanilla()
        )
        workload = WorkloadRef(
            self.workload.name,
            dict(self.workload.params),
            seed=mix_seed(seed, SCENARIO_SEED_SALT, 2),
        )
        return ExperimentSpec(
            config=config,
            workload=workload,
            duration=self.duration,
            drain=self.drain,
            label=f"scenario:{self.name}",
            params={"scenario": self.name, "seed": seed, "system": system},
        )


# -- the suite ------------------------------------------------------------------
#
# Small blocks, two clients and modest rates keep every scenario fast
# enough to sweep across many seeds in tests and CI while still driving
# the behavior the scenario is named for (queues filling, shed paths
# firing, storms bursting). The overload scenarios deliberately offer
# more load than the endorsement stage can absorb, so admission control
# actually rejects work.

_BATCH = BatchCutConfig(max_transactions=64)


def _smallbank(users: int = 1000, s_value: float = 0.0) -> WorkloadRef:
    return WorkloadRef(
        "smallbank", {"num_users": users, "prob_write": 0.95, "s_value": s_value}
    )


def _config(**overrides) -> FabricConfig:
    overrides.setdefault("client_rate", 120.0)
    return replace(
        FabricConfig(), batch=_BATCH, clients_per_channel=2, **overrides
    )


_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="calm-baseline",
        description="closed-loop control: steady paced clients, no faults",
        config=_config(),
        workload=_smallbank(),
    ),
    Scenario(
        name="poisson-steady",
        description="open-loop Poisson arrivals at a sustainable rate",
        config=_config(
            client_rate=150.0, traffic=ArrivalProcess(kind="poisson")
        ),
        workload=_smallbank(),
    ),
    Scenario(
        name="diurnal-wave",
        description="sinusoidal load wave (thinned Poisson), peak ~2x trough",
        config=_config(
            traffic=ArrivalProcess(kind="diurnal", period=1.0, amplitude=0.8)
        ),
        workload=_smallbank(),
        duration=2.0,
    ),
    Scenario(
        name="flash-crowd",
        description="6x arrival spike mid-run against bounded queues",
        config=_config(
            client_rate=100.0,
            traffic=ArrivalProcess(
                kind="flash", flash_at=0.4, flash_duration=0.4, flash_factor=6.0
            ),
            backpressure=BackpressureConfig(
                orderer_queue_limit=256,
                endorse_queue_limit=96,
                delivery_backlog_limit=8,
            ),
        ),
        workload=_smallbank(),
    ),
    Scenario(
        name="heavy-tail-thinkers",
        description="Pareto interarrivals: long idle gaps, dense bursts",
        config=_config(
            traffic=ArrivalProcess(kind="heavy_tail", pareto_shape=1.5)
        ),
        workload=_smallbank(),
    ),
    Scenario(
        name="overload-shed",
        description="sustained 5x overload; admission control must shed",
        config=_config(
            client_rate=700.0,
            traffic=ArrivalProcess(kind="poisson"),
            backpressure=BackpressureConfig(
                orderer_queue_limit=128,
                endorse_queue_limit=48,
                delivery_backlog_limit=4,
                client_retries=2,
            ),
        ),
        workload=_smallbank(),
    ),
    Scenario(
        name="resubmit-storm",
        description="half the clients resubmit every failure 3x, capped",
        config=_config(
            client_rate=150.0,
            traffic=ArrivalProcess(kind="poisson"),
            backpressure=BackpressureConfig(
                orderer_queue_limit=256, endorse_queue_limit=96
            ),
            faults=FaultSchedule(
                misbehaviors=(
                    MisbehaviorSpec(
                        kind="resubmit_storm",
                        fraction=0.5,
                        storm_factor=3,
                        storm_cap=60,
                    ),
                )
            ),
        ),
        workload=_smallbank(users=300, s_value=1.0),
    ),
    Scenario(
        name="channel-shards",
        description="4 sharded channels, Zipf client affinity, 10% sagas",
        config=_config(
            channels=4,
            client_rate=100.0,
            cross_channel_fraction=0.1,
            population=PopulationConfig(accounts=1_000_000, zipf_s=1.0),
        ),
        workload=_smallbank(users=500, s_value=1.0),
    ),
    Scenario(
        name="stale-replay",
        description="half the clients replay stale reads after a hold",
        config=_config(
            faults=FaultSchedule(
                misbehaviors=(
                    MisbehaviorSpec(
                        kind="stale_replay", fraction=0.5, rate=0.5, hold_time=0.2
                    ),
                )
            ),
        ),
        workload=_smallbank(users=300, s_value=1.0),
    ),
    Scenario(
        name="oversized-flood",
        description="half the clients pad rw-sets past the endorsed form",
        config=_config(
            backpressure=BackpressureConfig(
                orderer_queue_limit=256, endorse_queue_limit=96
            ),
            faults=FaultSchedule(
                misbehaviors=(
                    MisbehaviorSpec(
                        kind="oversized_rwset", fraction=0.5, rate=0.5, padding=48
                    ),
                )
            ),
        ),
        workload=_smallbank(users=300, s_value=1.0),
    ),
)

_REGISTRY: Dict[str, Scenario] = {
    scenario.name: scenario for scenario in _SCENARIOS
}


def scenario_names() -> List[str]:
    """Every registered scenario name, in catalogue order."""
    return [scenario.name for scenario in _SCENARIOS]


def get_scenario(name: str) -> Scenario:
    """The scenario registered under ``name``.

    Raises :class:`ConfigError` listing the known names otherwise.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ConfigError(
            f"unknown scenario {name!r}: expected one of {known}"
        ) from None


def scenario_specs(
    name: str, seeds, system: str = "fabric"
) -> List[ExperimentSpec]:
    """One spec per seed — sweep-engine food (``run_sweep(specs)``)."""
    scenario = get_scenario(name)
    return [scenario.spec(seed, system=system) for seed in seeds]


# -- invariant-checked execution ------------------------------------------------


@dataclass
class ScenarioReport:
    """The outcome of one scenario run: invariants, liveness, counters."""

    scenario: str
    seed: int
    system: str
    invariants: Dict[str, bool]
    liveness: bool
    converged: bool
    details: List[str] = field(default_factory=list)
    fired: int = 0
    resolved: int = 0
    committed: int = 0
    shed: int = 0
    blocks: int = 0
    client_retries: int = 0
    endorse_rejections: int = 0
    orderer_rejections: int = 0
    queue_depth_peak: int = 0
    #: Cross-channel saga counters (sharded scenarios only; 0 otherwise).
    saga_started: int = 0
    saga_half_committed: int = 0
    sim_time: float = 0.0

    @property
    def passed(self) -> bool:
        """True when every invariant held and the run stayed live."""
        return self.liveness and self.converged and all(self.invariants.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for the scenario report artifact."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "system": self.system,
            "passed": self.passed,
            "invariants": dict(self.invariants),
            "liveness": self.liveness,
            "converged": self.converged,
            "details": list(self.details),
            "fired": self.fired,
            "resolved": self.resolved,
            "committed": self.committed,
            "shed": self.shed,
            "blocks": self.blocks,
            "client_retries": self.client_retries,
            "endorse_rejections": self.endorse_rejections,
            "orderer_rejections": self.orderer_rejections,
            "queue_depth_peak": self.queue_depth_peak,
            "saga_started": self.saga_started,
            "saga_half_committed": self.saga_half_committed,
            "sim_time": self.sim_time,
        }


def run_scenario(
    name: str,
    seed: int = 0,
    system: str = "fabric",
    max_convergence_rounds: int = 40,
) -> ScenarioReport:
    """Execute one scenario run and check every invariant.

    Deterministic: the same arguments always yield the same report.
    """
    spec = get_scenario(name).spec(seed, system=system)
    result, network = run_experiment_with_network(spec)
    metrics = result.metrics
    converged = _settle(network, max_convergence_rounds)
    invariants, details = check_invariants(network)

    # Liveness is judged runtime by runtime: on a sharded fleet the
    # aggregate resolved count includes saga terminations (one intent,
    # three terminal facts), so fleet resolved == fired would be the
    # wrong test even on a perfectly live run.
    runtimes = getattr(network, "runtimes", None) or [network]
    liveness = True
    for runtime in runtimes:
        if runtime._pending:
            liveness = False
        if runtime.metrics.resolved != runtime.metrics.fired:
            liveness = False
            details.append(
                f"liveness: {runtime.channels[0]} resolved "
                f"{runtime.metrics.resolved} of {runtime.metrics.fired} "
                "fired proposals"
            )
    for channel, orderer in network.orderers.items():
        pending = getattr(orderer, "pending_count", 0)
        if pending:
            liveness = False
            details.append(
                f"liveness: {pending} transactions still queued in the "
                f"{channel} ordering service"
            )
    if network._pending:
        details.append(
            f"liveness: {len(network._pending)} proposals never resolved"
        )
    if not converged:
        details.append(
            "liveness: live peers did not converge on one tip within "
            f"{max_convergence_rounds} extra rounds"
        )
    saga = getattr(network, "saga", None)
    if saga is not None and (
        saga.unresolved_legs or saga.stats.started != saga.stats.finished
    ):
        liveness = False
        details.append(
            f"liveness: {saga.unresolved_legs} saga legs unresolved "
            f"({saga.stats.started} sagas started, "
            f"{saga.stats.finished} finished)"
        )

    overload = metrics.overload
    return ScenarioReport(
        scenario=name,
        seed=seed,
        system=system,
        invariants=invariants,
        liveness=liveness,
        converged=converged,
        details=details,
        fired=metrics.fired,
        resolved=metrics.resolved,
        committed=metrics.outcomes.get(TxOutcome.COMMITTED, 0),
        shed=metrics.outcomes.get(TxOutcome.OVERLOAD_REJECTED, 0),
        blocks=metrics.blocks_committed,
        client_retries=overload.client_retries if overload else 0,
        endorse_rejections=overload.endorse_rejections if overload else 0,
        orderer_rejections=overload.orderer_rejections if overload else 0,
        queue_depth_peak=overload.queue_depth_peak if overload else 0,
        saga_started=saga.stats.started if saga is not None else 0,
        saga_half_committed=(
            saga.stats.half_committed if saga is not None else 0
        ),
        sim_time=network.env.now,
    )


def run_scenario_suite(
    name: str,
    seeds,
    system: str = "fabric",
    max_convergence_rounds: int = 40,
) -> List[ScenarioReport]:
    """Run :func:`run_scenario` for every seed, in order."""
    return [
        run_scenario(
            name,
            seed,
            system=system,
            max_convergence_rounds=max_convergence_rounds,
        )
        for seed in seeds
    ]
