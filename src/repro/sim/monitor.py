"""Periodic sampling of simulation state (queues, CPU, backlog).

A :class:`Sampler` polls registered probes at a fixed simulated interval
and keeps the time series, turning the DES into an observable system:
where do queues build, which resource saturates first, how does the
orderer backlog breathe with each block cut. The bottleneck-analysis
example and the network's ``attach_sampler`` use it.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.trace.tracer import Tracer


class Sampler:
    """Samples named probes every ``interval`` simulated seconds.

    A probe that raises (e.g. one probing a peer that has crashed under a
    fault schedule) does not kill the sampler: the failing probe's value
    is skipped for that tick, the error is counted in ``probe_errors``
    and logged in ``error_log``, and sampling continues — pinned by
    ``tests/sim/test_monitor.py``.

    Passing a :class:`~repro.trace.tracer.Tracer` forwards every sampled
    value as a counter on the trace timeline, so queue depths render
    under the pipeline spans in the Chrome trace.
    """

    def __init__(
        self,
        env: Environment,
        interval: float = 0.1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("sampling interval must be > 0")
        self.env = env
        self.interval = interval
        self.tracer = tracer
        self._probes: Dict[str, Callable[[], float]] = {}
        #: One dict per tick: {"t": time, probe_name: value, ...}.
        self.samples: List[Dict[str, float]] = []
        #: Errors raised by each probe while sampling (skip-and-record).
        self.probe_errors: Dict[str, int] = {}
        #: First few recorded failures: (time, probe name, error repr).
        self.error_log: List[tuple] = []
        self._started = False

    def watch(self, name: str, probe: Callable[[], float]) -> None:
        """Register ``probe`` under ``name``; it is called at every tick."""
        if name in self._probes:
            raise SimulationError(f"probe {name!r} already registered")
        self._probes[name] = probe

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._run(), name="sampler")

    def _run(self) -> Generator:
        while True:
            yield self.interval  # bare-delay sleep
            tick: Dict[str, float] = {"t": self.env.now}
            for name, probe in self._probes.items():
                try:
                    value = float(probe())
                except Exception as error:
                    # Skip-and-record: a dead probe must not silently
                    # kill observation of every *other* probe mid-run.
                    self.probe_errors[name] = self.probe_errors.get(name, 0) + 1
                    if len(self.error_log) < 100:
                        self.error_log.append((self.env.now, name, repr(error)))
                    continue
                tick[name] = value
                if self.tracer is not None:
                    self.tracer.counter(name, value, t=self.env.now)
            self.samples.append(tick)

    # -- analysis helpers ----------------------------------------------------

    def series(self, name: str) -> List[float]:
        """The sampled values of one probe, in time order."""
        return [tick[name] for tick in self.samples if name in tick]

    def peak(self, name: str) -> float:
        """Maximum sampled value of ``name`` (0 if never sampled)."""
        values = self.series(name)
        return max(values) if values else 0.0

    def average(self, name: str) -> float:
        """Mean sampled value of ``name`` (0 if never sampled)."""
        values = self.series(name)
        return sum(values) / len(values) if values else 0.0

    def summary(self) -> List[Dict[str, object]]:
        """Average and peak per probe, sorted by average descending."""
        rows = [
            {
                "probe": name,
                "avg": round(self.average(name), 2),
                "peak": round(self.peak(name), 2),
            }
            for name in self._probes
        ]
        rows.sort(key=lambda row: row["avg"], reverse=True)
        return rows


def attach_network_probes(sampler: Sampler, network) -> None:
    """Wire the standard probes of a :class:`FabricNetwork`.

    Per peer: CPU slots in use and CPU queue length. Per channel: the
    orderer's pending batch size and each peer's undelivered block count.
    """
    for peer in network.peers:
        sampler.watch(f"{peer.name}.cpu_busy", lambda p=peer: p.cpu.in_use)
        sampler.watch(
            f"{peer.name}.cpu_queue", lambda p=peer: p.cpu.queue_length
        )
    for channel, orderer in network.orderers.items():
        sampler.watch(
            f"orderer.{channel}.batch", lambda o=orderer: len(o._cutter)
        )
        sampler.watch(
            f"orderer.{channel}.inbox", lambda o=orderer: len(o.incoming)
        )
    reference = network.reference_peer
    for channel in network.channels:
        sampler.watch(
            f"{reference.name}.{channel}.block_queue",
            lambda pcs=reference.channels[channel]: len(pcs.incoming_blocks),
        )
