"""Contended resources and FIFO stores for the DES engine.

:class:`Resource` models a peer's CPU: a counting semaphore with a FIFO
wait queue. When more work (endorsement simulations, block validations)
arrives than the capacity can serve, requests queue up and simulated
latency grows — which is exactly how competing channels and clients degrade
each other in the paper's scaling experiments (Figure 11).

:class:`Store` is an unbounded FIFO queue used as a mailbox between
pipeline stages (client -> orderer -> peers).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Generator, List

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class Resource:
    """A counting semaphore with priority + FIFO granting order.

    Lower ``priority`` values are served first; ties resolve in request
    order. A peer's CPU uses two bands: block validation requests at
    priority 0 and endorsement simulations at a lower priority — real
    peers run the two stages in separate worker pools, so a flood of
    endorsement requests delays validation but cannot starve it outright.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[tuple] = []
        self._sequence = 0
        # Busy-time integral (slot-seconds of ∫ in_use dt), pure
        # bookkeeping for utilisation reports: accumulated lazily at every
        # occupancy change, so it never schedules or reorders events.
        self._busy_integral = 0.0
        self._busy_marked_at = env.now

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def busy_time(self) -> float:
        """Slot-seconds of granted occupancy so far (∫ in_use dt).

        Divide by elapsed time (and capacity) for utilisation; the
        integral is exact at the current simulated instant.
        """
        return self._busy_integral + self._in_use * (
            self.env.now - self._busy_marked_at
        )

    def _mark_occupancy(self) -> None:
        """Fold occupancy since the last change into the busy integral."""
        now = self.env.now
        self._busy_integral += self._in_use * (now - self._busy_marked_at)
        self._busy_marked_at = now

    def request(self, priority: int = 0) -> Event:
        """Return an event that fires when a slot is granted.

        The caller owns the slot once the event fires and must call
        :meth:`release` when done (or use :meth:`use`).
        """
        # Grant construction and (on the uncontended path) its succeed()
        # are inlined — request/release dominate the modelled pipelines,
        # and resources live inside repro.sim, so they may touch Event
        # internals.
        env = self.env
        grant = Event.__new__(Event)
        grant.env = env
        grant._proc = None
        grant._cb = None
        grant._cbs = None
        grant._value = None
        grant._exception = None
        grant.processed = False
        if self._in_use < self.capacity:
            in_use = self._in_use
            now = env.now
            self._busy_integral += in_use * (now - self._busy_marked_at)
            self._busy_marked_at = now
            self._in_use = in_use + 1
            grant.triggered = True
            env._pending.append(grant)
        else:
            grant.triggered = False
            self._sequence += 1
            heapq.heappush(self._waiters, (priority, self._sequence, grant))
        return grant

    def release(self) -> None:
        """Give a slot back, waking the best-priority waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter; _in_use is
            # unchanged because ownership transfers. The grant is a
            # private, untriggered event, so succeed() is inlined
            # without the already-triggered guard.
            grant = heapq.heappop(self._waiters)[2]
            grant.triggered = True
            self.env._pending.append(grant)
        else:
            self._mark_occupancy()
            self._in_use -= 1

    def use(self, duration: float, priority: int = 0) -> Generator:
        """Process helper: acquire, hold for ``duration``, release.

        Usage inside a process::

            yield from cpu.use(0.003)   # 3 ms of CPU work
        """
        yield self.request(priority)
        try:
            # Bare-delay sleep: same scheduling position as a timeout.
            yield duration
        finally:
            self.release()


class RWLock:
    """A readers-writer lock with writer preference once a writer waits.

    Vanilla Fabric guards the current state with exactly this: chaincode
    simulations share a read lock, while block validation needs the
    exclusive write lock (paper Section 4.2.1) — so a long simulation
    delays validation and vice versa. Fabric++ removes the lock entirely
    (Section 5.2.1); peers simply skip acquiring it.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._readers = 0
        self._writer_active = False
        self._waiting_writers: Deque[Event] = deque()
        self._waiting_readers: Deque[Event] = deque()

    @property
    def readers(self) -> int:
        """Number of read locks currently held."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        """True while the exclusive write lock is held."""
        return self._writer_active

    def acquire_read(self) -> Event:
        """Return an event that fires once a shared read lock is granted."""
        grant = self.env.event()
        if not self._writer_active and not self._waiting_writers:
            self._readers += 1
            grant.succeed()
        else:
            self._waiting_readers.append(grant)
        return grant

    def release_read(self) -> None:
        """Release one shared read lock."""
        if self._readers <= 0:
            raise SimulationError("release_read() without a held read lock")
        self._readers -= 1
        self._dispatch()

    def acquire_write(self) -> Event:
        """Return an event that fires once the exclusive lock is granted."""
        grant = self.env.event()
        if not self._writer_active and self._readers == 0:
            self._writer_active = True
            grant.succeed()
        else:
            self._waiting_writers.append(grant)
        return grant

    def release_write(self) -> None:
        """Release the exclusive write lock."""
        if not self._writer_active:
            raise SimulationError("release_write() without the write lock")
        self._writer_active = False
        self._dispatch()

    def _dispatch(self) -> None:
        if self._writer_active or self._readers > 0:
            if self._readers > 0 and not self._writer_active:
                pass  # readers still active; writers must keep waiting
            return
        if self._waiting_writers:
            self._writer_active = True
            self._waiting_writers.popleft().succeed()
            return
        while self._waiting_readers:
            self._readers += 1
            self._waiting_readers.popleft().succeed()


class Store:
    """An unbounded FIFO queue of items with blocking gets."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Add ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        token = self.env.event()
        if self._items:
            token.succeed(self._items.popleft())
        else:
            self._getters.append(token)
        return token

    def drain(self) -> List[object]:
        """Remove and return all currently queued items (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        return items
