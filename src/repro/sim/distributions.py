"""Seeded random distributions for workload generation.

The Smallbank experiments select accounts with a Zipfian distribution
parameterised by an ``s-value`` (paper Table 6: 0.0 — uniform — up to 2.0,
highly skewed). :class:`ZipfSampler` implements inverse-CDF sampling over a
finite population, matching that parameterisation: item ``i`` (1-based) has
probability proportional to ``1 / i**s``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

#: Constants of the frozen seed-mixing function below (xxHash primes).
_MASK64 = (1 << 64) - 1
_XXPRIME_1 = 11400714785074694791
_XXPRIME_2 = 14029467366897019727
_XXPRIME_5 = 2870177450012600261
#: Mersenne prime 2**61 - 1 used to fold each part onto the hash field.
_HASH_MODULUS = (1 << 61) - 1


def mix_seed(*parts: int) -> int:
    """Mix integer parts into one 31-bit stream seed, deterministically.

    Client RNG streams used to be derived with ``hash((seed, channel,
    client))``: stable for pure-integer tuples, but one string slipping
    into that tuple would have silently made every run depend on
    ``PYTHONHASHSEED``. This function replaces it with an explicit mix
    that (a) accepts only integers — anything else raises ``TypeError``
    instead of degrading determinism — and (b) is a frozen re-statement
    of CPython's integer-tuple hashing (the xxHash-based combiner of
    3.8+), so the streams every golden hash was captured under are
    preserved bit-for-bit. The algorithm is pinned *here*, in this
    repository, and must never be re-synced against the interpreter:
    golden tests pin its outputs directly.
    """
    acc = _XXPRIME_5
    for part in parts:
        if isinstance(part, bool) or not isinstance(part, int):
            raise TypeError(
                f"mix_seed() parts must be plain ints, got {part!r}"
            )
        # CPython's long_hash: reduce modulo 2**61-1, keep the sign,
        # then map -1 to -2; the combiner consumes the 64-bit pattern.
        lane = part % _HASH_MODULUS if part >= 0 else -((-part) % _HASH_MODULUS)
        if lane == -1:
            lane = -2
        acc = (acc + (lane & _MASK64) * _XXPRIME_2) & _MASK64
        acc = ((acc << 31) | (acc >> 33)) & _MASK64
        acc = (acc * _XXPRIME_1) & _MASK64
    acc = (acc + (len(parts) ^ (_XXPRIME_5 ^ 3527539))) & _MASK64
    if acc == _MASK64:
        acc = 1546275796
    return acc & 0x7FFFFFFF


class Rng:
    """A seeded random source shared by a workload generator.

    Thin wrapper around :mod:`random` that keeps all draws on one stream,
    so a benchmark run is reproducible from a single integer seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, items: Sequence) -> object:
        """Uniform choice from ``items``."""
        return self._random.choice(items)

    def shuffle(self, items: List) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def sample_distinct(self, population: int, count: int) -> List[int]:
        """Sample ``count`` distinct integers from range(population)."""
        return self._random.sample(range(population), count)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        return self._random.expovariate(1.0 / mean)

    def getstate(self) -> tuple:
        """The underlying generator state (checkpoint digests/snapshots)."""
        return self._random.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured with :meth:`getstate`."""
        self._random.setstate(state)


class ZipfSampler:
    """Zipf(s) sampling over a finite population via the inverse CDF.

    ``s = 0`` degenerates to the uniform distribution, matching the
    paper's note that "an s-value of 0 corresponds to a uniform
    distribution". Ranks are mapped onto population indices by a fixed
    seeded permutation so that "popular" items are spread across the key
    space rather than clustered at low indices.
    """

    def __init__(self, population: int, s_value: float, rng: Optional[Rng] = None) -> None:
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        if s_value < 0:
            raise ValueError(f"s-value must be >= 0, got {s_value}")
        self.population = population
        self.s_value = s_value
        self._rng = rng or Rng(0)
        if s_value == 0:
            self._cdf: Optional[List[float]] = None
        else:
            weights = [1.0 / (rank ** s_value) for rank in range(1, population + 1)]
            total = sum(weights)
            self._cdf = list(itertools.accumulate(w / total for w in weights))
            # Guard against floating-point undershoot at the tail.
            self._cdf[-1] = 1.0
        permutation = list(range(population))
        random.Random(self._rng.seed ^ 0x5BF03635).shuffle(permutation)
        self._rank_to_index = permutation

    def sample(self) -> int:
        """Draw one index in ``range(population)``."""
        if self._cdf is None:
            rank = self._rng.randint(0, self.population - 1)
        else:
            rank = bisect.bisect_left(self._cdf, self._rng.random())
        return self._rank_to_index[rank]

    def probability_of_rank(self, rank: int) -> float:
        """Return P(rank) for the 0-based ``rank`` (testing helper)."""
        if self._cdf is None:
            return 1.0 / self.population
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous
