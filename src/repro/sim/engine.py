"""Core event loop, events, timeouts, processes, and combinators.

A process is a Python generator that yields :class:`Event` objects — or
a bare delay in seconds (``yield 0.004``) for a plain sleep; the
environment resumes it with the event's value once the event fires. A
process is itself an event that fires when the generator returns, so
processes can wait on each other (fork/join). :class:`AllOf` and
:class:`AnyOf` (also spelled ``ev1 & ev2`` / ``ev1 | ev2``) compose
events into joins and races.

The scheduler keeps two structures: a binary heap of bare
``(time, sequence, event)`` tuples for *future* events, and a plain FIFO
deque for *same-instant* events (``succeed``/``fail``/``timeout(0)``),
which skips the heap — and its tuple allocation — entirely. Together
they replay events in strict ``(time, sequence)`` order, giving
deterministic FIFO behaviour among simultaneous events; every golden
metrics hash in the test suite depends on this ordering.

Hot-path design (see ``docs/engine.md`` for the full contract):

- **Bare-delay sleeps.** ``yield 0.004`` — a plain float or int — is
  the allocation-free spelling of a value-less sleep: the *process
  itself* becomes the heap entry ``(time, seq, process)`` and the
  dispatcher resumes its generator directly. No event object exists at
  any point. ``yield env.timeout(d)`` allocates its sequence number at
  the ``timeout()`` call and ``yield d`` at the dispatch of the yield,
  which is the same scheduling position — so the two spellings replay
  identically and golden hashes do not care which one a model uses.
  Interrupting a bare-delay sleep invalidates a wake token
  (``Process._wake``); the orphaned heap entry is skipped as stale.
- **Pooled timeouts.** ``env.timeout()`` — sleeps that carry a value or
  feed a combinator — reuses :class:`Timeout` objects from a free list.
  A fired timeout whose only consumer was the process that yielded it is
  recycled immediately, so steady-state sleeping allocates nothing but
  the heap tuple. Consequence: do not retain a fired ``Timeout`` object;
  keep the value the ``yield`` returned instead.
- **Same-instant deque.** Triggering an event never touches the heap:
  the event is appended to the pending deque and drained FIFO once every
  heap entry at the current instant (which was scheduled earlier, i.e.
  with a smaller sequence number) has fired. Fire-chains of zero-delay
  handoffs — endorsement replies, combinator resolutions, process
  completions — cost one ``append``/``popleft`` pair per event.
- **Single-slot callbacks.** Most events have exactly one waiter, so the
  first callback lives in a plain attribute (``_cb``) and only the rare
  second-and-later waiters allocate an overflow list (``_cbs``).
- **Direct process resume.** A process yielding a fresh timeout is
  stored in the timeout's ``_proc`` slot; the ``run()`` loop resumes the
  generator inline, with no callback object and no intermediate call.
- **Batched same-instant wakeups.** ``run()`` drains every event that
  shares the current timestamp in one inner loop, re-checking the
  ``until`` horizon (and the trace hook) once per distinct instant
  rather than once per event.
- **O(1) trace hook.** When no hook is installed the dispatcher pays a
  single ``is not None`` test; installing one never changes the
  schedule (observation only).

Scheduling-order invariants the optimisations must preserve (the golden
hashes pin them): ``succeed``/``fail`` always *schedule* the event at
the current instant (callbacks never run synchronously from the
trigger), heap entries carry sequence numbers allocated in call order
and fire in strict ``(time, sequence)`` order, and same-instant events
fire in trigger order (deque position — they need no sequence numbers,
and ``_sequence`` counts only heap entries). This replays exactly the
strict ``(time, schedule-call)`` total order of the pre-overhaul
engine, because heap entries at the current instant always predate —
and therefore out-rank — everything appended while that instant is
being processed.
"""

from __future__ import annotations

import warnings
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError


class Event:
    """Something that will happen at a point in simulated time.

    Callbacks attached via the internal :meth:`_attach` run when the
    event fires. An event fires at most once; ``succeed``/``fail``
    schedule it for the current instant. Events compose: ``a & b`` waits
    for both (:class:`AllOf`), ``a | b`` for the first (:class:`AnyOf`).
    """

    __slots__ = (
        "env",
        "_proc",
        "_cb",
        "_cbs",
        "_value",
        "_exception",
        "triggered",
        "processed",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Sole waiting process, resumed inline by the dispatcher with no
        #: callback object at all (the dominant single-waiter case).
        self._proc: Optional["Process"] = None
        #: First callback; overflow goes to ``_cbs``.
        self._cb: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None
        self._value: object = None
        self._exception: Optional[BaseException] = None
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> object:
        """The value the event fired with."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event failed with, if any."""
        return self._exception

    def succeed(self, value: object = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.env._pending.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire now by raising ``exception``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._exception = exception
        self.env._pending.append(self)
        return self

    # -- waiter wiring (internal) -------------------------------------------

    def _attach(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.processed:
            callback(self)
        elif self._cb is None:
            self._cb = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)

    def _detach(self, callback: Callable[["Event"], None]) -> None:
        """Remove one occurrence of ``callback``, preserving the order of
        the remaining waiters (interrupt support)."""
        if self._cb == callback:
            cbs = self._cbs
            if cbs:
                self._cb = cbs.pop(0)
            else:
                self._cb = None
        elif self._cbs is not None:
            try:
                self._cbs.remove(callback)
            except ValueError:  # pragma: no cover - defensive
                pass

    def _fire(self) -> None:
        """Run all attached callbacks (dispatcher path for plain events)."""
        self.processed = True
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
        cbs = self._cbs
        if cbs is not None:
            self._cbs = None
            for cb in cbs:
                cb(self)

    # -- deprecated public spelling -----------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Deprecated: wire waiters through processes or combinators.

        Kept for one release so external scripts written against the old
        engine keep running; internal code must use combinators (or the
        private :meth:`_attach`).
        """
        warnings.warn(
            "Event.add_callback is deprecated; wait on events from a "
            "process, or compose them with AllOf/AnyOf ('&'/'|')",
            DeprecationWarning,
            stacklevel=2,
        )
        self._attach(callback)

    # -- combinator operators ------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        """``a & b``: an event that fires once both have fired."""
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        """``a | b``: an event that fires with the first of the two."""
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Instances are pooled: once fired with no waiter other than the
    process that yielded them, they return to the environment's free
    list and are reused by later ``env.timeout()`` calls. Hold on to the
    *value* a ``yield env.timeout(...)`` returns, never to the fired
    timeout object itself.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.triggered = True
        self._value = value
        if delay == 0.0:
            env._pending.append(self)
        else:
            env._sequence = sequence = env._sequence + 1
            heappush(env._queue, (env.now + delay, sequence, self))


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; fires (as an event) when the generator ends."""

    __slots__ = ("_generator", "_send", "_waiting_on", "_wake", "_name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        # Field init is inlined (no super().__init__ call): processes are
        # created per endorsement fan-out, so construction is hot. The
        # bootstrap is the process itself appended to the same-instant
        # deque: an untriggered Process in the deque means "first resume"
        # (a triggered one is a completion event) — one schedule entry,
        # no bootstrap event object.
        self.env = env
        self._proc = None
        self._cb = None
        self._cbs = None
        self._value = None
        self._exception = None
        self.triggered = False
        self.processed = False
        self._generator = generator
        #: Bound ``generator.send`` (skips one attribute lookup per resume).
        self._send = generator.send
        self._waiting_on: Optional[Event] = None
        #: Sequence number of the outstanding bare-delay sleep, if any.
        #: A heap entry whose sequence no longer matches is stale (the
        #: sleep was interrupted) and is skipped by the dispatcher.
        self._wake: Optional[int] = None
        self._name = name
        env._pending.append(self)

    @property
    def name(self) -> str:
        """Process name for traces and error messages (lazy: the
        generator's ``__name__`` unless one was passed in)."""
        return self._name or getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached; it may still
        fire later but will no longer resume this process.
        """
        if self.triggered:
            return
        waiting_on = self._waiting_on
        if waiting_on is not None:
            if waiting_on._proc is self:
                waiting_on._proc = None
            else:
                waiting_on._detach(self._resume)
            self._waiting_on = None
        else:
            # Sleeping on a bare delay: invalidate the wake token so the
            # heap entry (which cannot be removed cheaply) is skipped as
            # stale when it surfaces.
            self._wake = None
        poke = Event(self.env)
        poke.succeed()
        poke._attach(lambda _event: self._throw(Interrupt(cause)))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        exception = event._exception
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return
        cls = target.__class__
        if cls is float or cls is int:
            # Bare-delay sleep: no Timeout object at all.
            self._sleep(target)
            return
        # Fast path: an unprocessed event of this environment with no
        # other waiter resumes this generator directly, no callback.
        if (
            isinstance(target, Event)
            and not target.processed
            and target._proc is None
            and target._cb is None
            and target.env is self.env
        ):
            target._proc = self
            self._waiting_on = target
            return
        self._wait_on(target)

    def _resume_direct(self) -> None:
        """Resume the generator with ``None`` — bootstrap (first resume)
        or bare-delay sleep expiry (``step()`` path; ``run()`` inlines
        this)."""
        try:
            target = self._send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return
        cls = target.__class__
        if cls is float or cls is int:
            self._sleep(target)
            return
        if (
            isinstance(target, Event)
            and not target.processed
            and target._proc is None
            and target._cb is None
            and target.env is self.env
        ):
            target._proc = self
            self._waiting_on = target
            return
        self._wait_on(target)

    def _sleep(self, delay: float) -> None:
        """Suspend until ``delay`` simulated seconds from now.

        The allocation-free sleep path behind ``yield <delay>``: the
        process itself is scheduled as the heap entry — no event object
        is created. ``self._wake`` records the entry's sequence number;
        :meth:`interrupt` cancels the sleep by clearing it, leaving a
        stale heap entry the dispatcher skips.
        """
        env = self.env
        if delay > 0:
            env._sequence = sequence = env._sequence + 1
            heappush(env._queue, (env.now + delay, sequence, self))
            self._wake = sequence
            return
        if delay == 0:
            # Zero-delay sleeps ride a pooled timeout through the
            # same-instant deque (processes never sit in the deque:
            # there they would be mistaken for completion events).
            pool = env._timeout_pool
            if pool:
                tick = pool.pop()
                tick.processed = False
            else:
                tick = Timeout.__new__(Timeout)
                tick.env = env
                tick._cb = None
                tick._cbs = None
                tick._value = None
                tick._exception = None
                tick.triggered = True
                tick.processed = False
            tick._proc = self
            self._waiting_on = tick
            env._pending.append(tick)
            return
        # Negative delay: thrown back into the generator like any other
        # yield misuse.
        try:
            target = self._generator.throw(
                SimulationError(f"negative sleep delay: {delay!r}")
            )
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:
            self.fail(raised)
            return
        self._wait_on(target)

    def _wait_on(self, target: object) -> None:
        # Misuse (yielding a non-event or a foreign event) is thrown back
        # into the generator; if it does not handle the error, the process
        # fails like any other uncaught exception.
        while True:
            cls = target.__class__
            if cls is float or cls is int:
                self._sleep(target)
                return
            if isinstance(target, Event) and target.env is self.env:
                break
            if isinstance(target, Event):
                error = SimulationError(
                    "event belongs to a different environment"
                )
            else:
                error = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
            try:
                target = self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as raised:
                self.fail(raised)
                return
        self._waiting_on = target
        if not target.processed and target._proc is None and target._cb is None:
            target._proc = self
        else:
            target._attach(self._resume)


class AllOf(Event):
    """Fires once every member event has fired; its value is the list of
    member values in member order (``a & b`` builds one).

    If any member fails, the join fails immediately with that member's
    exception — remaining members keep running but no longer resolve
    this combinator.
    """

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        members = list(events)
        self.events = members
        #: Members that have not fired yet.
        self._count = len(members)
        if self._count == 0:
            self.succeed([])
            return
        # One shared callback per member — member values are collected in
        # one pass when the last member fires, so no per-member closure.
        # The attach is inlined (see Event._attach) for construction speed.
        check = self._check
        for event in members:
            if event.env is not env:
                raise SimulationError(
                    "AllOf member is not an event of this environment"
                )
            if event.processed:
                check(event)
            elif event._cb is None:
                event._cb = check
            elif event._cbs is None:
                event._cbs = [check]
            else:
                event._cbs.append(check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            # One member failed: the join fails with its error.
            self.fail(event._exception)
            return
        self._count -= 1
        if self._count == 0:
            self.succeed([member._value for member in self.events])

    def __and__(self, other: Event) -> "AllOf":
        """Flatten ``(a & b) & c`` into one three-member join."""
        if self.triggered:
            return AllOf(self.env, [self, other])
        return AllOf(self.env, [*self.events, other])


class AnyOf(Event):
    """Fires with the value of the first member event to fire (``a | b``
    builds one); later firings are ignored.

    :attr:`first_index` / :attr:`first_event` identify the winner. If
    the first member to fire failed, the race fails with its exception.
    """

    __slots__ = ("events", "first_index")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        members = list(events)
        if not members:
            raise SimulationError("AnyOf requires at least one event")
        self.events = members
        #: Index of the member that fired first (None until then).
        self.first_index: Optional[int] = None
        check = self._check
        for event in members:
            if event.env is not env:
                raise SimulationError(
                    "AnyOf member is not an event of this environment"
                )
            if event.processed:
                check(event)
            elif event._cb is None:
                event._cb = check
            elif event._cbs is None:
                event._cbs = [check]
            else:
                event._cbs.append(check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self.first_index = self.events.index(event)
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    @property
    def first_event(self) -> Optional[Event]:
        """The member event that won the race (None before the firing)."""
        if self.first_index is None:
            return None
        return self.events[self.first_index]

    def __or__(self, other: Event) -> "AnyOf":
        """Flatten ``(a | b) | c`` into one three-member race."""
        if self.triggered:
            return AnyOf(self.env, [self, other])
        return AnyOf(self.env, [*self.events, other])


class Environment:
    """The simulation clock and event queue.

    ``now`` is a plain attribute for read speed; treat it as read-only —
    only the event loop advances the clock.
    """

    __slots__ = ("now", "_queue", "_pending", "_sequence", "_trace_hook", "_timeout_pool")

    def __init__(self) -> None:
        #: Current simulated time in seconds (read-only).
        self.now = 0.0
        #: Future events: a heap of ``(time, sequence, event)``.
        self._queue: List[tuple] = []
        #: Same-instant events, drained FIFO after the heap entries that
        #: share the current timestamp (which always have smaller
        #: sequence numbers — see the module docstring).
        self._pending: deque = deque()
        self._sequence = 0
        self._trace_hook: Optional[Callable[[float, Event], None]] = None
        #: Free list of fired, consumer-less Timeout objects.
        self._timeout_pool: List[Timeout] = []

    def set_trace_hook(
        self, hook: Optional[Callable[[float, Event], None]]
    ) -> None:
        """Install an observer called as ``hook(time, event)`` for every
        processed event. For a bare-delay sleep expiry the ``event``
        argument is the :class:`Process` being woken (there is no event
        object on that path). Observation only: the hook must not
        schedule events or mutate simulation state, so a hooked run is
        bit-identical to an unhooked one. Installing a hook from inside
        a running simulation takes effect at the next distinct
        timestamp."""
        self._trace_hook = hook

    # -- factory helpers -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        # Inlined field init (no __init__ dispatch): gates are created per
        # transaction, so construction is hot.
        event = Event.__new__(Event)
        event.env = self
        event._proc = None
        event._cb = None
        event._cbs = None
        event._value = None
        event._exception = None
        event.triggered = False
        event.processed = False
        return event

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._value = value
            timeout.processed = False
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout._cb = None
            timeout._cbs = None
            timeout._exception = None
            timeout._value = value
            timeout.triggered = True
            timeout.processed = False
            timeout._proc = None
        if delay == 0.0:
            self._pending.append(timeout)
        else:
            self._sequence = sequence = self._sequence + 1
            heappush(self._queue, (self.now + delay, sequence, timeout))
        return timeout

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start ``generator`` as a process."""
        # Inlined Process.__init__ (kept in sync with it): processes are
        # spawned per endorsement fan-out, so construction is hot.
        proc = Process.__new__(Process)
        proc.env = self
        proc._proc = None
        proc._cb = None
        proc._cbs = None
        proc._value = None
        proc._exception = None
        proc.triggered = False
        proc.processed = False
        proc._generator = generator
        proc._send = generator.send
        proc._waiting_on = None
        proc._wake = None
        proc._name = name
        self._pending.append(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires once every event in ``events`` has; its
        value is the list of member values in member order."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires with the value of the first member of
        ``events`` to fire; inspect ``.first_index`` / ``.first_event``
        for the winner."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        """Fire one popped event (kept in sync with the inlined loop in
        :meth:`run`)."""
        event.processed = True
        proc = event._proc
        if proc is not None:
            event._proc = None
            proc._resume(event)
        if event._cb is not None or event._cbs is not None:
            event._fire()
        elif event.__class__ is Timeout:
            # No other consumer: recycle into the free list.
            event._value = None
            self._timeout_pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`SimulationError` when the schedule is empty (the
        ``run``/``step`` boundary contract pinned by the engine tests).
        Stale heap entries — bare-delay sleeps whose process was
        interrupted — are skipped, not counted as a step.
        """
        queue = self._queue
        pending = self._pending
        while True:
            sequence = None
            if queue and queue[0][0] == self.now:
                time, sequence, event = heappop(queue)
            elif pending:
                time, event = self.now, pending.popleft()
            elif queue:
                time, sequence, event = heappop(queue)
                self.now = time
            else:
                raise SimulationError("step() on an empty schedule")
            if event.__class__ is Process:
                if sequence is not None:
                    # Heap entries holding a Process are bare-delay sleep
                    # wakeups (completions travel through the deque).
                    if event._wake != sequence:
                        continue  # interrupted sleep: stale entry
                    hook = self._trace_hook
                    if hook is not None:
                        hook(time, event)
                    event._resume_direct()
                    return
                if not event.triggered:
                    # Deque entry, not yet triggered: process bootstrap.
                    hook = self._trace_hook
                    if hook is not None:
                        hook(time, event)
                    event._resume_direct()
                    return
            hook = self._trace_hook
            if hook is not None:
                hook(time, event)
            self._dispatch(event)
            return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        Boundary contract (pinned by ``tests/sim/test_run_until_boundary``):
        events scheduled exactly *at* ``until`` are processed — including
        ones first scheduled while handling that instant — and the clock
        ends at ``until`` even if the queue drained earlier.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run into the past")
        queue = self._queue
        pending = self._pending
        pool = self._timeout_pool
        timeout_class = Timeout
        process_class = Process
        float_class = float
        int_class = int
        pop = heappop
        push = heappush
        popleft = pending.popleft
        append = pending.append
        # +inf sentinel keeps the horizon test a single float compare.
        horizon = float("inf") if until is None else until
        # The hook is latched per run() call: installing one from inside
        # a running simulation takes effect on the next run()/step().
        hook = self._trace_hook
        time = self.now
        while True:
            # Phase 1: heap entries at the current instant. These were
            # all scheduled before this instant began, so their sequence
            # numbers precede anything appended to the deque while the
            # instant is handled. The dispatch body below mirrors
            # step()/_dispatch, inlined — with the generator resume for
            # the dominant timeout-with-waiting-process case folded in.
            while queue and queue[0][0] == time:
                _, seq, event = pop(queue)
                if event.__class__ is process_class:
                    # Bare-delay sleep expiry: the process itself is the
                    # heap entry — resume the generator with None, with
                    # no event object anywhere on the path.
                    proc = event
                    if proc._wake != seq:
                        continue  # interrupted sleep: stale entry
                    if hook is not None:
                        hook(time, proc)
                    try:
                        target = proc._send(None)
                    except StopIteration as stop:
                        # Inlined succeed(): the engine is the sole
                        # completer of a process, so no triggered guard.
                        proc.triggered = True
                        proc._value = stop.value
                        append(proc)
                    except BaseException as error:
                        proc.fail(error)
                    else:
                        tcls = target.__class__
                        if (
                            (tcls is float_class or tcls is int_class)
                            and target > 0
                        ):
                            self._sequence = seq = self._sequence + 1
                            push(queue, (time + target, seq, proc))
                            proc._wake = seq
                        elif (
                            isinstance(target, Event)
                            and not target.processed
                            and target._proc is None
                            and target._cb is None
                            and target.env is self
                        ):
                            target._proc = proc
                            proc._waiting_on = target
                        else:
                            proc._wait_on(target)
                    continue
                if hook is not None:
                    hook(time, event)
                event.processed = True
                proc = event._proc
                if proc is not None:
                    event._proc = None
                    exc = event._exception
                    try:
                        if exc is None:
                            target = proc._send(event._value)
                        else:
                            target = proc._generator.throw(exc)
                    except StopIteration as stop:
                        proc.triggered = True
                        proc._value = stop.value
                        proc._waiting_on = None
                        append(proc)
                    except BaseException as error:
                        proc._waiting_on = None
                        proc.fail(error)
                    else:
                        tcls = target.__class__
                        if (
                            (tcls is float_class or tcls is int_class)
                            and target > 0
                        ):
                            self._sequence = seq = self._sequence + 1
                            push(queue, (time + target, seq, proc))
                            proc._wake = seq
                            proc._waiting_on = None
                        elif (
                            isinstance(target, Event)
                            and not target.processed
                            and target._proc is None
                            and target._cb is None
                            and target.env is self
                        ):
                            target._proc = proc
                            proc._waiting_on = target
                        else:
                            proc._wait_on(target)
                cb = event._cb
                if cb is not None:
                    event._cb = None
                    cb(event)
                    cbs = event._cbs
                    if cbs is not None:
                        event._cbs = None
                        for cb in cbs:
                            cb(event)
                elif event._cbs is not None:
                    event._fire()
                elif event.__class__ is timeout_class:
                    event._value = None
                    pool.append(event)
            # Phase 2: same-instant arrivals, FIFO. Handlers may append
            # more (zero-delay chains); they drain in this same loop.
            # They cannot add heap entries at this instant (delays are
            # strictly positive on the heap path), so phase 1 never needs
            # revisiting.
            while pending:
                event = popleft()
                if event.__class__ is process_class and not event.triggered:
                    # Bootstrap: first resume of a just-created process.
                    # (A triggered Process in the deque is its completion
                    # event and falls through to the normal dispatch.)
                    proc = event
                    if hook is not None:
                        hook(time, proc)
                    try:
                        target = proc._send(None)
                    except StopIteration as stop:
                        proc.triggered = True
                        proc._value = stop.value
                        append(proc)
                    except BaseException as error:
                        proc.fail(error)
                    else:
                        tcls = target.__class__
                        if (
                            (tcls is float_class or tcls is int_class)
                            and target > 0
                        ):
                            self._sequence = seq = self._sequence + 1
                            push(queue, (time + target, seq, proc))
                            proc._wake = seq
                        elif (
                            isinstance(target, Event)
                            and not target.processed
                            and target._proc is None
                            and target._cb is None
                            and target.env is self
                        ):
                            target._proc = proc
                            proc._waiting_on = target
                        else:
                            proc._wait_on(target)
                    continue
                if hook is not None:
                    hook(time, event)
                event.processed = True
                proc = event._proc
                if proc is not None:
                    event._proc = None
                    exc = event._exception
                    try:
                        if exc is None:
                            target = proc._send(event._value)
                        else:
                            target = proc._generator.throw(exc)
                    except StopIteration as stop:
                        proc.triggered = True
                        proc._value = stop.value
                        proc._waiting_on = None
                        append(proc)
                    except BaseException as error:
                        proc._waiting_on = None
                        proc.fail(error)
                    else:
                        tcls = target.__class__
                        if (
                            (tcls is float_class or tcls is int_class)
                            and target > 0
                        ):
                            self._sequence = seq = self._sequence + 1
                            push(queue, (time + target, seq, proc))
                            proc._wake = seq
                            proc._waiting_on = None
                        elif (
                            isinstance(target, Event)
                            and not target.processed
                            and target._proc is None
                            and target._cb is None
                            and target.env is self
                        ):
                            target._proc = proc
                            proc._waiting_on = target
                        else:
                            proc._wait_on(target)
                cb = event._cb
                if cb is not None:
                    event._cb = None
                    cb(event)
                    cbs = event._cbs
                    if cbs is not None:
                        event._cbs = None
                        for cb in cbs:
                            cb(event)
                elif event._cbs is not None:
                    event._fire()
                elif event.__class__ is timeout_class:
                    event._value = None
                    pool.append(event)
            # Instant fully drained: advance to the next scheduled time.
            if not queue:
                break
            time = queue[0][0]
            if time > horizon:
                self.now = until
                return
            self.now = time
        if until is not None:
            self.now = until

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        if self._pending:
            return self.now
        return self._queue[0][0] if self._queue else float("inf")
