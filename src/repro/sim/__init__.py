"""A small discrete-event simulation (DES) engine.

This package is the substrate that replaces the paper's six-server cluster.
Clients, endorsing peers, the ordering service, and validators all run as
DES *processes* (Python generators) inside one :class:`Environment`. Time
is simulated: a `yield env.timeout(d)` models `d` seconds of latency or CPU
work, and :class:`Resource` models a contended CPU so that concurrent
channels and clients slow each other down — the effect behind the paper's
Figure 11 scaling experiments.

The design follows the classic process-interaction style (as popularised by
SimPy) but is implemented from scratch and trimmed to what the Fabric
simulation needs: events, timeouts, processes, FIFO resources, and stores.
"""

from repro.sim.engine import Environment, Event, Interrupt, Process, Timeout
from repro.sim.resources import Resource, RWLock, Store
from repro.sim.distributions import Rng, ZipfSampler

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Resource",
    "RWLock",
    "Store",
    "Rng",
    "ZipfSampler",
]
