"""A small discrete-event simulation (DES) engine.

This package is the substrate that replaces the paper's six-server cluster.
Clients, endorsing peers, the ordering service, and validators all run as
DES *processes* (Python generators) inside one :class:`Environment`. Time
is simulated: a `yield env.timeout(d)` models `d` seconds of latency or CPU
work, and :class:`Resource` models a contended CPU so that concurrent
channels and clients slow each other down — the effect behind the paper's
Figure 11 scaling experiments.

The design follows the classic process-interaction style (as popularised by
SimPy) but is implemented from scratch and trimmed to what the Fabric
simulation needs: events, timeouts, processes, combinators, FIFO resources,
and stores.

This module is the *stable public surface* of the engine: import from
``repro.sim``, not from the submodules. Waiting on several events at once
goes through the combinators — ``yield env.all_of(events)`` /
``yield gate | deadline`` — never through manual callback wiring; names not
exported here (``Environment._schedule``, the heap layout, the timeout
pool) are private and may change without notice. See ``docs/engine.md``
for the scheduler internals and the migration guide from raw callbacks.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Resource, RWLock, Store
from repro.sim.distributions import Rng, ZipfSampler, mix_seed

__all__ = [
    # engine
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    # combinators
    "AllOf",
    "AnyOf",
    # resources
    "Resource",
    "RWLock",
    "Store",
    # distributions
    "Rng",
    "ZipfSampler",
    "mix_seed",
]
