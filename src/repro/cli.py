"""Command-line interface: run experiments without writing code.

Three subcommands mirror the library's main entry points::

    python -m repro run --workload smallbank --system fabric++ --s-value 1.5
    python -m repro compare --workload custom --hr 0.4 --hw 0.1 --duration 5
    python -m repro caliper --workload custom --rate 150

``run`` executes one system/workload combination and prints the metric
summary; ``compare`` runs vanilla Fabric and Fabric++ on identical inputs
and prints both plus the improvement factor; ``caliper`` reproduces the
paper's Table 8 measurement discipline.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional, Sequence

from repro.bench.caliper import run_caliper
from repro.bench.harness import run_experiment
from repro.bench.report import format_table, improvement_factor
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.workloads.base import Workload
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fabric++ reproduction: run simulated Fabric experiments.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("run", "run one system on one workload"),
        ("compare", "run vanilla Fabric and Fabric++ on identical inputs"),
        ("caliper", "Caliper-style latency/throughput measurement (Table 8)"),
    ):
        sub = subcommands.add_parser(name, help=help_text)
        _add_workload_arguments(sub)
        _add_system_arguments(sub, with_system=(name == "run"))
        sub.add_argument(
            "--duration", type=float, default=3.0,
            help="simulated seconds to fire the workload (default 3)",
        )
        sub.add_argument(
            "--json", metavar="PATH", default=None,
            help="also save the run records to PATH as JSON",
        )
        if name == "caliper":
            sub.add_argument(
                "--rate", type=float, default=150.0,
                help="proposals per second per client (default 150)",
            )

    verify = subcommands.add_parser(
        "verify-ledger",
        help="verify the hash chain of an exported ledger file",
    )
    verify.add_argument("path", help="ledger JSON written by repro.ledger.export")
    return parser


def _add_workload_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workload", choices=("smallbank", "custom", "blank", "ycsb"),
        default="smallbank",
    )
    sub.add_argument("--seed", type=int, default=42)
    # Smallbank knobs (paper Table 6).
    sub.add_argument("--users", type=int, default=20_000,
                     help="smallbank: number of users")
    sub.add_argument("--prob-write", type=float, default=0.95,
                     help="smallbank: probability of a modifying transaction")
    sub.add_argument("--s-value", type=float, default=0.0,
                     help="smallbank: Zipf skew (0 = uniform)")
    # Custom workload knobs (paper Table 7).
    sub.add_argument("--accounts", type=int, default=10_000,
                     help="custom: number of account balances (N)")
    sub.add_argument("--rw", type=int, default=8,
                     help="custom: reads and writes per transaction")
    sub.add_argument("--hr", type=float, default=0.40,
                     help="custom: probability of a hot read")
    sub.add_argument("--hw", type=float, default=0.10,
                     help="custom: probability of a hot write")
    sub.add_argument("--hss", type=float, default=0.01,
                     help="custom: hot account fraction")
    # YCSB knobs.
    sub.add_argument("--ycsb-preset", choices=tuple("abcdef"), default="a",
                     help="ycsb: standard core workload mix")
    sub.add_argument("--records", type=int, default=10_000,
                     help="ycsb: number of records")


def _add_system_arguments(sub: argparse.ArgumentParser, with_system: bool) -> None:
    if with_system:
        sub.add_argument(
            "--system", choices=("fabric", "fabric++"), default="fabric",
        )
    sub.add_argument("--block-size", type=int, default=1024)
    sub.add_argument("--clients", type=int, default=4,
                     help="clients per channel")
    sub.add_argument("--channels", type=int, default=1)
    sub.add_argument("--client-rate", type=float, default=512.0,
                     help="proposals per second per client")


def workload_from_args(args: argparse.Namespace) -> Workload:
    """Build the workload the arguments describe."""
    if args.workload == "smallbank":
        return SmallbankWorkload(
            SmallbankParams(
                num_users=args.users,
                prob_write=args.prob_write,
                s_value=args.s_value,
            ),
            seed=args.seed,
        )
    if args.workload == "custom":
        return CustomWorkload(
            CustomWorkloadParams(
                num_accounts=args.accounts,
                reads_writes=args.rw,
                prob_hot_read=args.hr,
                prob_hot_write=args.hw,
                hot_set_fraction=args.hss,
            ),
            seed=args.seed,
        )
    if args.workload == "ycsb":
        from repro.workloads.ycsb import YcsbParams, YcsbWorkload

        return YcsbWorkload(
            YcsbParams.preset(
                args.ycsb_preset,
                num_records=args.records,
                s_value=args.s_value or 0.99,
            ),
            seed=args.seed,
        )
    return BlankWorkload()


def config_from_args(args: argparse.Namespace) -> FabricConfig:
    """Build the network configuration the arguments describe."""
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=args.block_size),
        clients_per_channel=args.clients,
        num_channels=args.channels,
        client_rate=args.client_rate,
        seed=args.seed,
    )
    if getattr(args, "system", "fabric") == "fabric++":
        config = config.with_fabric_plus_plus()
    return config


def command_run(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    result = run_experiment(
        config, workload_from_args(args), duration=args.duration
    )
    print(format_table([result.row()], title=f"{result.label} / {args.workload}"))
    _maybe_save(args, [result])
    return 0


def command_compare(args: argparse.Namespace) -> int:
    rows = []
    results = {}
    for label in ("fabric", "fabric++"):
        args.system = label
        config = config_from_args(args)
        result = run_experiment(
            config, workload_from_args(args), duration=args.duration
        )
        results[label] = result
        rows.append(result.row())
    print(format_table(rows, title=f"Fabric vs Fabric++ / {args.workload}"))
    factor = improvement_factor(
        results["fabric"].successful_tps, results["fabric++"].successful_tps
    )
    print(f"\nFabric++ successful-throughput improvement: {factor:.2f}x")
    _maybe_save(args, list(results.values()))
    return 0


def command_caliper(args: argparse.Namespace) -> int:
    rows = []
    for label in ("fabric", "fabric++"):
        args.system = label
        config = config_from_args(args)
        report = run_caliper(
            config,
            workload_from_args(args),
            duration=args.duration,
            rate_per_client=args.rate,
            block_size=min(args.block_size, 512),
        )
        rows.append(
            {
                "system": report.label,
                "max_latency": report.max_latency,
                "min_latency": report.min_latency,
                "avg_latency": report.avg_latency,
                "successful_tps": report.successful_tps,
            }
        )
    print(format_table(rows, title="Caliper report"))
    return 0


def command_verify_ledger(args: argparse.Namespace) -> int:
    from repro.errors import LedgerError
    from repro.ledger.export import load_ledger

    try:
        ledger = load_ledger(args.path)
    except LedgerError as error:
        print(f"INVALID: {error}")
        return 1
    transactions = sum(len(block) for block in ledger)
    valid = sum(
        1
        for block in ledger
        for flag in block.validity.values()
        if flag
    )
    print(f"OK: {ledger.height} blocks, {transactions} transactions "
          f"({valid} valid), chain intact")
    return 0


def _maybe_save(args: argparse.Namespace, results) -> None:
    """Persist results when --json was given."""
    path = getattr(args, "json", None)
    if not path:
        return
    from repro.analysis import record_from_result, save_records

    records = [
        record_from_result(result, workload=args.workload)
        for result in results
    ]
    save_records(path, records)
    print(f"\nsaved {len(records)} run record(s) to {path}")


COMMANDS = {
    "run": command_run,
    "compare": command_compare,
    "caliper": command_caliper,
    "verify-ledger": command_verify_ledger,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
