"""Command-line interface: run experiments without writing code.

Five experiment subcommands mirror the library's main entry points::

    python -m repro run --workload smallbank --system fabric++ --s-value 1.5
    python -m repro compare --workload custom --hr 0.4 --hw 0.1 --duration 5
    python -m repro caliper --workload custom --rate 150
    python -m repro sweep --workload smallbank --sweep s-value=0.0,1.0,2.0 --jobs 4
    python -m repro profile --workload smallbank --duration 2 --trace out.json

``run`` executes one system/workload combination and prints the metric
summary (``--trace PATH`` additionally records a Chrome trace and the
per-resource cost table); ``compare`` runs vanilla Fabric and Fabric++ on
identical inputs and prints both plus the improvement factor; ``caliper``
reproduces the paper's Table 8 measurement discipline; ``sweep`` fans a
parameter grid across worker processes (``--jobs``) with on-disk result
caching in ``.repro-cache/`` — a second identical invocation completes
from cache without re-simulating; ``profile`` traces both systems and
prints the Figure 1-style cost attribution per resource.

Three more subcommands cover robustness: ``verify-ledger`` checks the
hash chain of an exported ledger, ``chaos`` runs randomized fault
schedules (peer/orderer crashes, partitions, lossy links) against the
replicated ordering service and asserts the consensus safety
invariants after every run, and ``scenario`` runs the named overload
scenarios (open-loop traffic shapes, misbehaving clients, bounded
queues) under the same invariant checks::

    python -m repro chaos --seeds 20 --report chaos-report.json
    python -m repro scenario flash-crowd --seeds 10 --report scenario.json
    python -m repro scenario --list

Fault schedules can also be loaded from JSON with ``--faults-file``
(the :meth:`~repro.faults.FaultSchedule.to_dict` layout), mutually
exclusive with the inline ``--crash/--stall/...`` flags.
"""

from __future__ import annotations

import argparse
import copy
import itertools
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.bench.cache import ResultCache
from repro.bench.caliper import run_caliper
from repro.bench.harness import compare_fabric_vs_fabricpp, run_experiment
from repro.bench.report import format_table, improvement_factor
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import run_sweep
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError, ReproError
from repro.fabric.config import FabricConfig
from repro.faults import CrashWindow, FaultSchedule, StallWindow
from repro.traffic import ARRIVAL_KINDS, ArrivalProcess
from repro.validation.registry import strategy_names
from repro.workloads.base import Workload
from repro.workloads.registry import WorkloadRef

#: Axes ``sweep --sweep KEY=V1,V2,...`` may vary: CLI key -> (dest, type).
SWEEPABLE = {
    "block-size": ("block_size", int),
    "clients": ("clients", int),
    "channels": ("channels", int),
    "cross-channel-fraction": ("cross_channel_fraction", float),
    "population-accounts": ("population_accounts", int),
    "population-zipf-s": ("population_zipf_s", float),
    "client-rate": ("client_rate", float),
    "seed": ("seed", int),
    "duration": ("duration", float),
    "users": ("users", int),
    "prob-write": ("prob_write", float),
    "s-value": ("s_value", float),
    "accounts": ("accounts", int),
    "rw": ("rw", int),
    "hr": ("hr", float),
    "hw": ("hw", float),
    "hss": ("hss", float),
    "records": ("records", int),
    "hotspot-interval": ("hotspot_interval", int),
    "hot-set-drift": ("hot_set_drift", float),
    "drop-rate": ("drop_rate", float),
    "jitter": ("jitter", float),
    "validation-workers": ("validation_workers", int),
    "validation-scheduler": ("validation_scheduler", str),
    "pipeline-depth": ("pipeline_depth", int),
    "cc-strategy": ("cc_strategy", str),
    "orderer-nodes": ("orderer_nodes", int),
    "traffic": ("traffic", str),
    "arrival-rate": ("arrival_rate", float),
    "orderer-queue-limit": ("orderer_queue_limit", int),
    "endorse-queue-limit": ("endorse_queue_limit", int),
    "delivery-backlog-limit": ("delivery_backlog_limit", int),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fabric++ reproduction: run simulated Fabric experiments.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("run", "run one system on one workload"),
        ("compare", "run vanilla Fabric and Fabric++ on identical inputs"),
        ("caliper", "Caliper-style latency/throughput measurement (Table 8)"),
        ("sweep", "run a parameter grid in parallel with result caching"),
        ("profile", "trace both systems and attribute cost per resource"),
    ):
        sub = subcommands.add_parser(name, help=help_text)
        _add_workload_arguments(sub)
        _add_system_arguments(sub, with_system=(name == "run"))
        _add_fault_arguments(sub)
        if name == "run":
            sub.add_argument(
                "--export-ledger", metavar="PATH", default=None,
                help="export the reference peer's verified ledger to PATH "
                     "as JSON (multi-channel runs add a .<channel> suffix)",
            )
            sub.add_argument(
                "--checkpoint-every", type=float, default=None, metavar="S",
                help="write a verification checkpoint every S simulated "
                     "seconds (default: no checkpoints; runs are "
                     "byte-identical either way)",
            )
            sub.add_argument(
                "--checkpoint-dir", default=None, metavar="DIR",
                help="directory for checkpoint files (default "
                     ".repro-checkpoints/ when --checkpoint-every is set)",
            )
            sub.add_argument(
                "--checkpoint-keep", type=int, default=None, metavar="N",
                help="retain only the newest N checkpoint files",
            )
            sub.add_argument(
                "--resume-from", default=None, metavar="PATH",
                help="resume a killed run from a checkpoint file or "
                     "directory (replays deterministically to the "
                     "checkpoint, verifies its digests, then continues); "
                     "workload/config flags are ignored — the run is "
                     "rebuilt from the spec embedded in the checkpoint",
            )
            sub.add_argument(
                "--prune", action="store_true",
                help="at each checkpoint boundary, fold blocks below the "
                     "fleet-safe height into a verifiable continuity "
                     "record (requires --checkpoint-every)",
            )
        if name in ("run", "profile"):
            sub.add_argument(
                "--trace", metavar="PATH", default=None,
                help="write a Chrome trace-event JSON file to PATH "
                     "(open in Perfetto or chrome://tracing)"
                     + (" — profile adds a .<system> suffix per system"
                        if name == "profile" else ""),
            )
            sub.add_argument(
                "--trace-ring", type=int, default=None, metavar="N",
                help="span ring-buffer capacity (default 65536); when the "
                     "ring overflows, oldest spans are dropped and the "
                     "drop count is reported",
            )
        sub.add_argument(
            "--duration", type=float, default=3.0,
            help="simulated seconds to fire the workload (default 3)",
        )
        sub.add_argument(
            "--drain", type=float, default=3.0,
            help="extra simulated seconds after firing stops so in-flight "
                 "transactions resolve (default 3)",
        )
        sub.add_argument(
            "--json", metavar="PATH", default=None,
            help="also save the run records to PATH as JSON",
        )
        if name == "caliper":
            sub.add_argument(
                "--rate", type=float, default=150.0,
                help="proposals per second per client (default 150)",
            )
        if name == "sweep":
            sub.add_argument(
                "--sweep", action="append", metavar="KEY=V1,V2,...",
                default=None,
                help="sweep one axis over comma-separated values; repeatable "
                     f"(keys: {', '.join(sorted(SWEEPABLE))})",
            )
            sub.add_argument(
                "--systems", default="fabric,fabric++",
                help="comma-separated systems to run per grid point "
                     "(default: fabric,fabric++)",
            )
            sub.add_argument(
                "--jobs", type=int, default=1,
                help="worker processes (0 = one per CPU; default 1)",
            )
            sub.add_argument(
                "--no-cache", action="store_true",
                help="disable the on-disk result cache",
            )
            sub.add_argument(
                "--cache-dir", default=None,
                help="result cache directory (default .repro-cache/, or "
                     "$REPRO_CACHE_DIR)",
            )

    verify = subcommands.add_parser(
        "verify-ledger",
        help="verify the hash chain of an exported ledger file",
    )
    verify.add_argument("path", help="ledger JSON written by repro.ledger.export")

    chaos = subcommands.add_parser(
        "chaos",
        help="randomized fault schedules with consensus invariant checks",
    )
    chaos.add_argument(
        "--seeds", type=int, default=20,
        help="number of chaos seeds to run (default 20)",
    )
    chaos.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed; seeds run [base, base+seeds) (default 0)",
    )
    chaos.add_argument(
        "--duration", type=float, default=1.5,
        help="simulated seconds to fire the workload per run (default 1.5)",
    )
    chaos.add_argument(
        "--drain", type=float, default=4.0,
        help="extra simulated seconds so failovers settle (default 4)",
    )
    chaos.add_argument(
        "--orderer-nodes", type=int, default=3,
        help="ordering-service replicas under test (default 3)",
    )
    chaos.add_argument(
        "--system", choices=("fabric", "fabric++"), default="fabric",
        help="pipeline variant to stress (default fabric)",
    )
    chaos.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the full invariant report to PATH as JSON",
    )

    scenario = subcommands.add_parser(
        "scenario",
        help="named overload scenarios with consensus invariant checks",
    )
    scenario.add_argument(
        "name", nargs="?", default=None,
        help="scenario to run (default: every registered scenario); "
             "see --list",
    )
    scenario.add_argument(
        "--list", action="store_true",
        help="list the registered scenarios and exit",
    )
    scenario.add_argument(
        "--seeds", type=int, default=10,
        help="number of seeds to run per scenario (default 10)",
    )
    scenario.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed; seeds run [base, base+seeds) (default 0)",
    )
    scenario.add_argument(
        "--system", choices=("fabric", "fabric++"), default="fabric",
        help="pipeline variant to stress (default fabric)",
    )
    scenario.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the full invariant report to PATH as JSON",
    )
    return parser


def _add_workload_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workload", choices=("smallbank", "custom", "blank", "ycsb"),
        default="smallbank",
    )
    sub.add_argument("--seed", type=int, default=42)
    # Smallbank knobs (paper Table 6).
    sub.add_argument("--users", type=int, default=20_000,
                     help="smallbank: number of users")
    sub.add_argument("--prob-write", type=float, default=0.95,
                     help="smallbank: probability of a modifying transaction")
    sub.add_argument("--s-value", type=float, default=0.0,
                     help="smallbank: Zipf skew (0 = uniform)")
    # Custom workload knobs (paper Table 7).
    sub.add_argument("--accounts", type=int, default=10_000,
                     help="custom: number of account balances (N)")
    sub.add_argument("--rw", type=int, default=8,
                     help="custom: reads and writes per transaction")
    sub.add_argument("--hr", type=float, default=0.40,
                     help="custom: probability of a hot read")
    sub.add_argument("--hw", type=float, default=0.10,
                     help="custom: probability of a hot write")
    sub.add_argument("--hss", type=float, default=0.01,
                     help="custom: hot account fraction")
    # YCSB knobs.
    sub.add_argument("--ycsb-preset", choices=tuple("abcdef"), default="a",
                     help="ycsb: standard core workload mix")
    sub.add_argument("--records", type=int, default=10_000,
                     help="ycsb: number of records")
    sub.add_argument("--hotspot-interval", type=int, default=0,
                     help="ycsb: operations between hot-set rotations per "
                          "request stream (0 = static hot set)")
    sub.add_argument("--hot-set-drift", type=float, default=0.0,
                     help="ycsb: keyspace fraction the hot set shifts at "
                          "each rotation")


def _add_system_arguments(sub: argparse.ArgumentParser, with_system: bool) -> None:
    if with_system:
        sub.add_argument(
            "--system", choices=("fabric", "fabric++"), default="fabric",
        )
    sub.add_argument("--block-size", type=int, default=1024)
    sub.add_argument("--clients", type=int, default=4,
                     help="clients per channel")
    sub.add_argument("--channels", type=int, default=1,
                     help="sharded channels: N>=2 builds N independent "
                          "channel runtimes (own orderer, peers, ledger) in "
                          "one simulation (default 1 = classic single "
                          "runtime)")
    sub.add_argument("--cross-channel-fraction", type=float, default=0.0,
                     metavar="F",
                     help="fraction of intents fired as two-channel sagas "
                          "with no atomicity guarantee; requires "
                          "--channels >= 2 (default 0)")
    sub.add_argument("--population-accounts", type=int, default=0,
                     metavar="N",
                     help="logical account population with Zipf channel "
                          "affinity steering per-channel client load; "
                          "requires --channels >= 2 (default 0 = off)")
    sub.add_argument("--population-zipf-s", type=float, default=1.0,
                     metavar="S",
                     help="Zipf skew of the population's channel affinity "
                          "(0 = uniform; default 1.0)")
    sub.add_argument("--client-rate", type=float, default=512.0,
                     help="proposals per second per client")
    sub.add_argument("--policy", default=None, metavar="SPEC",
                     help="endorsement policy: all, any, or outof:K "
                          "(default: AND over every org)")
    sub.add_argument("--max-resubmits", type=int, default=None, metavar="N",
                     help="cap on resubmissions per failed business intent; "
                          "negative = retry forever (default 16)")
    sub.add_argument("--validation-workers", type=int, default=1, metavar="N",
                     help="modelled signature-verification lanes per peer "
                          "(default 1 = legacy inline serial validator)")
    sub.add_argument("--validation-scheduler",
                     choices=("serial", "dependency"), default="serial",
                     help="MVCC commit scheduler: serial (default) or "
                          "dependency-aware parallel waves")
    sub.add_argument("--pipeline-depth", type=int, default=1, metavar="K",
                     help="blocks in flight per channel: K>1 overlaps "
                          "verification of block n+1 with the commit of "
                          "block n (default 1)")
    sub.add_argument("--cc-strategy", choices=strategy_names(),
                     default="serial",
                     help="concurrency-control strategy for validation/"
                          "commit (repro.validation.registry): serial "
                          "(default), dependency waves, lockless OCC, or "
                          "dependency-aware dataflow execution")
    sub.add_argument("--orderer-nodes", type=int, default=1, metavar="N",
                     help="ordering-service replicas: N>=2 enables the "
                          "Raft-style replicated orderer with leader "
                          "election (default 1 = single orderer)")
    sub.add_argument("--traffic", choices=ARRIVAL_KINDS, default="closed",
                     help="client arrival process: closed (default; paced "
                          "1/client-rate loop) or an open-loop shape "
                          "(poisson, diurnal, flash, heavy_tail)")
    sub.add_argument("--arrival-rate", type=float, default=None, metavar="R",
                     help="open-loop mean arrivals per second per client "
                          "(default: --client-rate)")
    sub.add_argument("--orderer-queue-limit", type=int, default=0, metavar="N",
                     help="bound the orderer inbound queue to N transactions; "
                          "admission rejects past the bound (default 0 = "
                          "unbounded)")
    sub.add_argument("--endorse-queue-limit", type=int, default=0, metavar="N",
                     help="bound concurrent endorsements per peer to N; "
                          "excess proposals are refused (default 0 = "
                          "unbounded)")
    sub.add_argument("--delivery-backlog-limit", type=int, default=0,
                     metavar="N",
                     help="pause block delivery while any peer holds N "
                          "unvalidated blocks, propagating validation "
                          "backpressure to admission (default 0 = unbounded)")
    sub.add_argument("--streaming-metrics", action="store_true",
                     help="aggregate metrics online (bounded reservoir "
                          "percentiles, O(1) memory in run length) instead "
                          "of keeping per-transaction lists; throughput "
                          "and counts stay exact, percentiles are "
                          "approximate (default: off, bit-identical "
                          "metrics)")


def _add_fault_arguments(sub: argparse.ArgumentParser) -> None:
    """Deterministic fault-injection knobs (default: inject nothing)."""
    sub.add_argument(
        "--faults-file", metavar="PATH", default=None,
        help="load a complete fault schedule from a JSON file (the "
             "FaultSchedule.to_dict layout); mutually exclusive with the "
             "inline fault flags below",
    )
    sub.add_argument(
        "--crash", action="append", default=None, metavar="PEER@AT+DUR",
        help="crash PEER at simulated second AT for DUR seconds, e.g. "
             "peer1.OrgA@0.5+1.0; repeatable",
    )
    sub.add_argument(
        "--stall", action="append", default=None, metavar="AT+DUR",
        help="stall the ordering service at AT for DUR seconds; repeatable",
    )
    sub.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="probability that a faulty-link message is lost (default 0)",
    )
    sub.add_argument(
        "--jitter", type=float, default=0.0,
        help="mean exponential extra latency per faulty-link message "
             "(seconds, default 0)",
    )
    sub.add_argument(
        "--endorse-timeout", type=float, default=None,
        help="client endorsement deadline in simulated seconds (default "
             "0.05 when any fault flag is set, else disabled)",
    )
    sub.add_argument(
        "--endorse-retries", type=int, default=3,
        help="endorsement rounds retried with backoff before giving up "
             "(default 3)",
    )


def _parse_crash_window(text: str) -> CrashWindow:
    peer, at_sep, rest = text.partition("@")
    at_text, dur_sep, dur_text = rest.partition("+")
    if not (peer.strip() and at_sep and dur_sep):
        raise ConfigError(f"bad --crash {text!r}: expected PEER@AT+DUR")
    try:
        return CrashWindow(
            peer=peer.strip(), at=float(at_text), duration=float(dur_text)
        )
    except ValueError as error:
        raise ConfigError(f"bad --crash {text!r}: {error}") from error


def _parse_stall_window(text: str) -> StallWindow:
    at_text, separator, dur_text = text.partition("+")
    if not separator:
        raise ConfigError(f"bad --stall {text!r}: expected AT+DUR")
    try:
        return StallWindow(at=float(at_text), duration=float(dur_text))
    except ValueError as error:
        raise ConfigError(f"bad --stall {text!r}: {error}") from error


def _load_faults_file(path: str) -> FaultSchedule:
    """Parse a JSON fault schedule written in the ``to_dict`` layout."""
    import json

    from repro.faults import schedule_from_dict

    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        raise ConfigError(f"cannot read --faults-file {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigError(f"bad JSON in --faults-file {path!r}: {error}") from error
    if not isinstance(data, dict):
        raise ConfigError(
            f"bad --faults-file {path!r}: expected a JSON object, "
            f"got {type(data).__name__}"
        )
    try:
        schedule = schedule_from_dict(data)
    except (ConfigError, TypeError) as error:
        raise ConfigError(f"bad --faults-file {path!r}: {error}") from error
    if (
        "endorsement_timeout" not in data
        and not schedule.is_zero
        and not schedule.endorsement_timeout
    ):
        # Same default as the inline flags: any injected fault needs a
        # client-side deadline to stay live.
        schedule = replace(schedule, endorsement_timeout=0.05)
    return schedule


def faults_from_args(args: argparse.Namespace) -> FaultSchedule:
    """Build the fault schedule the arguments describe (all-zero default)."""
    faults_file = getattr(args, "faults_file", None)
    inline_flags = (
        bool(getattr(args, "crash", None))
        or bool(getattr(args, "stall", None))
        or bool(getattr(args, "drop_rate", 0.0))
        or bool(getattr(args, "jitter", 0.0))
        or getattr(args, "endorse_timeout", None) is not None
    )
    if faults_file:
        if inline_flags:
            raise ConfigError(
                "--faults-file cannot be combined with inline fault flags "
                "(--crash/--stall/--drop-rate/--jitter/--endorse-timeout)"
            )
        return _load_faults_file(faults_file)
    crashes = tuple(
        _parse_crash_window(text) for text in getattr(args, "crash", None) or []
    )
    stalls = tuple(
        _parse_stall_window(text) for text in getattr(args, "stall", None) or []
    )
    drop_rate = getattr(args, "drop_rate", 0.0)
    jitter = getattr(args, "jitter", 0.0)
    timeout = getattr(args, "endorse_timeout", None)
    if timeout is None:
        # Any injected fault needs a client-side deadline to stay live.
        timeout = 0.05 if (crashes or stalls or drop_rate or jitter) else 0.0
    return FaultSchedule(
        crashes=crashes,
        stalls=stalls,
        drop_probability=drop_rate,
        jitter_mean=jitter,
        endorsement_timeout=timeout,
        max_endorsement_retries=getattr(args, "endorse_retries", 3),
    )


def workload_ref_from_args(args: argparse.Namespace) -> WorkloadRef:
    """Build the picklable workload reference the arguments describe."""
    if args.workload == "smallbank":
        return WorkloadRef(
            "smallbank",
            {
                "num_users": args.users,
                "prob_write": args.prob_write,
                "s_value": args.s_value,
            },
            seed=args.seed,
        )
    if args.workload == "custom":
        return WorkloadRef(
            "custom",
            {
                "num_accounts": args.accounts,
                "reads_writes": args.rw,
                "prob_hot_read": args.hr,
                "prob_hot_write": args.hw,
                "hot_set_fraction": args.hss,
            },
            seed=args.seed,
        )
    if args.workload == "ycsb":
        return WorkloadRef(
            "ycsb",
            {
                "preset": args.ycsb_preset,
                "num_records": args.records,
                "s_value": args.s_value or 0.99,
                "hotspot_interval": args.hotspot_interval,
                "hot_set_drift": args.hot_set_drift,
            },
            seed=args.seed,
        )
    return WorkloadRef("blank")


def workload_from_args(args: argparse.Namespace) -> Workload:
    """Build the workload instance the arguments describe."""
    return workload_ref_from_args(args).build()


def traffic_from_args(args: argparse.Namespace) -> ArrivalProcess:
    """Build the arrival process the arguments describe (closed default)."""
    kind = getattr(args, "traffic", "closed")
    rate = getattr(args, "arrival_rate", None)
    if kind == "closed" and rate is not None:
        raise ConfigError("--arrival-rate needs an open-loop --traffic shape")
    if kind == "closed":
        return ArrivalProcess()
    return ArrivalProcess(kind=kind, rate=rate)


def backpressure_from_args(args: argparse.Namespace):
    """Build the backpressure configuration the arguments describe."""
    from repro.fabric.config import BackpressureConfig

    return BackpressureConfig(
        orderer_queue_limit=getattr(args, "orderer_queue_limit", 0),
        endorse_queue_limit=getattr(args, "endorse_queue_limit", 0),
        delivery_backlog_limit=getattr(args, "delivery_backlog_limit", 0),
    )


def population_from_args(args: argparse.Namespace):
    """Build the population configuration the arguments describe."""
    from repro.fabric.config import PopulationConfig

    return PopulationConfig(
        accounts=getattr(args, "population_accounts", 0),
        zipf_s=getattr(args, "population_zipf_s", 1.0),
    )


def config_from_args(args: argparse.Namespace) -> FabricConfig:
    """Build the network configuration the arguments describe."""
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=args.block_size),
        clients_per_channel=args.clients,
        channels=args.channels,
        cross_channel_fraction=getattr(args, "cross_channel_fraction", 0.0),
        population=population_from_args(args),
        client_rate=args.client_rate,
        seed=args.seed,
        endorsement_policy=getattr(args, "policy", None),
        faults=faults_from_args(args),
        validation_workers=getattr(args, "validation_workers", 1),
        validation_scheduler=getattr(args, "validation_scheduler", "serial"),
        pipeline_depth=getattr(args, "pipeline_depth", 1),
        cc_strategy=getattr(args, "cc_strategy", "serial"),
        orderer_nodes=getattr(args, "orderer_nodes", 1),
        traffic=traffic_from_args(args),
        backpressure=backpressure_from_args(args),
        streaming_metrics=getattr(args, "streaming_metrics", False),
    )
    max_resubmits = getattr(args, "max_resubmits", None)
    if max_resubmits is not None:
        config = replace(
            config,
            max_resubmits=None if max_resubmits < 0 else max_resubmits,
        )
    if getattr(args, "system", "fabric") == "fabric++":
        config = config.with_fabric_plus_plus()
    faults_file = getattr(args, "faults_file", None)
    if faults_file:
        # Fail fast at argument-parsing time: a schedule loaded from a
        # file is validated against the full topology here, so a typo'd
        # peer name surfaces with the file path before any network (or
        # sweep worker) is constructed.
        try:
            config.validate()
        except ConfigError as error:
            raise ConfigError(f"--faults-file {faults_file!r}: {error}") from error
    return config


def _tracer_from_args(args: argparse.Namespace):
    """Build the run's tracer, honouring ``--trace-ring`` (or None)."""
    if not getattr(args, "trace", None):
        return None
    from repro.trace import Tracer

    ring = getattr(args, "trace_ring", None)
    return Tracer() if ring is None else Tracer(capacity=ring)


def _warn_dropped_spans(tracer) -> None:
    """Surface span-ring evictions so a truncated trace is never silent."""
    if tracer is not None and tracer.buffer.dropped:
        print(
            f"warning: trace ring overflowed — {tracer.buffer.dropped} "
            f"oldest spans dropped (capacity {tracer.buffer.capacity}; "
            "raise with --trace-ring)",
            file=sys.stderr,
        )


#: Default directory for ``run --checkpoint-every`` files.
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


def command_run(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_experiment_with_network

    tracer = _tracer_from_args(args)
    checkpointer = None
    if getattr(args, "resume_from", None):
        from repro.checkpoint import load_latest_checkpoint, resume_run

        checkpoint = load_latest_checkpoint(args.resume_from)
        print(
            f"resuming {checkpoint['label']} from checkpoint "
            f"{checkpoint['index']} (t={checkpoint['time']}): replaying "
            "deterministically and verifying digests..."
        )
        result, network, checkpointer = resume_run(args.resume_from, tracer=tracer)
        print("checkpoint digests verified; run completed\n")
    else:
        if getattr(args, "prune", False) and not getattr(args, "checkpoint_every", None):
            raise ConfigError("--prune requires --checkpoint-every")
        spec = ExperimentSpec(
            config=config_from_args(args),
            workload=workload_ref_from_args(args),
            duration=args.duration,
            drain=args.drain,
        )
        if getattr(args, "checkpoint_every", None):
            from repro.checkpoint import CheckpointOptions, run_with_checkpoints

            directory = args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR
            options = CheckpointOptions(
                every=args.checkpoint_every,
                directory=directory,
                prune=args.prune,
                keep=getattr(args, "checkpoint_keep", None),
            )
            result, network, checkpointer = run_with_checkpoints(
                spec, options, tracer=tracer
            )
            print(
                f"wrote {len(checkpointer.checkpoints)} checkpoints "
                f"to {directory}\n"
            )
        else:
            result, network = run_experiment_with_network(spec, tracer=tracer)
    print(format_table([result.row()], title=f"{result.label} / {args.workload}"))
    fleet = result.metrics.channels
    if fleet is not None:
        print()
        print(format_table(fleet.per_channel, title="per-channel breakdown"))
        saga = fleet.saga
        if saga.started:
            print(
                f"\nsagas: {saga.started} started, {saga.committed} committed, "
                f"{saga.half_committed} half-committed, {saga.aborted} aborted"
            )
    if result.metrics.fault_events:
        print("\nfault events:")
        for time, kind, subject in result.metrics.fault_events:
            print(f"  t={time:8.3f}s  {kind:<17s} {subject}")
    if tracer is not None:
        from repro.trace import write_chrome_trace

        write_chrome_trace(args.trace, tracer)
        print(f"\nwrote Chrome trace ({len(tracer.spans())} spans) to {args.trace}")
        _warn_dropped_spans(tracer)
        print()
        print(tracer.breakdown.table(title=f"{result.label} cost attribution"))
    if args.export_ledger:
        from repro.ledger.export import save_ledger

        runtimes = getattr(network, "runtimes", None) or [network]
        total = sum(len(runtime.channels) for runtime in runtimes)
        for runtime in runtimes:
            for channel in runtime.channels:
                path = (
                    args.export_ledger
                    if total == 1
                    else f"{args.export_ledger}.{channel}"
                )
                save_ledger(
                    path, runtime.reference_peer.channels[channel].ledger
                )
                print(f"\nexported {channel} ledger to {path}")
    _maybe_save(args, [result])
    return 0


def command_compare(args: argparse.Namespace) -> int:
    results = compare_fabric_vs_fabricpp(
        config_from_args(args),
        workload_ref_from_args(args),
        duration=args.duration,
        drain=args.drain,
    )
    print(format_table(results.rows(), title=f"Fabric vs Fabric++ / {args.workload}"))
    factor = results.improvement_factor()
    print(f"\nFabric++ successful-throughput improvement: {factor:.2f}x")
    _maybe_save(args, results.values())
    return 0


def command_caliper(args: argparse.Namespace) -> int:
    rows = []
    for label in ("fabric", "fabric++"):
        args.system = label
        config = config_from_args(args)
        report = run_caliper(
            config,
            workload_ref_from_args(args),
            duration=args.duration,
            rate_per_client=args.rate,
            block_size=min(args.block_size, 512),
        )
        rows.append(
            {
                "system": report.label,
                "max_latency": report.max_latency,
                "min_latency": report.min_latency,
                "avg_latency": report.avg_latency,
                "successful_tps": report.successful_tps,
            }
        )
    print(format_table(rows, title="Caliper report"))
    return 0


def _parse_sweep_axes(args: argparse.Namespace) -> List[tuple]:
    """Parse ``--sweep KEY=V1,V2`` options into (key, dest, values) axes."""
    axes: List[tuple] = []
    for text in args.sweep or []:
        key, separator, values_text = text.partition("=")
        key = key.strip()
        if not separator or key not in SWEEPABLE:
            known = ", ".join(sorted(SWEEPABLE))
            raise ValueError(
                f"bad --sweep {text!r}: expected KEY=V1,V2,... with KEY one of {known}"
            )
        dest, caster = SWEEPABLE[key]
        try:
            values = [caster(value) for value in values_text.split(",") if value]
        except ValueError as error:
            raise ValueError(f"bad --sweep {text!r}: {error}") from error
        if not values:
            raise ValueError(f"bad --sweep {text!r}: no values")
        axes.append((key, dest, values))
    return axes


def command_sweep(args: argparse.Namespace) -> int:
    try:
        axes = _parse_sweep_axes(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    systems = [name.strip() for name in args.systems.split(",") if name.strip()]
    for system in systems:
        if system not in ("fabric", "fabric++"):
            print(f"error: unknown system {system!r}", file=sys.stderr)
            return 2
    if not systems:
        print("error: --systems selected nothing", file=sys.stderr)
        return 2

    specs = []
    value_axes = [axis[2] for axis in axes]
    for combo in itertools.product(*value_axes):
        point = copy.copy(args)
        point_params = {}
        for (key, dest, _), value in zip(axes, combo):
            setattr(point, dest, value)
            point_params[key] = value
        for system in systems:
            point.system = system
            specs.append(
                ExperimentSpec(
                    config=config_from_args(point),
                    workload=workload_ref_from_args(point),
                    duration=point.duration,
                    drain=point.drain,
                    label="Fabric++" if system == "fabric++" else "Fabric",
                    params=dict(point_params),
                )
            )

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    results = run_sweep(specs, jobs=args.jobs, cache=cache)
    stats = results.stats

    print(format_table(results.rows(), title=f"sweep / {args.workload}"))
    if set(systems) == {"fabric", "fabric++"}:
        print()
        print(_sweep_factor_table(results, group_size=len(systems)))
    if stats is not None:
        print(f"\n{stats.summary_line()}")
    _maybe_save(args, results.values())
    return 0


def _sweep_factor_table(results, group_size: int) -> str:
    """Per-grid-point Fabric vs Fabric++ successful-TPS factors."""
    rows = []
    ordered = results.values()
    for start in range(0, len(ordered), group_size):
        group = {result.label: result for result in ordered[start:start + group_size]}
        fabric = group.get("Fabric")
        fabricpp = group.get("Fabric++")
        if fabric is None or fabricpp is None:
            continue
        rows.append(
            {
                **fabric.params,
                "Fabric": fabric.successful_tps,
                "Fabric++": fabricpp.successful_tps,
                "factor": improvement_factor(
                    fabric.successful_tps, fabricpp.successful_tps
                ),
            }
        )
    return format_table(rows, title="Fabric++ improvement per grid point")


def command_profile(args: argparse.Namespace) -> int:
    """Trace vanilla Fabric and Fabric++ and print the cost attribution.

    The paper's Figure 1 motivates Fabric++ by decomposing where the
    pipeline spends its time; this subcommand reproduces that view for
    both systems on identical inputs. With ``--trace PATH`` each system's
    Chrome trace is written to ``PATH.<system>``.
    """
    from repro.bench.harness import run_experiment_with_network
    from repro.trace import Tracer, write_chrome_trace

    base_config = config_from_args(args)
    workload_ref = workload_ref_from_args(args)
    rows = []
    ring = getattr(args, "trace_ring", None)
    for system, config in (
        ("fabric", base_config.with_vanilla()),
        ("fabric++", base_config.with_fabric_plus_plus()),
    ):
        tracer = Tracer() if ring is None else Tracer(capacity=ring)
        spec = ExperimentSpec(
            config=config,
            workload=workload_ref,
            duration=args.duration,
            drain=args.drain,
        )
        result, _network = run_experiment_with_network(spec, tracer=tracer)
        print(tracer.breakdown.table(title=f"{result.label} cost attribution"))
        print()
        if args.trace:
            path = f"{args.trace}.{system.replace('+', 'p')}"
            write_chrome_trace(path, tracer)
            print(f"wrote {result.label} Chrome trace "
                  f"({len(tracer.spans())} spans) to {path}")
            print()
        _warn_dropped_spans(tracer)
        rows.append(
            {
                "system": result.label,
                "successful_tps": result.successful_tps,
                "crypto_network_share": (
                    f"{tracer.breakdown.crypto_network_share() * 100.0:.1f}%"
                ),
                "traced_seconds": round(tracer.breakdown.total_seconds, 3),
                "spans_dropped": tracer.buffer.dropped,
            }
        )
    print(format_table(rows, title="profile summary"))
    return 0


def command_chaos(args: argparse.Namespace) -> int:
    """Run randomized fault schedules and check consensus invariants."""
    from repro.chaos import INVARIANT_NAMES, run_chaos

    reports = []
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        report = run_chaos(
            seed,
            duration=args.duration,
            drain=args.drain,
            orderer_nodes=args.orderer_nodes,
            fabric_plus_plus=(args.system == "fabric++"),
        )
        reports.append(report)
        status = "PASS" if report.passed else "FAIL"
        print(
            f"seed {report.seed:>4d}  {status}  "
            f"committed={report.committed:>5d}  blocks={report.blocks:>3d}  "
            f"leader_changes={report.leader_changes}  "
            f"reproposed={report.txs_reproposed}  "
            f"dropped={report.messages_dropped}  "
            f"faults={len(report.faults)}"
        )
        for line in report.details:
            print(f"           {line}")
    passed = sum(1 for report in reports if report.passed)
    print(
        f"\nchaos: {passed}/{len(reports)} seeds passed all "
        f"{len(INVARIANT_NAMES)} invariants + liveness"
    )
    if args.report:
        import json

        payload = {
            "seeds": args.seeds,
            "seed_base": args.seed_base,
            "system": args.system,
            "orderer_nodes": args.orderer_nodes,
            "passed": passed,
            "failed": len(reports) - passed,
            "runs": [report.to_dict() for report in reports],
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote invariant report to {args.report}")
    return 0 if passed == len(reports) else 1


def command_scenario(args: argparse.Namespace) -> int:
    """Run named overload scenarios and check consensus invariants."""
    from repro.chaos import INVARIANT_NAMES
    from repro.scenarios import get_scenario, run_scenario, scenario_names

    if args.list:
        for name in scenario_names():
            print(f"{name:<22s} {get_scenario(name).description}")
        return 0
    names = [args.name] if args.name else scenario_names()
    for name in names:
        get_scenario(name)  # fail fast on a typo, before any simulation

    reports = []
    for name in names:
        for seed in range(args.seed_base, args.seed_base + args.seeds):
            report = run_scenario(
                name, seed, system=args.system
            )
            reports.append(report)
            status = "PASS" if report.passed else "FAIL"
            print(
                f"{name:<22s} seed {report.seed:>4d}  {status}  "
                f"fired={report.fired:>5d}  committed={report.committed:>5d}  "
                f"shed={report.shed:>5d}  retries={report.client_retries:>5d}  "
                f"blocks={report.blocks:>3d}"
            )
            for line in report.details:
                print(f"           {line}")
    passed = sum(1 for report in reports if report.passed)
    print(
        f"\nscenario: {passed}/{len(reports)} seeds passed all "
        f"{len(INVARIANT_NAMES)} invariants + liveness"
    )
    if args.report:
        import json

        payload = {
            "scenarios": names,
            "seeds": args.seeds,
            "seed_base": args.seed_base,
            "system": args.system,
            "passed": passed,
            "failed": len(reports) - passed,
            "runs": [report.to_dict() for report in reports],
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote invariant report to {args.report}")
    return 0 if passed == len(reports) else 1


def command_verify_ledger(args: argparse.Namespace) -> int:
    from repro.errors import LedgerError, LedgerVerificationError
    from repro.ledger.export import load_ledger

    try:
        ledger = load_ledger(args.path)
    except LedgerVerificationError as error:
        where = (
            f" at block index {error.block_index}"
            if error.block_index is not None
            else ""
        )
        print(f"INVALID{where}: {error}")
        return 1
    except LedgerError as error:
        print(f"INVALID: {error}")
        return 1
    transactions = sum(len(block) for block in ledger)
    valid = sum(
        1
        for block in ledger
        for flag in block.validity.values()
        if flag
    )
    pruned_note = ""
    if ledger.continuity is not None:
        record = ledger.continuity
        transactions += record.txs
        valid += record.valid_txs
        pruned_note = (
            f" ({record.blocks} blocks below height {ledger.first_block_id} "
            "compacted into a verified continuity record)"
        )
    print(f"OK: {ledger.height} blocks, {transactions} transactions "
          f"({valid} valid), chain intact{pruned_note}")
    return 0


def _maybe_save(args: argparse.Namespace, results) -> None:
    """Persist results when --json was given."""
    path = getattr(args, "json", None)
    if not path:
        return
    from repro.analysis import record_from_result, save_records

    records = [
        record_from_result(result, workload=args.workload)
        for result in results
    ]
    save_records(path, records)
    print(f"\nsaved {len(records)} run record(s) to {path}")


COMMANDS = {
    "run": command_run,
    "compare": command_compare,
    "caliper": command_caliper,
    "sweep": command_sweep,
    "profile": command_profile,
    "verify-ledger": command_verify_ledger,
    "chaos": command_chaos,
    "scenario": command_scenario,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
