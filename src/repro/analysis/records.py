"""Durable run records and comparison reports."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.bench.harness import ExperimentResult
from repro.bench.report import format_table, improvement_factor
from repro.errors import ReproError

#: Schema version stamped into saved files; bump on breaking change.
SCHEMA_VERSION = 1


@dataclass
class RunRecord:
    """One experiment run, flattened for persistence."""

    label: str
    workload: str
    duration: float
    seed: int
    params: Dict[str, object] = field(default_factory=dict)
    summary: Dict[str, object] = field(default_factory=dict)
    timeseries: List[Dict[str, object]] = field(default_factory=list)

    @property
    def successful_tps(self) -> float:
        """Headline metric of the run."""
        return float(self.summary.get("successful_tps", 0.0))

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON serialisation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        """Rebuild a record from its JSON form."""
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown RunRecord fields: {sorted(unknown)}")
        return cls(**data)


def record_from_result(
    result: ExperimentResult,
    workload: str,
    bucket_seconds: float = 1.0,
) -> RunRecord:
    """Flatten an :class:`ExperimentResult` into a :class:`RunRecord`."""
    return RunRecord(
        label=result.label,
        workload=workload,
        duration=result.duration,
        seed=result.config.seed,
        params=dict(result.params),
        summary=result.metrics.summary(),
        timeseries=result.metrics.throughput_timeseries(bucket_seconds),
    )


def save_records(path: Union[str, Path], records: Sequence[RunRecord]) -> None:
    """Write ``records`` to ``path`` as JSON."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [record.to_dict() for record in records],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_records(path: Union[str, Path]) -> List[RunRecord]:
    """Read records written by :func:`save_records`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot load run records from {path}: {error}") from error
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema version {payload.get('schema_version')!r}"
        )
    return [RunRecord.from_dict(entry) for entry in payload["records"]]


def comparison_report(
    records: Sequence[RunRecord], baseline_label: str = "Fabric"
) -> str:
    """Render records as a table with factors against ``baseline_label``.

    The baseline for each record is the record with ``baseline_label``
    and the same workload+params; records without a matching baseline
    report a factor of 1 against themselves.
    """
    baselines: Dict[str, RunRecord] = {}
    for record in records:
        if record.label == baseline_label:
            baselines[_comparison_key(record)] = record
    rows = []
    for record in records:
        baseline = baselines.get(_comparison_key(record), record)
        rows.append(
            {
                "label": record.label,
                "workload": record.workload,
                **record.params,
                "successful_tps": record.successful_tps,
                "failed_tps": record.summary.get("failed_tps", 0.0),
                "latency_avg": record.summary.get("latency_avg"),
                f"vs_{baseline_label}": round(
                    improvement_factor(
                        baseline.successful_tps, record.successful_tps
                    ),
                    2,
                ),
            }
        )
    return format_table(rows, title=f"comparison (baseline: {baseline_label})")


def _comparison_key(record: RunRecord) -> str:
    return json.dumps(
        {"workload": record.workload, "params": record.params}, sort_keys=True
    )
