"""Experiment records: persist, reload, and compare benchmark runs.

The benchmark harness produces in-memory metrics; this package turns them
into durable, comparable artefacts:

- :class:`RunRecord` — one run's identity (label, workload, parameters,
  seed) plus its metric summary and throughput time series;
- :func:`save_records` / :func:`load_records` — JSON round trip;
- :func:`comparison_report` — a text report of several records with
  improvement factors against a chosen baseline.
"""

from repro.analysis.records import (
    RunRecord,
    comparison_report,
    load_records,
    record_from_result,
    save_records,
)

__all__ = [
    "RunRecord",
    "comparison_report",
    "load_records",
    "record_from_result",
    "save_records",
]
