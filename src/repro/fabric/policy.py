"""Endorsement policies.

An endorsement policy states which organizations must simulate and sign a
proposal before it may commit (paper Section 2.2.1). Policies are boolean
combinators over organizations, mirroring Fabric's ``AND``/``OR``/
``OutOf`` policy language. The canonical policy of the paper's running
example is ``AND(OrgA, OrgB)`` — "one peer of each involved organization".
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from repro.errors import PolicyError


class EndorsementPolicy:
    """Base class: a predicate over the set of endorsing organizations."""

    def satisfied_by(self, orgs: FrozenSet[str]) -> bool:
        """True if endorsements from ``orgs`` satisfy this policy."""
        raise NotImplementedError

    def required_orgs(self) -> Set[str]:
        """A minimal set of orgs a client should collect endorsements from.

        Clients use this to pick endorsers; validators use
        :meth:`satisfied_by` on whatever arrived.
        """
        raise NotImplementedError

    def mentioned_orgs(self) -> Set[str]:
        """Every org referenced anywhere in the policy tree."""
        raise NotImplementedError


class RequireOrg(EndorsementPolicy):
    """Satisfied iff the named org endorsed."""

    def __init__(self, org: str) -> None:
        self.org = org

    def satisfied_by(self, orgs: FrozenSet[str]) -> bool:
        return self.org in orgs

    def required_orgs(self) -> Set[str]:
        return {self.org}

    def mentioned_orgs(self) -> Set[str]:
        return {self.org}

    def __repr__(self) -> str:
        return f"Org({self.org})"


class AllOrgs(EndorsementPolicy):
    """AND combinator: every sub-policy must be satisfied."""

    def __init__(self, *subpolicies: EndorsementPolicy) -> None:
        if not subpolicies:
            raise PolicyError("AllOrgs requires at least one sub-policy")
        self.subpolicies = _coerce(subpolicies)

    def satisfied_by(self, orgs: FrozenSet[str]) -> bool:
        return all(sub.satisfied_by(orgs) for sub in self.subpolicies)

    def required_orgs(self) -> Set[str]:
        required: Set[str] = set()
        for sub in self.subpolicies:
            required |= sub.required_orgs()
        return required

    def mentioned_orgs(self) -> Set[str]:
        mentioned: Set[str] = set()
        for sub in self.subpolicies:
            mentioned |= sub.mentioned_orgs()
        return mentioned

    def __repr__(self) -> str:
        return "AND(" + ", ".join(map(repr, self.subpolicies)) + ")"


class AnyOrg(EndorsementPolicy):
    """OR combinator: at least one sub-policy must be satisfied."""

    def __init__(self, *subpolicies: EndorsementPolicy) -> None:
        if not subpolicies:
            raise PolicyError("AnyOrg requires at least one sub-policy")
        self.subpolicies = _coerce(subpolicies)

    def satisfied_by(self, orgs: FrozenSet[str]) -> bool:
        return any(sub.satisfied_by(orgs) for sub in self.subpolicies)

    def required_orgs(self) -> Set[str]:
        # The cheapest choice: the sub-policy with the fewest requirements.
        return min((sub.required_orgs() for sub in self.subpolicies), key=len)

    def mentioned_orgs(self) -> Set[str]:
        mentioned: Set[str] = set()
        for sub in self.subpolicies:
            mentioned |= sub.mentioned_orgs()
        return mentioned

    def __repr__(self) -> str:
        return "OR(" + ", ".join(map(repr, self.subpolicies)) + ")"


class OutOf(EndorsementPolicy):
    """N-of-M combinator: at least ``count`` sub-policies satisfied."""

    def __init__(self, count: int, subpolicies: Sequence[EndorsementPolicy]) -> None:
        subs = _coerce(subpolicies)
        if not 1 <= count <= len(subs):
            raise PolicyError(
                f"OutOf count {count} out of range for {len(subs)} sub-policies"
            )
        self.count = count
        self.subpolicies = subs

    def satisfied_by(self, orgs: FrozenSet[str]) -> bool:
        satisfied = sum(1 for sub in self.subpolicies if sub.satisfied_by(orgs))
        return satisfied >= self.count

    def required_orgs(self) -> Set[str]:
        cheapest = sorted(
            (sub.required_orgs() for sub in self.subpolicies), key=len
        )
        required: Set[str] = set()
        for orgs in cheapest[: self.count]:
            required |= orgs
        return required

    def mentioned_orgs(self) -> Set[str]:
        mentioned: Set[str] = set()
        for sub in self.subpolicies:
            mentioned |= sub.mentioned_orgs()
        return mentioned

    def __repr__(self) -> str:
        return f"OutOf({self.count}, [" + ", ".join(map(repr, self.subpolicies)) + "])"


def parse_policy_spec(spec: str, orgs: Sequence[str]) -> EndorsementPolicy:
    """Build a policy over ``orgs`` from a compact data-only spec string.

    The spec travels inside :class:`~repro.fabric.config.FabricConfig`
    (picklable, cache-fingerprinted), so sweeps can vary the policy like
    any other knob:

    - ``"all"`` — ``AND`` over every org (the paper's default),
    - ``"any"`` — one org suffices,
    - ``"outof:K"`` — any ``K`` of the orgs (graceful degradation under
      endorser loss: clients commit from the surviving endorsers).
    """
    text = spec.strip().lower()
    if text == "all":
        return AllOrgs(*orgs)
    if text == "any":
        return AnyOrg(*orgs)
    if text.startswith("outof:"):
        try:
            count = int(text.split(":", 1)[1])
        except ValueError as error:
            raise PolicyError(f"bad OutOf count in policy spec {spec!r}") from error
        if not 1 <= count <= len(orgs):
            raise PolicyError(
                f"policy spec {spec!r}: count must be in [1, {len(orgs)}]"
            )
        return OutOf(count, list(orgs))
    raise PolicyError(
        f"unknown policy spec {spec!r} (expected 'all', 'any', or 'outof:K')"
    )


def _coerce(subpolicies: Sequence) -> List[EndorsementPolicy]:
    """Allow bare org-name strings as shorthand for RequireOrg."""
    coerced: List[EndorsementPolicy] = []
    for sub in subpolicies:
        if isinstance(sub, str):
            coerced.append(RequireOrg(sub))
        elif isinstance(sub, EndorsementPolicy):
            coerced.append(sub)
        else:
            raise PolicyError(f"not a policy: {sub!r}")
    return coerced
