"""Pipeline metrics: transaction outcomes, throughput, and latency.

The paper's primary metric is the throughput of successful (valid)
transactions per second, with failed transactions reported alongside
(Figures 7-11) and latency percentiles for the Caliper comparison
(Table 8). :class:`PipelineMetrics` aggregates per-outcome counters and
per-transaction latencies for one run.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.cost import CostBreakdown


class TxOutcome(enum.Enum):
    """Terminal states a fired proposal can reach."""

    #: Validated and applied to the state — a successful transaction.
    COMMITTED = "committed"
    #: Failed the serializability conflict check in the validation phase.
    ABORT_MVCC = "abort_mvcc"
    #: Failed endorsement-policy / signature validation.
    ABORT_POLICY = "abort_policy"
    #: Endorsers returned differing read/write sets; client dropped it.
    ENDORSEMENT_MISMATCH = "endorsement_mismatch"
    #: Fabric++: aborted during simulation on a provably stale read.
    EARLY_ABORT_SIM = "early_abort_sim"
    #: Fabric++: removed by the orderer to break a conflict cycle.
    EARLY_ABORT_CYCLE = "early_abort_cycle"
    #: Fabric++: aborted by the orderer's within-block version check.
    EARLY_ABORT_VERSION = "early_abort_version"
    #: Endorsement collection never satisfied the policy within the
    #: configured deadline and bounded retries (fault-injection runs).
    ENDORSEMENT_TIMEOUT = "endorsement_timeout"
    #: Shed by admission control: the orderer or an endorsing peer
    #: rejected the submission at a full bounded queue and the client
    #: exhausted its rejection retries (backpressure runs).
    OVERLOAD_REJECTED = "overload_rejected"
    #: A failed business intent exhausted the ``max_resubmits`` cap; the
    #: final failure terminates here instead of the generic abort bucket
    #: (resubmitting runs only).
    RESUBMIT_EXHAUSTED = "resubmit_exhausted"
    #: Lockless OCC (``cc_strategy="lockless"``): aborted at commit
    #: because an earlier transaction in the same block already wrote one
    #: of its keys — the first-committer-wins write-write rule of Meir et
    #: al. (arXiv:1911.12711). Fabric's native rule instead lets the
    #: later blind write win, so this outcome only exists under the
    #: lockless strategy.
    ABORT_OCC_WW = "abort_occ_ww"
    #: Cross-channel saga (``repro.channels``) whose two legs split one
    #: commit / one abort. Fabric offers no atomicity across channels, so
    #: the committed leg stays committed and the intent terminates in
    #: this half-done state — recorded at the *fleet* level on sharded
    #: runs (each leg's own outcome is still counted by its channel).
    SAGA_HALF_COMMITTED = "saga_half_committed"

    @property
    def is_success(self) -> bool:
        """True only for committed transactions."""
        return self is TxOutcome.COMMITTED

    @property
    def is_early_abort(self) -> bool:
        """True for aborts that happen before the validation phase."""
        return self in (
            TxOutcome.EARLY_ABORT_SIM,
            TxOutcome.EARLY_ABORT_CYCLE,
            TxOutcome.EARLY_ABORT_VERSION,
        )


@dataclass
class LatencyStats:
    """Latency summary: the Caliper triple of Table 8 plus percentiles."""

    count: int
    minimum: float
    average: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> Optional["LatencyStats"]:
        """Summarise ``samples``; None when empty."""
        if not samples:
            return None
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            # Nearest-rank definition: the smallest sample such that at
            # least ``fraction`` of the data is <= it. Unlike rounding an
            # interpolated index (whose banker's rounding made p50 of two
            # samples the *minimum* and percentiles non-monotone in n),
            # nearest-rank is exact and monotone in the fraction.
            rank = min(len(ordered), math.ceil(fraction * len(ordered)))
            return ordered[max(0, rank - 1)]

        return cls(
            count=len(ordered),
            minimum=ordered[0],
            average=sum(ordered) / len(ordered),
            maximum=ordered[-1],
            p50=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
        )


# -- streaming (O(1)-memory) aggregation ----------------------------------------
#
# Long-horizon runs cannot afford the per-transaction sample lists above:
# hours of simulated time at thousands of TPS means tens of millions of
# floats held until the summary. ``FabricConfig.streaming_metrics``
# (default off, bit-identical when off) swaps them for the bounded
# aggregates below — exact counters for everything the paper reports as
# an average or a total, and a seeded reservoir for the latency
# percentiles (approximate within O(1/sqrt(capacity)); count, min, mean
# and max stay exact). See ``docs/longruns.md`` for the accuracy bounds.

#: Latency samples retained for streaming percentile estimation.
STREAMING_RESERVOIR_CAPACITY = 4096

#: Throughput-timeseries buckets retained before the bucket width doubles.
STREAMING_BUCKET_LIMIT = 512

#: Salt separating the reservoir's replacement stream from every other
#: seeded stream (metrics must never perturb simulation randomness).
STREAMING_SEED_SALT = 0x57E3


class StreamingLatency:
    """Online latency aggregation with a seeded bounded reservoir.

    Count, sum, minimum and maximum are exact; percentiles come from a
    uniform random sample of ``capacity`` values (Vitter's algorithm R),
    so they are exact until ``capacity`` samples have been seen and
    approximate afterwards. The reservoir's replacement decisions use a
    private seeded stream, so identical runs produce identical summaries.
    """

    __slots__ = (
        "seed",
        "capacity",
        "count",
        "total",
        "minimum",
        "maximum",
        "samples",
        "_random",
    )

    def __init__(
        self, seed: int, capacity: int = STREAMING_RESERVOIR_CAPACITY
    ) -> None:
        self.seed = seed
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples: List[float] = []
        self._random = random.Random(seed)

    def add(self, value: float) -> None:
        """Fold one latency sample into the aggregate."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
        else:
            slot = self._random.randrange(self.count)
            if slot < self.capacity:
                self.samples[slot] = value

    def merge(self, other: "StreamingLatency") -> None:
        """Fold another stream's aggregate in (fleet aggregation).

        Exact fields combine exactly. The merged reservoir keeps at most
        ``capacity`` values: evenly spaced order statistics of the
        combined sample — a deterministic, distribution-preserving
        down-sample (no RNG draw, so merging never perturbs the
        per-channel streams).
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound
        combined = sorted(self.samples + other.samples)
        if len(combined) > self.capacity:
            step = len(combined) / self.capacity
            combined = [
                combined[min(len(combined) - 1, int((i + 0.5) * step))]
                for i in range(self.capacity)
            ]
        self.samples = combined

    def stats(self) -> Optional[LatencyStats]:
        """Latency summary; percentiles from the reservoir, rest exact."""
        if not self.count:
            return None
        stats = LatencyStats.from_samples(self.samples)
        stats.count = self.count
        stats.minimum = self.minimum
        stats.average = self.total / self.count
        stats.maximum = self.maximum
        return stats

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping (summary-grade: the
        replacement stream is reseeded on load, so a deserialised
        aggregate reports identically but must not keep recording)."""
        return {
            "seed": self.seed,
            "capacity": self.capacity,
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingLatency":
        """Rebuild from :meth:`to_dict` output."""
        stream = cls(seed=data["seed"], capacity=data["capacity"])
        stream.count = data["count"]
        stream.total = data["total"]
        stream.minimum = data["minimum"]
        stream.maximum = data["maximum"]
        stream.samples = list(data["samples"])
        return stream


class StreamingWindow:
    """Bounded outcome-time aggregation: exact windowed counts plus a
    bucket histogram whose width doubles once the bucket budget is hit.

    Replaces the unbounded ``outcome_times`` list. The windowed
    success/failure counters (outcomes at simulated time <= the
    measurement window) are exact — they feed the headline TPS numbers.
    The per-bucket histogram behind ``throughput_timeseries`` holds at
    most ``limit`` buckets: when an outcome lands past the last bucket,
    the width doubles and adjacent buckets fold pairwise, so resolution
    degrades gracefully instead of memory growing with the horizon.
    """

    __slots__ = (
        "width",
        "limit",
        "window_end",
        "windowed_success",
        "windowed_fail",
        "success",
        "fail",
    )

    def __init__(
        self, width: float = 1.0, limit: int = STREAMING_BUCKET_LIMIT
    ) -> None:
        self.width = width
        self.limit = limit
        #: Measurement window; set by the harness before traffic starts.
        self.window_end: Optional[float] = None
        self.windowed_success = 0
        self.windowed_fail = 0
        self.success: List[int] = []
        self.fail: List[int] = []

    def observe(self, now: float, is_success: bool) -> None:
        """Fold one timestamped outcome into the aggregate."""
        end = self.window_end
        if end is not None and now > end:
            # Drain-period outcome: excluded from the windowed counters
            # and the timeseries, exactly like the non-streaming path.
            return
        if is_success:
            self.windowed_success += 1
        else:
            self.windowed_fail += 1
        index = int(now / self.width)
        while index >= self.limit:
            self._coalesce()
            index = int(now / self.width)
        while len(self.success) <= index:
            self.success.append(0)
            self.fail.append(0)
        if is_success:
            self.success[index] += 1
        else:
            self.fail[index] += 1

    def _coalesce(self) -> None:
        """Double the bucket width, folding adjacent buckets pairwise."""
        self.width *= 2.0
        self.success = [
            sum(self.success[i : i + 2])
            for i in range(0, len(self.success), 2)
        ]
        self.fail = [
            sum(self.fail[i : i + 2]) for i in range(0, len(self.fail), 2)
        ]

    def merge(self, other: "StreamingWindow") -> None:
        """Fold another window in, reconciling bucket widths first.

        Widths are power-of-two multiples of the initial width, so the
        wider stream's buckets map exactly onto the narrower one's after
        coalescing — the merged histogram equals the one a single stream
        would have built from the union of outcomes.
        """
        while self.width < other.width:
            self._coalesce()
        for index in range(len(other.success)):
            target = int(index * other.width / self.width)
            while len(self.success) <= target:
                self.success.append(0)
                self.fail.append(0)
            self.success[target] += other.success[index]
            self.fail[target] += other.fail[index]
        self.windowed_success += other.windowed_success
        self.windowed_fail += other.windowed_fail
        if other.window_end is not None:
            if self.window_end is None or other.window_end > self.window_end:
                self.window_end = other.window_end

    def timeseries(self, duration: float) -> List[Dict[str, object]]:
        """Per-bucket throughput rows at the window's native width."""
        if duration <= 0:
            return []
        count = max(1, math.ceil(round(duration / self.width, 9)))
        rows = []
        for index in range(count):
            successes = self.success[index] if index < len(self.success) else 0
            failures = self.fail[index] if index < len(self.fail) else 0
            rows.append(
                {
                    "t": round((index + 1) * self.width, 3),
                    "successful_tps": successes / self.width,
                    "failed_tps": failures / self.width,
                }
            )
        return rows

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping."""
        return {
            "width": self.width,
            "limit": self.limit,
            "window_end": self.window_end,
            "windowed_success": self.windowed_success,
            "windowed_fail": self.windowed_fail,
            "success": list(self.success),
            "fail": list(self.fail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingWindow":
        """Rebuild from :meth:`to_dict` output."""
        window = cls(width=data["width"], limit=data["limit"])
        window.window_end = data["window_end"]
        window.windowed_success = data["windowed_success"]
        window.windowed_fail = data["windowed_fail"]
        window.success = list(data["success"])
        window.fail = list(data["fail"])
        return window


class StreamingMetrics:
    """The full O(1)-memory aggregate behind ``streaming_metrics``.

    Groups the latency reservoir, the windowed outcome counters and
    bucket histogram, the per-phase latency sums, and the block-size
    total — everything :class:`PipelineMetrics` otherwise keeps as
    unbounded per-transaction lists.
    """

    __slots__ = ("latency", "window", "phase_count", "phase_sums", "block_total")

    def __init__(self, seed: int = 0) -> None:
        self.latency = StreamingLatency(seed)
        self.window = StreamingWindow()
        self.phase_count = 0
        self.phase_sums = [0.0, 0.0, 0.0]
        self.block_total = 0

    def set_window(self, duration: float) -> None:
        """Pin the measurement window (harness calls this at run start)."""
        self.window.window_end = duration

    def merge(self, other: "StreamingMetrics") -> None:
        """Fold another channel's aggregate in (fleet aggregation)."""
        self.latency.merge(other.latency)
        self.window.merge(other.window)
        self.phase_count += other.phase_count
        for index in range(3):
            self.phase_sums[index] += other.phase_sums[index]
        self.block_total += other.block_total

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping."""
        return {
            "latency": self.latency.to_dict(),
            "window": self.window.to_dict(),
            "phase_count": self.phase_count,
            "phase_sums": list(self.phase_sums),
            "block_total": self.block_total,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingMetrics":
        """Rebuild from :meth:`to_dict` output."""
        streaming = cls()
        streaming.latency = StreamingLatency.from_dict(data["latency"])
        streaming.window = StreamingWindow.from_dict(data["window"])
        streaming.phase_count = data["phase_count"]
        streaming.phase_sums = list(data["phase_sums"])
        streaming.block_total = data["block_total"]
        return streaming


@dataclass
class ValidationStats:
    """Validation-pipeline counters collected at the reference peer.

    Only attached when the run uses a non-default concurrency-control
    strategy (``repro.validation``); default (legacy serial) runs leave
    :attr:`PipelineMetrics.validation` as ``None`` so their metric
    snapshots stay byte-identical to pre-pipeline builds.
    """

    #: Configuration the stats were collected under.
    workers: int
    scheduler: str
    pipeline_depth: int
    #: Registry name of the CC strategy that collected the stats
    #: (``repro.validation.registry``). Empty in snapshots written
    #: before the registry existed; :meth:`from_dict` then falls back to
    #: ``scheduler``, which named the only strategies of that era.
    strategy: str = ""
    #: Blocks / transactions committed through the pipeline.
    blocks: int = 0
    txs: int = 0
    #: Sum over blocks of the number of sequential MVCC waves — the
    #: block's critical-path length. For the serial scheduler this equals
    #: ``txs``; the dependency scheduler's gap between the two is exactly
    #: the parallelism it extracted.
    critical_path_total: int = 0
    #: Verification tasks executed on the worker lanes.
    verify_tasks: int = 0
    #: Total seconds tasks waited between submission and execution.
    queue_delay_total: float = 0.0
    #: Per-lane busy seconds (the utilisation numerator).
    lane_busy: List[float] = field(default_factory=list)
    #: Simulated time of the last pipeline commit. Lane busy time keeps
    #: accumulating through the drain window, past the measurement
    #: duration — utilisation divides by whichever horizon is longer.
    horizon: float = 0.0

    def avg_critical_path(self) -> float:
        """Mean sequential MVCC waves per committed block."""
        return self.critical_path_total / self.blocks if self.blocks else 0.0

    def parallelism_factor(self) -> float:
        """Transactions per sequential wave (1.0 = fully serial)."""
        if not self.critical_path_total:
            return 0.0
        return self.txs / self.critical_path_total

    def avg_queue_delay(self) -> float:
        """Mean seconds a verify task waited for a lane + core."""
        return (
            self.queue_delay_total / self.verify_tasks
            if self.verify_tasks
            else 0.0
        )

    def worker_utilisation(self, duration: float) -> float:
        """Mean busy fraction of the worker lanes over ``duration``."""
        horizon = max(duration, self.horizon)
        if horizon <= 0 or not self.lane_busy:
            return 0.0
        return sum(self.lane_busy) / (len(self.lane_busy) * horizon)

    def summary(self, duration: float) -> Dict[str, object]:
        """Flat dict of the headline pipeline numbers."""
        return {
            "workers": self.workers,
            "scheduler": self.scheduler,
            "pipeline_depth": self.pipeline_depth,
            "strategy": self.strategy or self.scheduler,
            "blocks": self.blocks,
            "txs": self.txs,
            "avg_critical_path": round(self.avg_critical_path(), 2),
            "parallelism_factor": round(self.parallelism_factor(), 2),
            "avg_queue_delay": round(self.avg_queue_delay(), 6),
            "worker_utilisation": round(self.worker_utilisation(duration), 4),
        }

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping."""
        return {
            "workers": self.workers,
            "scheduler": self.scheduler,
            "pipeline_depth": self.pipeline_depth,
            "strategy": self.strategy,
            "blocks": self.blocks,
            "txs": self.txs,
            "critical_path_total": self.critical_path_total,
            "verify_tasks": self.verify_tasks,
            "queue_delay_total": self.queue_delay_total,
            "lane_busy": list(self.lane_busy),
            "horizon": self.horizon,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ValidationStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            workers=data["workers"],
            scheduler=data["scheduler"],
            pipeline_depth=data["pipeline_depth"],
            strategy=data.get("strategy", data["scheduler"]),
            blocks=data["blocks"],
            txs=data["txs"],
            critical_path_total=data["critical_path_total"],
            verify_tasks=data["verify_tasks"],
            queue_delay_total=data["queue_delay_total"],
            lane_busy=list(data["lane_busy"]),
            horizon=data.get("horizon", 0.0),
        )


@dataclass
class ConsensusStats:
    """Ordering-cluster counters for one replicated run.

    Only attached when ``FabricConfig.orderer_nodes > 1``; single-orderer
    runs leave :attr:`PipelineMetrics.consensus` as ``None`` so their
    metric snapshots stay byte-identical to pre-consensus builds.
    """

    #: Nodes in the ordering cluster.
    nodes: int = 0
    #: Elections started (candidacies, including split-vote retries).
    elections_started: int = 0
    #: Leadership wins across every channel's Raft group.
    leader_changes: int = 0
    #: Highest Raft term reached by any group.
    max_term: int = 0
    #: Consensus messages sent / lost to crashes and partitions.
    messages_sent: int = 0
    messages_dropped: int = 0
    #: Batch entries proposed by leaders / applied after quorum commit.
    entries_proposed: int = 0
    entries_committed: int = 0
    #: Pending transactions re-queued on a leadership change.
    txs_reproposed: int = 0
    #: Transactions whose second committed occurrence (failover double
    #: proposal) was suppressed by apply-time dedup.
    duplicate_txs_suppressed: int = 0

    def summary(self) -> Dict[str, object]:
        """Flat dict of the headline consensus numbers."""
        return {
            "nodes": self.nodes,
            "elections_started": self.elections_started,
            "leader_changes": self.leader_changes,
            "max_term": self.max_term,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "entries_proposed": self.entries_proposed,
            "entries_committed": self.entries_committed,
            "txs_reproposed": self.txs_reproposed,
            "duplicate_txs_suppressed": self.duplicate_txs_suppressed,
        }

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping."""
        return self.summary()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ConsensusStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class OverloadStats:
    """Admission-control counters for one backpressure-enabled run.

    Only attached when a queue bound is configured
    (``FabricConfig.backpressure``); default unbounded runs leave
    :attr:`PipelineMetrics.overload` as ``None`` so their metric
    snapshots stay byte-identical to pre-backpressure builds.
    """

    #: The configured bounds the stats were collected under.
    orderer_queue_limit: int = 0
    endorse_queue_limit: int = 0
    #: Transactions offered to the ordering service (accepted + rejected).
    submissions: int = 0
    #: Submissions refused at a full orderer queue.
    orderer_rejections: int = 0
    #: Endorsement requests refused at a saturated peer.
    endorse_rejections: int = 0
    #: Client retries triggered by a rejection (before shedding).
    client_retries: int = 0
    #: Transactions shed after exhausting rejection retries
    #: (== the ``overload_rejected`` outcome count).
    txs_shed: int = 0
    #: Orderer inbound queue depth: peak and per-submission sum (the
    #: average divides by ``submissions``).
    queue_depth_peak: int = 0
    queue_depth_sum: int = 0
    #: Peak concurrent endorsement requests at any peer.
    endorse_inflight_peak: int = 0
    #: Simulated seconds the orderer spent paused because a peer's
    #: delivered-block backlog sat at ``delivery_backlog_limit``.
    delivery_stall_seconds: float = 0.0

    def rejection_rate(self) -> float:
        """Fraction of orderer submissions refused at the queue."""
        if not self.submissions:
            return 0.0
        return self.orderer_rejections / self.submissions

    def avg_queue_depth(self) -> float:
        """Mean orderer queue depth observed at submission time."""
        if not self.submissions:
            return 0.0
        return self.queue_depth_sum / self.submissions

    def summary(self) -> Dict[str, object]:
        """Flat dict of the headline overload numbers."""
        return {
            "orderer_queue_limit": self.orderer_queue_limit,
            "endorse_queue_limit": self.endorse_queue_limit,
            "submissions": self.submissions,
            "orderer_rejections": self.orderer_rejections,
            "endorse_rejections": self.endorse_rejections,
            "client_retries": self.client_retries,
            "txs_shed": self.txs_shed,
            "rejection_rate": round(self.rejection_rate(), 4),
            "queue_depth_peak": self.queue_depth_peak,
            "avg_queue_depth": round(self.avg_queue_depth(), 2),
            "endorse_inflight_peak": self.endorse_inflight_peak,
            "delivery_stall_seconds": round(self.delivery_stall_seconds, 4),
        }

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping (raw counters only)."""
        return {
            "orderer_queue_limit": self.orderer_queue_limit,
            "endorse_queue_limit": self.endorse_queue_limit,
            "submissions": self.submissions,
            "orderer_rejections": self.orderer_rejections,
            "endorse_rejections": self.endorse_rejections,
            "client_retries": self.client_retries,
            "txs_shed": self.txs_shed,
            "queue_depth_peak": self.queue_depth_peak,
            "queue_depth_sum": self.queue_depth_sum,
            "endorse_inflight_peak": self.endorse_inflight_peak,
            "delivery_stall_seconds": self.delivery_stall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OverloadStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class SagaStats:
    """Cross-channel saga accounting for one sharded run.

    A saga is one business intent split into a home-channel leg and a
    remote-channel leg, submitted independently — Fabric guarantees no
    atomicity across channels, and neither does this model. Every
    started saga terminates in exactly one of the three buckets; the
    ``half_committed`` count equals the fleet's
    ``saga_half_committed`` outcome count.
    """

    #: Sagas launched (home + remote leg fired).
    started: int = 0
    #: Both legs committed.
    committed: int = 0
    #: Exactly one leg committed — the honest non-atomic failure mode.
    half_committed: int = 0
    #: Neither leg committed.
    aborted: int = 0

    @property
    def finished(self) -> int:
        """Sagas whose both legs reached a terminal outcome."""
        return self.committed + self.half_committed + self.aborted

    def summary(self) -> Dict[str, object]:
        """Flat dict of the saga counters."""
        return {
            "started": self.started,
            "committed": self.committed,
            "half_committed": self.half_committed,
            "aborted": self.aborted,
        }

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping."""
        return self.summary()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SagaStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class ChannelFleetStats:
    """Per-channel breakdown of a sharded (``channels >= 2``) run.

    Only attached by ``repro.channels``; single-runtime runs leave
    :attr:`PipelineMetrics.channels` as ``None`` so their metric
    snapshots stay byte-identical to pre-channel builds. Each entry of
    :attr:`per_channel` is a flat, JSON-ready row (channel name, fired /
    successful / failed counts, windowed TPS, blocks, CC strategy).
    """

    #: Number of sharded channel runtimes.
    channels: int = 0
    #: One compact summary row per channel, in channel order.
    per_channel: List[Dict[str, object]] = field(default_factory=list)
    #: Cross-channel saga accounting (all-zero when the run fired none).
    saga: SagaStats = field(default_factory=SagaStats)

    def summary(self) -> Dict[str, object]:
        """Flat dict of the headline fleet numbers."""
        return {
            "channels": self.channels,
            "per_channel": [dict(row) for row in self.per_channel],
            "saga": self.saga.summary(),
        }

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON round-tripping."""
        return self.summary()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChannelFleetStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            channels=data["channels"],
            per_channel=[dict(row) for row in data["per_channel"]],
            saga=SagaStats.from_dict(data["saga"]),
        )


@dataclass
class PipelineMetrics:
    """Counters and latency samples for one simulated run."""

    outcomes: Dict[TxOutcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in TxOutcome}
    )
    #: Latencies (proposal submission -> commit) of successful txs.
    commit_latencies: List[float] = field(default_factory=list)
    #: Timestamped outcomes: (simulated time, outcome).
    outcome_times: List[tuple] = field(default_factory=list)
    #: Per-phase latencies (endorse, order, validate) of committed txs.
    phase_latencies: List[tuple] = field(default_factory=list)
    #: Number of proposals fired by clients.
    fired: int = 0
    #: Number of blocks committed (at the reference peer).
    blocks_committed: int = 0
    #: Histogram of block sizes (transactions per block) at commit.
    block_sizes: List[int] = field(default_factory=list)
    #: Measurement window in simulated seconds (set by the harness).
    #: Throughput counts only outcomes that occurred *inside* the window,
    #: so a backlog resolving during the post-run drain does not inflate
    #: the reported rate — matching the paper's steady-state averages.
    duration: float = 0.0
    #: Sparse fault counters (crashes, recoveries, messages_dropped,
    #: endorsement_timeouts, endorsement_retries, resubmit_capped,
    #: orderer_stalls, blocks_caught_up). Empty on healthy runs.
    fault_counters: Dict[str, int] = field(default_factory=dict)
    #: Timestamped fault events: (simulated time, kind, subject), e.g.
    #: ``(0.5, "crash", "peer1.OrgA")``. Empty on healthy runs.
    fault_events: List[tuple] = field(default_factory=list)
    #: Figure 1-style per-resource cost attribution. Set only by traced
    #: runs; None (and absent from summaries) otherwise, so untraced
    #: result rows are byte-identical to pre-trace builds.
    cost_breakdown: Optional[CostBreakdown] = None
    #: Validation-pipeline stats. Set only when the run used the modelled
    #: ``repro.validation`` pipeline; None (and absent from summaries)
    #: on legacy serial runs — the same conditional-key discipline as
    #: ``cost_breakdown``.
    validation: Optional[ValidationStats] = None
    #: Replicated-ordering stats. Set only when the run used the Raft
    #: cluster (``orderer_nodes > 1``); None (and absent from summaries)
    #: on single-orderer runs.
    consensus: Optional[ConsensusStats] = None
    #: Admission-control stats. Set only when a queue bound is configured
    #: (``FabricConfig.backpressure``); None (and absent from summaries)
    #: on unbounded runs.
    overload: Optional[OverloadStats] = None
    #: Per-channel fleet stats. Set only by sharded runs
    #: (``FabricConfig.channels >= 2``, ``repro.channels``); None (and
    #: absent from summaries) on single-runtime runs.
    channels: Optional[ChannelFleetStats] = None
    #: O(1)-memory aggregates. Set only when the run enabled
    #: ``FabricConfig.streaming_metrics``; None (and absent from metric
    #: snapshots) otherwise, so default runs stay byte-identical to
    #: pre-streaming builds. While set, the per-transaction lists above
    #: (``commit_latencies``, ``outcome_times``, ``phase_latencies``,
    #: ``block_sizes``) stay empty.
    streaming: Optional[StreamingMetrics] = None

    def enable_streaming(self, seed: int = 0) -> StreamingMetrics:
        """Switch this metrics object to O(1)-memory streaming mode.

        Must happen before any sample is recorded; the seed feeds the
        latency reservoir's replacement stream (use ``mix_seed(seed,
        STREAMING_SEED_SALT, ...)`` so it is independent of simulation
        randomness).
        """
        self.streaming = StreamingMetrics(seed)
        return self.streaming

    def record_fired(self) -> None:
        """Count one fired proposal."""
        self.fired += 1

    def record_outcome(
        self,
        outcome: TxOutcome,
        latency: Optional[float] = None,
        now: Optional[float] = None,
    ) -> None:
        """Count a terminal outcome, with latency for committed txs."""
        self.outcomes[outcome] += 1
        streaming = self.streaming
        if streaming is not None:
            if now is not None:
                streaming.window.observe(now, outcome.is_success)
            if outcome.is_success and latency is not None:
                streaming.latency.add(latency)
            return
        if now is not None:
            self.outcome_times.append((now, outcome))
        if outcome.is_success and latency is not None:
            self.commit_latencies.append(latency)

    def _windowed(self, want_success: bool) -> int:
        """Outcomes inside the measurement window (fallback: totals)."""
        streaming = self.streaming
        if streaming is not None and streaming.window.window_end is not None:
            window = streaming.window
            return window.windowed_success if want_success else window.windowed_fail
        if not self.outcome_times:
            return self.successful if want_success else self.failed
        return sum(
            1
            for time, outcome in self.outcome_times
            if time <= self.duration and outcome.is_success == want_success
        )

    def record_fault(self, counter: str, amount: int = 1) -> None:
        """Bump one of the sparse fault counters."""
        self.fault_counters[counter] = self.fault_counters.get(counter, 0) + amount

    def record_fault_event(self, now: float, kind: str, subject: str) -> None:
        """Append one entry to the crash/recovery/stall event log."""
        self.fault_events.append((now, kind, subject))

    def record_block(self, num_transactions: int) -> None:
        """Count a committed block."""
        self.blocks_committed += 1
        if self.streaming is not None:
            self.streaming.block_total += num_transactions
        else:
            self.block_sizes.append(num_transactions)

    def record_phases(
        self, endorse: float, order: float, validate: float
    ) -> None:
        """Record one committed transaction's per-phase latencies.

        ``endorse`` spans proposal submission to transaction assembly;
        ``order`` spans assembly to block cut; ``validate`` spans cut to
        commit at the reference peer.
        """
        streaming = self.streaming
        if streaming is not None:
            streaming.phase_count += 1
            sums = streaming.phase_sums
            sums[0] += endorse
            sums[1] += order
            sums[2] += validate
            return
        self.phase_latencies.append((endorse, order, validate))

    def phase_breakdown(self) -> Optional[Dict[str, float]]:
        """Average seconds spent per pipeline phase (committed txs).

        Answers "where does commit latency live": the paper's latency win
        (Table 8) comes mostly out of the ordering + validation phases,
        which early abort keeps short.
        """
        streaming = self.streaming
        if streaming is not None:
            if not streaming.phase_count:
                return None
            count = streaming.phase_count
            return {
                "endorse": streaming.phase_sums[0] / count,
                "order": streaming.phase_sums[1] / count,
                "validate": streaming.phase_sums[2] / count,
            }
        if not self.phase_latencies:
            return None
        count = len(self.phase_latencies)
        return {
            "endorse": sum(sample[0] for sample in self.phase_latencies) / count,
            "order": sum(sample[1] for sample in self.phase_latencies) / count,
            "validate": sum(sample[2] for sample in self.phase_latencies) / count,
        }

    # -- derived figures -----------------------------------------------------

    @property
    def successful(self) -> int:
        """Total committed transactions."""
        return self.outcomes[TxOutcome.COMMITTED]

    @property
    def failed(self) -> int:
        """Total transactions that terminated unsuccessfully."""
        return sum(
            count
            for outcome, count in self.outcomes.items()
            if not outcome.is_success
        )

    @property
    def resolved(self) -> int:
        """Total proposals that reached any terminal state."""
        return self.successful + self.failed

    def successful_tps(self) -> float:
        """Average successful transactions per second over the window."""
        if self.duration <= 0:
            return 0.0
        return self._windowed(want_success=True) / self.duration

    def failed_tps(self) -> float:
        """Average failed transactions per second over the window."""
        if self.duration <= 0:
            return 0.0
        return self._windowed(want_success=False) / self.duration

    def total_tps(self) -> float:
        """Average resolved transactions per second over the window."""
        return self.successful_tps() + self.failed_tps()

    def latency(self) -> Optional[LatencyStats]:
        """Latency summary over committed transactions.

        Streaming runs report exact count/min/avg/max and
        reservoir-estimated percentiles (see :class:`StreamingLatency`).
        """
        if self.streaming is not None:
            return self.streaming.latency.stats()
        return LatencyStats.from_samples(self.commit_latencies)

    def average_block_size(self) -> float:
        """Mean transactions per committed block."""
        if self.streaming is not None:
            if not self.blocks_committed:
                return 0.0
            return self.streaming.block_total / self.blocks_committed
        if not self.block_sizes:
            return 0.0
        return sum(self.block_sizes) / len(self.block_sizes)

    def throughput_timeseries(
        self, bucket_seconds: float = 1.0
    ) -> List[Dict[str, object]]:
        """Per-bucket successful/failed throughput over the run.

        Buckets cover ``[0, duration)``; outcomes during the drain period
        are excluded, matching the windowed averages. Useful to inspect
        warm-up and stability of a run.

        Streaming runs return the bounded histogram at its native bucket
        width (which doubles on very long horizons — see
        :class:`StreamingWindow`); ``bucket_seconds`` is ignored there.
        """
        if self.duration <= 0 or bucket_seconds <= 0:
            return []
        if self.streaming is not None:
            return self.streaming.window.timeseries(self.duration)
        bucket_count = max(1, int(round(self.duration / bucket_seconds)))
        successes = [0] * bucket_count
        failures = [0] * bucket_count
        for time, outcome in self.outcome_times:
            if time > self.duration:
                continue
            index = min(bucket_count - 1, int(time / bucket_seconds))
            if outcome.is_success:
                successes[index] += 1
            else:
                failures[index] += 1
        return [
            {
                "t": round((index + 1) * bucket_seconds, 3),
                "successful_tps": successes[index] / bucket_seconds,
                "failed_tps": failures[index] / bucket_seconds,
            }
            for index in range(bucket_count)
        ]

    def commit_availability(self, bucket_seconds: float = 1.0) -> float:
        """Fraction of measurement-window buckets with >= 1 commit.

        The paper's figures average over a healthy run; under fault
        injection this is the complementary number — how much of the run
        the commit pipeline stayed live. 1.0 means successful TPS never
        hit zero for a whole bucket.
        """
        series = self.throughput_timeseries(bucket_seconds)
        if not series:
            return 0.0
        live = sum(1 for entry in series if entry["successful_tps"] > 0)
        return live / len(series)

    def fault_summary(self) -> Dict[str, object]:
        """Fault counters plus derived availability, for reports.

        Empty when the run injected nothing, so healthy summaries are
        unchanged.
        """
        if not self.fault_counters and not self.fault_events:
            return {}
        summary: Dict[str, object] = dict(sorted(self.fault_counters.items()))
        summary["fault_events"] = len(self.fault_events)
        summary["commit_availability"] = round(self.commit_availability(), 3)
        return summary

    def summary(self) -> Dict[str, object]:
        """A flat dict of the headline numbers (for reports and tests)."""
        latency = self.latency()
        summary = {
            "fired": self.fired,
            "successful": self.successful,
            "failed": self.failed,
            "successful_tps": round(self.successful_tps(), 2),
            "failed_tps": round(self.failed_tps(), 2),
            "total_tps": round(self.total_tps(), 2),
            "blocks": self.blocks_committed,
            "avg_block_size": round(self.average_block_size(), 1),
            "latency_avg": round(latency.average, 4) if latency else None,
            "latency_min": round(latency.minimum, 4) if latency else None,
            "latency_max": round(latency.maximum, 4) if latency else None,
            "outcomes": {
                outcome.value: count
                for outcome, count in self.outcomes.items()
                if count
            },
        }
        faults = self.fault_summary()
        if faults:
            summary["faults"] = faults
        if self.cost_breakdown is not None:
            # Compact enough for a table cell; the full per-resource dict
            # travels via results.metrics_to_dict instead.
            share = self.cost_breakdown.crypto_network_share()
            summary["crypto_network_share"] = round(share, 4)
        if self.validation is not None:
            summary["validation"] = self.validation.summary(self.duration)
        if self.consensus is not None:
            summary["consensus"] = self.consensus.summary()
        if self.overload is not None:
            summary["overload"] = self.overload.summary()
        if self.channels is not None:
            summary["channels"] = self.channels.summary()
        return summary
