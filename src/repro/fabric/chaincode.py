"""The chaincode (smart contract) programming API.

A chaincode is an arbitrary program executed speculatively during the
simulation phase. It interacts with the current state only through the
:class:`ChaincodeStub` — ``get_state`` / ``put_state`` / ``del_state`` —
which records every access into a read/write set instead of mutating state
(paper Section 2.2.1).

Two stub behaviours model the two systems:

- **vanilla**: the stub reads a :class:`~repro.ledger.state_db.StateSnapshot`
  taken under the peer's shared read lock — the simulation can never observe
  a concurrent commit, but the whole snapshot may be stale by commit time.
- **Fabric++**: the stub reads the *live* store while validation runs in
  parallel; every read compares the value's block id against the block
  height observed when simulation started and raises :class:`StaleRead` as
  soon as the transaction provably lost (paper Section 5.2.1, Figure 6).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import ChaincodeError, ReproError
from repro.fabric.rwset import ReadWriteSet
from repro.ledger.state_db import StateDatabase, StateSnapshot


class StaleRead(ReproError):
    """A Fabric++ simulation read a value newer than its start snapshot.

    Raising aborts the simulation immediately — the transaction could
    never pass validation, so the endorser stops working on it and the
    client learns about the abort without waiting for the full pipeline.
    """

    def __init__(self, key: str, read_block_id: int, start_block_id: int) -> None:
        super().__init__(
            f"read of {key!r} at block {read_block_id} is newer than the "
            f"simulation start block {start_block_id}"
        )
        self.key = key
        self.read_block_id = read_block_id
        self.start_block_id = start_block_id


class ChaincodeStub:
    """The state interface handed to an executing chaincode."""

    def __init__(
        self,
        state: Union[StateDatabase, StateSnapshot],
        start_block_id: Optional[int] = None,
    ) -> None:
        """Create a stub over ``state``.

        ``start_block_id`` enables Fabric++'s per-read staleness check:
        pass the ledger height observed at simulation start. ``None``
        (vanilla) disables the check — appropriate when ``state`` is an
        isolated snapshot.
        """
        self._state = state
        self._start_block_id = start_block_id
        self.rwset = ReadWriteSet()
        #: State operations performed through this stub (trace span detail).
        self.operations = 0

    def get_state(self, key: str) -> object:
        """Read ``key`` from the current state, recording the read.

        Returns None if the key does not exist. Fabric semantics: reads
        always observe committed state, never the transaction's own
        pending writes.
        """
        self.operations += 1
        entry = self._state.get(key)
        if entry is None:
            self.rwset.record_read(key, None)
            return None
        if (
            self._start_block_id is not None
            and entry.version.block_id > self._start_block_id
        ):
            raise StaleRead(key, entry.version.block_id, self._start_block_id)
        self.rwset.record_read(key, entry.version)
        return entry.value

    def get_state_by_range(self, start_key: str, end_key=None):
        """Scan ``[start_key, end_key)``; returns a list of (key, value).

        Records a :class:`~repro.fabric.rwset.RangeRead` carrying the
        exact observed (key, version) results, so the validation phase can
        detect phantom inserts/deletes as well as updates within the
        range. Tombstoned (deleted) keys are excluded from the result but
        *included* in the recorded versions — their disappearance or
        resurrection must invalidate the scan just like any other change.
        """
        from repro.fabric.rwset import RangeRead

        self.operations += 1
        scan = getattr(self._state, "range_scan", None)
        if scan is None:
            raise ChaincodeError("this state view does not support range scans")
        results = []
        payload = []
        for key, entry in scan(start_key, end_key):
            if (
                self._start_block_id is not None
                and entry.version.block_id > self._start_block_id
            ):
                raise StaleRead(key, entry.version.block_id, self._start_block_id)
            results.append((key, entry.version))
            if not isinstance(entry.value, Tombstone):
                payload.append((key, entry.value))
        self.rwset.record_range_read(
            RangeRead(start_key, end_key, tuple(results))
        )
        return payload

    def put_state(self, key: str, value: object) -> None:
        """Buffer a write of ``value`` to ``key`` into the write set."""
        if value is None:
            raise ChaincodeError("cannot put None; use del_state()")
        self.operations += 1
        self.rwset.record_write(key, value)

    def del_state(self, key: str) -> None:
        """Buffer a deletion of ``key`` (modelled as a tombstone write)."""
        self.operations += 1
        self.rwset.record_write(key, Tombstone())


class Tombstone:
    """Marker value representing a deleted key in a write set."""

    def __repr__(self) -> str:
        return "<deleted>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Tombstone)

    def __hash__(self) -> int:
        return hash(Tombstone)


class Chaincode:
    """Base class for smart contracts.

    Subclasses implement :meth:`invoke`, reading and writing exclusively
    through the stub. ``name`` identifies the chaincode on its channel;
    ``op_count`` estimates the number of state operations per invocation
    and feeds the simulated execution-time cost model.
    """

    #: Channel-unique chaincode name; subclasses must override.
    name = "chaincode"

    def invoke(self, stub: ChaincodeStub, function: str, args: tuple) -> object:
        """Execute ``function(args)`` against the stub; return app payload."""
        raise NotImplementedError

    def init(self, stub: ChaincodeStub) -> None:
        """Optional state seeding hook (populates genesis state)."""

    def operation_count(self, function: str, args: tuple) -> int:
        """Number of state operations ``function`` will perform (cost model)."""
        return 2


class ChaincodeRegistry:
    """Chaincodes installed on a channel, looked up by name."""

    def __init__(self) -> None:
        self._chaincodes: Dict[str, Chaincode] = {}

    def install(self, chaincode: Chaincode) -> None:
        """Install ``chaincode``; name collisions are an error."""
        if chaincode.name in self._chaincodes:
            raise ChaincodeError(f"chaincode {chaincode.name!r} already installed")
        self._chaincodes[chaincode.name] = chaincode

    def lookup(self, name: str) -> Chaincode:
        """Return the installed chaincode called ``name``."""
        try:
            return self._chaincodes[name]
        except KeyError:
            raise ChaincodeError(f"no chaincode named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._chaincodes
