"""Read and write sets captured during chaincode simulation.

During the simulation phase each endorser builds a read set — the keys read
together with the versions they were read at — and a write set — the keys
written with their new values (paper Section 2.2.1). These sets travel with
the transaction, are signed by the endorsers, and drive both the
serializability check in the validation phase and Fabric++'s reordering.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ledger.state_db import Version


@dataclass(frozen=True)
class RangeRead:
    """A recorded range scan: bounds plus the exact (key, version) result.

    Fabric records range queries in the read set with their full result so
    the validation phase can detect *phantoms*: if re-executing the range
    against the current state yields a different key set (an insert or
    delete slipped in) or different versions (an update), the transaction
    is invalid. ``end_key`` is exclusive; ``None`` means an open end.
    """

    start_key: str
    end_key: Optional[str]
    results: Tuple[Tuple[str, Version], ...]

    def result_keys(self) -> Tuple[str, ...]:
        """The keys the scan observed, in order."""
        return tuple(key for key, _version in self.results)


@dataclass
class ReadWriteSet:
    """A transaction's reads (key -> version) and writes (key -> value).

    A read of an absent key records version ``None``; the validation phase
    then requires the key to still be absent. Within one simulation only
    the *first* read of a key is recorded (later reads return the same
    state), and only the *last* write of a key survives, matching Fabric.
    """

    reads: Dict[str, Optional[Version]] = field(default_factory=dict)
    writes: Dict[str, object] = field(default_factory=dict)
    #: Range scans with their observed results (phantom detection).
    range_reads: List[RangeRead] = field(default_factory=list)
    #: Memoised canonical encoding; invalidated on mutation.
    _canonical: Optional[bytes] = field(
        default=None, repr=False, compare=False
    )

    def record_read(self, key: str, version: Optional[Version]) -> None:
        """Record that ``key`` was read at ``version`` (first read wins)."""
        if key not in self.reads:
            self.reads[key] = version
            self._canonical = None

    def record_write(self, key: str, value: object) -> None:
        """Record that ``key`` was written with ``value`` (last write wins)."""
        self.writes[key] = value
        self._canonical = None

    def record_range_read(self, range_read: RangeRead) -> None:
        """Record a range scan together with its observed result."""
        self.range_reads.append(range_read)
        self._canonical = None

    @property
    def read_keys(self) -> FrozenSet[str]:
        """All keys this transaction read, point reads and range results.

        Range-scan results participate so the conflict graph sees
        write->range-read dependencies (inserts creating *new* phantoms
        remain invisible to key-based analysis; validation still catches
        them, the orderer just cannot reorder around them).
        """
        keys = set(self.reads)
        for range_read in self.range_reads:
            keys.update(range_read.result_keys())
        return frozenset(keys)

    @property
    def write_keys(self) -> FrozenSet[str]:
        """The set of keys this transaction writes."""
        return frozenset(self.writes)

    @property
    def unique_keys(self) -> FrozenSet[str]:
        """All keys touched, read or written.

        Fabric++'s extra batch-cutting criterion (paper Section 5.1.2)
        bounds the number of unique keys per block using this set.
        """
        return self.read_keys | self.write_keys

    def is_empty(self) -> bool:
        """True for blank transactions that touched no state."""
        return not self.reads and not self.writes and not self.range_reads

    def conflicts_into(self, other: "ReadWriteSet") -> bool:
        """True if self writes a key that ``other`` reads (Ti -> Tj).

        This is the paper's conflict definition (Section 5.1): an edge
        Ti -> Tj exists when Ti's writes intersect Tj's reads, and then a
        serializable schedule must order Tj before Ti.
        """
        writes = self.writes
        if any(key in writes for key in other.reads):
            return True
        return any(
            key in writes
            for range_read in other.range_reads
            for key in range_read.result_keys()
        )

    def canonical_bytes(self) -> bytes:
        """Deterministic byte encoding, the payload endorsers sign.

        Keys are sorted so that two honest endorsers producing the same
        logical rwset also produce identical bytes (and signatures over
        differing states differ). The encoding is memoised; mutations via
        ``record_read``/``record_write`` invalidate the cache.
        """
        if self._canonical is not None:
            return self._canonical
        hasher = hashlib.sha256()
        for key in sorted(self.reads):
            version = self.reads[key]
            hasher.update(b"R")
            hasher.update(key.encode())
            if version is None:
                hasher.update(b"\x00absent")
            else:
                hasher.update(version.block_id.to_bytes(8, "big"))
                hasher.update(version.tx_id.to_bytes(8, "big"))
        for range_read in self.range_reads:
            hasher.update(b"Q")
            hasher.update(range_read.start_key.encode())
            hasher.update((range_read.end_key or "\x00<open>").encode())
            for key, version in range_read.results:
                hasher.update(key.encode())
                hasher.update(version.block_id.to_bytes(8, "big"))
                hasher.update(version.tx_id.to_bytes(8, "big"))
        for key in sorted(self.writes):
            hasher.update(b"W")
            hasher.update(key.encode())
            hasher.update(repr(self.writes[key]).encode())
        self._canonical = hasher.digest()
        return self._canonical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadWriteSet):
            return NotImplemented
        return (
            self.reads == other.reads
            and self.writes == other.writes
            and self.range_reads == other.range_reads
        )

    def copy(self) -> "ReadWriteSet":
        """Return an independent copy."""
        return ReadWriteSet(
            dict(self.reads), dict(self.writes), list(self.range_reads)
        )
