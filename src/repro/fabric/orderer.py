"""The ordering service.

One trusted service per network establishes the global transaction order
and cuts blocks (paper Section 2.2.2). The vanilla service treats
transactions as black boxes and keeps arrival order; Fabric++'s service
inspects read/write sets to (a) early-abort transactions whose reads are
provably stale (within-block version mismatches, Section 5.2.2), (b) remove
transactions stuck in conflict cycles, and (c) reorder the survivors into a
serializable schedule (Section 5.1).

All channels' ordering processes run on one orderer machine and share its
CPU, as in the paper's setup (one server runs the ordering service).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.core.batch_cutter import BatchCutter, CutReason
from repro.core.early_abort import filter_stale_within_block
from repro.core.reorder import reorder
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.transaction import Transaction
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store
from repro.trace.tracer import ASYNC, Tracer

#: Seconds between delivery-credit backlog polls (only scheduled when a
#: ``delivery_backlog_limit`` is configured; never in default runs).
DELIVERY_POLL_INTERVAL = 0.002


class OrderingService:
    """The ordering pipeline of one channel."""

    def __init__(
        self,
        env: Environment,
        channel: str,
        config: FabricConfig,
        cpu: Resource,
        broadcast: Callable[[str, Block], None],
        notify: Callable[[str, TxOutcome], None],
        tracer: Optional[Tracer] = None,
    ) -> None:
        """``broadcast`` ships a cut block to all peers; ``notify`` resolves
        early-aborted transactions back to their clients."""
        self.env = env
        self.channel = channel
        self.config = config
        self.cpu = cpu
        self.tracer = tracer
        self.incoming: Store = Store(env)
        self._broadcast = broadcast
        self._notify = notify
        self._cutter = BatchCutter(
            config.batch,
            track_unique_keys=config.reordering,
        )
        self._next_block_id = 1
        self._tip_hash = GENESIS_HASH
        self._generation = 0
        #: Fault injection: windows during which consensus stalls.
        self._stall_windows: tuple = ()
        #: Counters exposed for tests and reports.
        self.blocks_cut = 0
        self.txs_received = 0
        self.txs_early_aborted = 0
        #: Backpressure: shared OverloadStats, attached by the network
        #: when a queue bound is configured; None keeps submission on the
        #: historical unbounded path with zero extra work.
        self.overload = None
        #: Delivery credit: a callable reporting the deepest
        #: delivered-but-unvalidated block backlog across the channel's
        #: peers, attached by the network when ``delivery_backlog_limit``
        #: is configured. None disables the stall entirely.
        self.peer_backlog: Optional[Callable[[], int]] = None
        env.process(self._receiver(), name=f"orderer/{channel}")

    @property
    def next_block_id(self) -> int:
        """Id the next cut block will carry (committed tip + 1)."""
        return self._next_block_id

    # -- receiving ---------------------------------------------------------------

    def submit(self, transaction: Transaction) -> bool:
        """Accept a transaction from a client.

        Returns False when admission control rejects it at a full bounded
        queue (the client retries or sheds); True means enqueued. With no
        queue bound configured this always accepts, unbounded — the
        historical behavior.
        """
        stats = self.overload
        if stats is not None:
            stats.submissions += 1
            limit = self.config.backpressure.orderer_queue_limit
            depth = len(self.incoming)
            if 0 < limit <= depth:
                stats.orderer_rejections += 1
                return False
            stats.queue_depth_sum += depth
            if depth > stats.queue_depth_peak:
                stats.queue_depth_peak = depth
        if self.tracer is not None:
            transaction.orderer_arrival = self.env.now
        self.incoming.put(transaction)
        return True

    def install_stalls(self, windows: tuple) -> None:
        """Fault injection: stall processing during the given windows."""
        self._stall_windows = tuple(windows)

    def _maybe_stall(self) -> Generator:
        """Block until the current stall window (if any) has passed.

        With no windows installed this yields nothing at all, so healthy
        runs schedule no extra events.
        """
        for window in self._stall_windows:
            if window.at <= self.env.now < window.until:
                yield window.until - self.env.now

    def _receiver(self) -> Generator:
        while True:
            transaction = yield self.incoming.get()
            self.txs_received += 1
            yield from self._maybe_stall()
            yield from self.cpu.use(self.config.costs.order_tx)
            if self.tracer is not None:
                self.tracer.charge("ordering", self.config.costs.order_tx)
            was_empty = self._cutter.is_empty
            reason = self._cutter.add(transaction, self.env.now)
            if reason is not None:
                yield from self._cut(reason)
            elif was_empty:
                # First transaction of a fresh batch: arm the batch timer.
                self.env.process(
                    self._batch_timer(self._generation, self._cutter.deadline()),
                    name=f"orderer/{self.channel}/timer",
                )

    def _batch_timer(self, generation: int, deadline: Optional[float]) -> Generator:
        if deadline is None:  # pragma: no cover - defensive
            return
        yield max(0.0, deadline - self.env.now)
        # A timer that expires inside a stall window must not cut
        # mid-stall: wait the stall out first, and only then decide. If a
        # size cut raced us during the stall, the generation moved on and
        # this timer is stale. With no stalls installed this adds no
        # events, keeping healthy runs bit-identical.
        yield from self._maybe_stall()
        # Only cut if no other criterion already cut this batch.
        if generation == self._generation and not self._cutter.is_empty:
            yield from self._cut(CutReason.TIMEOUT)

    # -- cutting -----------------------------------------------------------------

    def _cut(self, reason: CutReason) -> Generator:
        batch = self._cutter.cut(reason)
        self._generation += 1
        if not batch:  # pragma: no cover - cut() callers guard non-empty
            return
        tracer = self.tracer
        cut_start = self.env.now
        arrivals = {tx.tx_id: tx.orderer_arrival for tx in batch}
        costs = self.config.costs
        yield from self._maybe_stall()
        yield from self.cpu.use(costs.order_block)
        if tracer is not None:
            tracer.charge("ordering", costs.order_block)

        early_aborted: List[Transaction] = []
        cycles_found = 0
        reorder_wall_seconds = 0.0

        if self.config.early_abort_ordering:
            batch, version_aborts = self._apply_version_filter(batch)
            early_aborted.extend(version_aborts)

        if self.config.reordering and batch:
            yield from self.cpu.use(costs.reorder_per_tx * len(batch))
            if tracer is not None:
                tracer.charge(
                    "ordering", costs.reorder_per_tx * len(batch), count=len(batch)
                )
            rwsets = [tx.rwset for tx in batch]
            result = reorder(rwsets, max_cycles=self.config.max_cycles_per_block)
            cycles_found = result.cycles_found
            reorder_wall_seconds = result.elapsed_seconds
            for index in result.aborted:
                tx = batch[index]
                tx.failure_reason = TxOutcome.EARLY_ABORT_CYCLE.value
                self._notify(tx.tx_id, TxOutcome.EARLY_ABORT_CYCLE)
                early_aborted.append(tx)
            batch = [batch[index] for index in result.schedule]

        self.txs_early_aborted += len(early_aborted)

        for tx in batch:
            tx.ordered_at = self.env.now
        block = Block.create(
            self._next_block_id, self._tip_hash, batch, early_aborted=early_aborted
        )
        self._next_block_id += 1
        self._tip_hash = block.header.data_hash
        self.blocks_cut += 1
        if tracer is not None:
            # Queue-wait spans: submission to cut, per transaction of the
            # batch (including the ones this cut early-aborted).
            for tx_id, arrival in arrivals.items():
                if arrival is not None:
                    tracer.span(
                        "orderer.queue",
                        cat="order",
                        track=f"orderer/{self.channel}/queue",
                        start=arrival,
                        tx_id=tx_id,
                        mode=ASYNC,
                    )
            tracer.span(
                "orderer.cut",
                cat="order",
                track=f"orderer/{self.channel}",
                start=cut_start,
                reason=reason.value,
                block_id=block.block_id,
                batch=len(block.transactions),
                early_aborts=len(early_aborted),
                cycles_found=cycles_found,
                # Wall-clock channel: the reordering computation's real
                # elapsed time, reported here so deterministic result
                # objects never carry it.
                reorder_wall_seconds=reorder_wall_seconds,
            )
        yield from self._delivery_credit()
        self._broadcast(self.channel, block)

    def _delivery_credit(self) -> Generator:
        """Pause delivery while a peer's block backlog sits at the bound.

        Polling keeps the coupling loose — the orderer never reaches
        into peer internals beyond the depth callable — and the interval
        is far below every other pipeline timescale. While the receiver
        is parked here its inbound queue fills, so sustained validation
        overload turns into admission rejections at ``submit``. With no
        limit configured this yields nothing at all.
        """
        limit = self.config.backpressure.delivery_backlog_limit
        if limit <= 0 or self.peer_backlog is None:
            return
        stall_start = self.env.now
        while self.peer_backlog() >= limit:
            yield from self._maybe_stall()
            yield DELIVERY_POLL_INTERVAL
        if self.overload is not None and self.env.now > stall_start:
            self.overload.delivery_stall_seconds += self.env.now - stall_start

    def _apply_version_filter(self, batch: List[Transaction]):
        """Within-block version-mismatch early abort (Section 5.2.2)."""
        kept_indices, aborted_indices = filter_stale_within_block(
            [tx.rwset for tx in batch]
        )
        aborted: List[Transaction] = []
        for index in aborted_indices:
            tx = batch[index]
            tx.failure_reason = TxOutcome.EARLY_ABORT_VERSION.value
            self._notify(tx.tx_id, TxOutcome.EARLY_ABORT_VERSION)
            aborted.append(tx)
        return [batch[index] for index in kept_indices], aborted

    def flush(self) -> Generator:
        """Cut whatever is pending (used by tests to drain the pipeline)."""
        if not self._cutter.is_empty:
            yield from self._cut(CutReason.FLUSH)
