"""Proposals, endorsements, and transactions.

The lifecycle (paper Section 2.2 and Appendix A):

1. A client submits a :class:`Proposal` — chaincode name plus arguments —
   to the endorsers named by the endorsement policy.
2. Each endorser simulates the chaincode and returns an
   :class:`Endorsement`: the read/write set it computed plus a signature
   over it.
3. If all endorsers returned equal read/write sets, the client assembles a
   :class:`Transaction` carrying the rwset and every signature, and submits
   it to the ordering service.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.signing import Signature
from repro.fabric.rwset import ReadWriteSet


@dataclass(frozen=True)
class Proposal:
    """A client's request to execute a chaincode function."""

    proposal_id: str
    client: str
    channel: str
    chaincode: str
    function: str
    args: Tuple
    submitted_at: float = 0.0

    def payload_bytes(self) -> bytes:
        """Canonical bytes of the invocation request (part of signatures)."""
        payload = f"{self.channel}|{self.chaincode}|{self.function}|{self.args!r}"
        return payload.encode()


@dataclass(frozen=True)
class Endorsement:
    """One endorser's simulation result: rwset + signature over it."""

    endorser: str
    org: str
    rwset: ReadWriteSet
    signature: Signature

    def signed_payload(self, proposal: Proposal) -> bytes:
        """The bytes this endorsement's signature covers."""
        return endorsement_payload(proposal, self.rwset)


def endorsement_payload(proposal: Proposal, rwset: ReadWriteSet) -> bytes:
    """Canonical signing payload: invocation + rwset (paper A.3.1).

    The signature covers the read and write set, the executed smart
    contract, and the endorsement policy context (carried here via the
    proposal's channel/chaincode identity), so a client cannot swap in a
    different endorser's write set without detection.
    """
    return proposal.payload_bytes() + b"#" + rwset.canonical_bytes()


@dataclass
class Transaction:
    """An endorsed transaction travelling through ordering and validation."""

    tx_id: str
    proposal: Proposal
    rwset: ReadWriteSet
    endorsements: List[Endorsement]
    #: Simulated time at which the client assembled this transaction.
    assembled_at: float = 0.0
    #: Simulated time at which the ordering service cut it into a block.
    ordered_at: Optional[float] = None
    #: Simulated time the orderer received it. Stamped only by traced
    #: runs (feeds the orderer queue-wait span); never hashed or compared.
    orderer_arrival: Optional[float] = None
    #: Filled by the pipeline for latency accounting.
    committed_at: Optional[float] = None
    #: Why the transaction failed, if it did (validation code or early abort).
    failure_reason: Optional[str] = None

    def digest(self) -> bytes:
        """Canonical bytes identifying this transaction in block hashes."""
        hasher = hashlib.sha256()
        hasher.update(self.tx_id.encode())
        hasher.update(self.rwset.canonical_bytes())
        for endorsement in self.endorsements:
            hasher.update(endorsement.signature.signer.encode())
            hasher.update(endorsement.signature.value)
        return hasher.digest()

    @property
    def endorsing_orgs(self) -> frozenset:
        """Orgs that endorsed this transaction."""
        return frozenset(e.org for e in self.endorsements)

    def estimated_size_bytes(self) -> int:
        """Rough wire size, used by the byte-based batch-cut criterion.

        Modelled as a fixed envelope (headers, signatures, certificates)
        plus a per-rwset-entry cost; real Fabric transactions are a few
        kilobytes.
        """
        envelope = 2048
        per_entry = 64
        entries = len(self.rwset.reads) + len(self.rwset.writes)
        return envelope + per_entry * entries + 512 * len(self.endorsements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tx({self.tx_id})"
