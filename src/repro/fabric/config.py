"""Configuration: feature flags, batch cutting limits, and the cost model.

Vanilla Fabric and Fabric++ are one code base; :class:`FabricConfig` toggles
the paper's three modifications independently (needed for the Figure 10
breakdown):

- ``reordering`` — Section 5.1's within-block transaction reordering,
- ``early_abort_simulation`` — Section 5.2.1's stale-read abort during
  chaincode simulation (implies the lock-free fine-grained concurrency
  control replacing the state read/write lock),
- ``early_abort_ordering`` — Section 5.2.2's within-block version-mismatch
  abort in the ordering phase (cycle aborts from reordering are part of
  ``reordering`` itself).

:class:`CostModel` carries every simulated-time cost. The defaults are
calibrated so the pipeline is dominated by cryptography and per-block
overheads — the regime the paper demonstrates in Figure 1 — and so vanilla
Fabric sustains on the order of 1000 successful transactions per second at
block size 1024 under a conflict-free workload, matching Figures 7/8.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.faults import FaultSchedule
from repro.traffic import ArrivalProcess


@dataclass(frozen=True)
class CostModel:
    """Simulated-time costs (seconds) for every pipeline operation.

    The paper's measured bottlenecks are cryptographic computation and
    networking (Figure 1); transaction logic is nearly free. The defaults
    below encode that hierarchy: signing/verifying costs milliseconds,
    state operations cost microseconds.
    """

    #: CPU per chaincode state operation during simulation. Each GetState/
    #: PutState in real Fabric is a gRPC round trip between the peer and
    #: the chaincode container, so operations cost fractions of a
    #: millisecond — which also makes the vanilla read-lock hold times
    #: (the whole simulation) long enough to matter.
    chaincode_op: float = 150e-6
    #: CPU to produce one endorsement signature.
    endorse_sign: float = 2.0e-3
    #: CPU to verify one endorsement signature during validation. This is
    #: the calibrated aggregate of Fabric's per-endorsement validation work
    #: (unmarshalling, certificate chain checks, ECDSA verification); it is
    #: the dominant per-transaction cost, as the paper's Figure 1 requires.
    verify_signature: float = 3.2e-3
    #: Sequential CPU per transaction for the MVCC conflict check + commit.
    mvcc_check: float = 100e-6
    #: Sequential per-block validation/commit overhead (ledger append,
    #: block signature, state flush).
    block_overhead: float = 30e-3
    #: Orderer CPU per transaction (dequeue, envelope checks).
    order_tx: float = 50e-6
    #: Orderer CPU per block (consensus round, block signing).
    order_block: float = 5e-3
    #: Orderer CPU per transaction for Fabric++'s reordering computation
    #: (the paper measures 1-2 ms for 1024 transactions, Appendix B.1).
    reorder_per_tx: float = 2e-6
    #: Client CPU to assemble and sign one proposal / transaction.
    client_proposal: float = 0.2e-3
    #: Client CPU to check one returned endorsement.
    client_verify_endorsement: float = 0.1e-3
    #: One-way network latency for a small message (proposal, endorsement).
    net_message: float = 0.5e-3
    #: Extra latency per gossip hop when blocks are disseminated from the
    #: org leader to the remaining org peers (paper Figure 13, step 9).
    gossip_hop: float = 1.5e-3
    #: Network latency floor for distributing one block.
    net_block_base: float = 2e-3
    #: Additional block-distribution latency per byte (gigabit ethernet).
    net_per_byte: float = 8e-9
    #: Divisor applied to per-tx signature verification to model Fabric's
    #: parallel validation worker pool inside one peer.
    validation_parallelism: int = 8

    def block_distribution_delay(self, size_bytes: int) -> float:
        """Latency for shipping a block of ``size_bytes`` to a peer."""
        return self.net_block_base + self.net_per_byte * size_bytes

    def tx_validation_cost(self, num_endorsements: int) -> float:
        """Pipeline time to validate one transaction inside a block."""
        verify = self.verify_signature * num_endorsements
        return verify / self.validation_parallelism + self.mvcc_check


@dataclass(frozen=True)
class ConsensusConfig:
    """Timing knobs of the replicated Raft-style ordering cluster.

    Only consulted when ``FabricConfig.orderer_nodes > 1``; with a single
    orderer no consensus machinery is built at all. The defaults follow
    the usual Raft sizing rule: broadcast latency << heartbeat interval
    << election timeout, so a healthy cluster elects once and never
    spuriously re-elects.
    """

    #: Election timeouts are drawn uniformly from this range, per node
    #: and per election, from the node's dedicated consensus RNG stream.
    election_timeout_min: float = 0.15
    election_timeout_max: float = 0.30
    #: Leader-to-follower heartbeat (empty AppendEntries) period.
    heartbeat_interval: float = 0.05
    #: One-way network latency for a consensus message between nodes.
    message_delay: float = 0.5e-3
    #: Receiver CPU charged per consensus message (vote, append, ack).
    message_cpu: float = 50e-6

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the timing knobs are inconsistent."""
        if self.election_timeout_min <= 0:
            raise ConfigError("election_timeout_min must be > 0")
        if self.election_timeout_max <= self.election_timeout_min:
            raise ConfigError(
                "election_timeout_max must exceed election_timeout_min"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be > 0")
        if self.heartbeat_interval >= self.election_timeout_min:
            raise ConfigError(
                "heartbeat_interval must be below election_timeout_min, "
                "or followers time out between heartbeats"
            )
        if self.message_delay < 0:
            raise ConfigError("message_delay must be >= 0")
        if self.message_cpu < 0:
            raise ConfigError("message_cpu must be >= 0")


#: Seed salt for the per-client rejection-backoff jitter streams, keeping
#: them decorrelated from workload, traffic, and fault streams.
OVERLOAD_SEED_SALT = 0xBACC


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounded inbound queues and the client reaction to rejection.

    The defaults model the historical unbounded queues (no admission
    control anywhere) and are bit-identical to the pre-backpressure
    build. A positive ``orderer_queue_limit`` caps the ordering service's
    inbound queue: submissions arriving at a full queue are *rejected*
    instead of enqueued, mirroring the broadcast flow control of the real
    ordering service (Androulaki et al., arXiv:1801.10228). A positive
    ``endorse_queue_limit`` caps concurrent endorsement work per peer:
    proposals beyond the cap are answered with a rejection reply instead
    of queueing on the peer CPU. Rejected clients retry with bounded
    exponential backoff and finally *shed* the transaction, resolving it
    with the terminal ``overload_rejected`` outcome.

    A positive ``delivery_backlog_limit`` propagates backpressure up
    from the slowest pipeline stage: while any peer in the channel holds
    that many delivered-but-unvalidated blocks, the ordering service
    stops cutting, its own inbound queue fills, and admission control
    starts rejecting — so a validation bottleneck (the common case for
    Fabric++, whose lock-free endorsement never saturates) surfaces to
    clients instead of ballooning the commit latency.
    """

    #: Max transactions queued at one ordering service (0 = unbounded).
    orderer_queue_limit: int = 0
    #: Max concurrent endorsement requests per peer (0 = unbounded).
    endorse_queue_limit: int = 0
    #: Max delivered-but-unvalidated blocks at any peer before the
    #: orderer pauses block delivery (0 = unbounded).
    delivery_backlog_limit: int = 0
    #: Rejection retries before a client sheds the transaction.
    client_retries: int = 3
    #: Exponential backoff after a rejection: ``base * factor**attempt``
    #: stretched by up to ``jitter`` (seeded per-client stream).
    retry_backoff_base: float = 0.01
    retry_backoff_factor: float = 2.0
    retry_backoff_jitter: float = 0.5

    @property
    def is_off(self) -> bool:
        """True when no queue bound is set (the bit-identical default)."""
        return (
            self.orderer_queue_limit == 0
            and self.endorse_queue_limit == 0
            and self.delivery_backlog_limit == 0
        )

    def validate(self) -> None:
        """Raise :class:`ConfigError` for inconsistent backpressure knobs."""
        if self.orderer_queue_limit < 0:
            raise ConfigError("orderer_queue_limit must be >= 0 (0 = unbounded)")
        if self.endorse_queue_limit < 0:
            raise ConfigError("endorse_queue_limit must be >= 0 (0 = unbounded)")
        if self.delivery_backlog_limit < 0:
            raise ConfigError(
                "delivery_backlog_limit must be >= 0 (0 = unbounded)"
            )
        if self.client_retries < 0:
            raise ConfigError("client_retries must be >= 0")
        if self.retry_backoff_base <= 0:
            raise ConfigError("retry_backoff_base must be > 0")
        if self.retry_backoff_factor < 1.0:
            raise ConfigError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_jitter < 0:
            raise ConfigError("retry_backoff_jitter must be >= 0")


#: Seed salt deriving each sharded channel runtime's config seed from the
#: fleet seed, keeping per-channel streams decorrelated from each other
#: and from every single-channel stream.
CHANNEL_SEED_SALT = 0xC11A

#: Seed salt for the cross-channel saga streams (the per-client saga
#: decision draw, partner-channel pick, and remote-leg invocation draws).
SAGA_SEED_SALT = 0x5A6A


@dataclass(frozen=True)
class PopulationConfig:
    """A logical client population spread across sharded channels.

    The default (``accounts == 0``) disables the population model
    entirely and is bit-identical to a build without it. A positive
    ``accounts`` describes that many logical accounts — the intent is
    *millions* — which are never materialised: channel affinity and
    account ids are computed lazily from seeded streams
    (:class:`repro.channels.population.ClientPopulation`), so the model
    is O(channels) in memory regardless of population size.

    ``zipf_s`` skews the channel affinity: account mass (and therefore
    per-channel client load) follows a Zipf(s) distribution over the
    channels, with the rank-to-channel mapping drawn from a seeded
    permutation. ``s = 0`` spreads accounts uniformly.
    """

    #: Logical accounts in the population (0 = model off).
    accounts: int = 0
    #: Zipf skew of the per-channel account mass (0 = uniform).
    zipf_s: float = 1.0

    @property
    def is_off(self) -> bool:
        """True when no population is configured (bit-identical default)."""
        return self.accounts == 0

    def validate(self) -> None:
        """Raise :class:`ConfigError` for inconsistent population knobs."""
        if self.accounts < 0:
            raise ConfigError("population accounts must be >= 0 (0 = off)")
        if self.zipf_s < 0:
            raise ConfigError("population zipf_s must be >= 0")


@dataclass(frozen=True)
class FabricConfig:
    """Full configuration of one network run."""

    #: Fabric++ feature flags (all False == vanilla Fabric 1.2).
    reordering: bool = False
    early_abort_simulation: bool = False
    early_abort_ordering: bool = False

    batch: BatchCutConfig = field(default_factory=BatchCutConfig)
    costs: CostModel = field(default_factory=CostModel)

    #: Topology: organizations each contribute ``peers_per_org`` peers.
    num_orgs: int = 2
    peers_per_org: int = 2
    #: CPU cores per peer (two quad-core Xeons in the paper's servers).
    cores_per_peer: int = 8

    #: Number of channels; each has its own chain but shares the peers.
    num_channels: int = 1
    #: Sharded channels (``repro.channels``): ``channels >= 2`` builds N
    #: *independent* channel runtimes in one simulation — each with its
    #: own peer subset, orderer (or orderer cluster), ledger, and CC
    #: strategy — instead of the co-hosted ``num_channels`` model where
    #: every peer joins every channel. The default of 1 keeps the legacy
    #: single-runtime build and is bit-identical to the pre-channel code.
    channels: int = 1
    #: Fraction of fired business intents that become cross-channel
    #: *sagas*: a home-channel leg plus one leg on another channel,
    #: submitted independently with **no atomicity guarantee** across the
    #: two chains (Fabric has none). A saga whose legs split one-commit/
    #: one-abort terminates in the ``saga_half_committed`` fleet outcome.
    #: Requires ``channels >= 2``.
    cross_channel_fraction: float = 0.0
    #: Per-channel CC strategy override: empty (all channels use
    #: ``cc_strategy``) or exactly ``channels`` registry names.
    channel_cc_strategies: Tuple[str, ...] = ()
    #: Client-population model (Zipf channel affinity over lazily
    #: materialised accounts). Off by default; requires ``channels >= 2``.
    population: PopulationConfig = field(default_factory=PopulationConfig)
    #: Clients per channel, each firing proposals independently.
    clients_per_channel: int = 4
    #: Proposals per second fired by each client.
    client_rate: float = 512.0
    #: Max unresolved proposals a client keeps in flight (backpressure,
    #: modelling the synchronous gRPC client threads of the real system).
    client_window: int = 512
    #: Whether clients resubmit aborted/invalid proposals immediately.
    resubmit_failed: bool = False
    #: Cap on resubmissions per business intent when ``resubmit_failed``
    #: is on; ``None`` retries forever (the historical livelock hazard).
    #: Intents that exhaust the cap are counted in the run's fault
    #: metrics instead of silently cycling through the pipeline.
    max_resubmits: Optional[int] = 16

    #: Endorsement policy as data (picklable, part of the cache key):
    #: ``None``/"all" = AND over every org, "any" = one org suffices,
    #: "outof:K" = any K of the orgs. ``FabricNetwork`` still accepts a
    #: policy object directly, which takes precedence.
    endorsement_policy: Optional[str] = None

    #: Arrival process per client (``repro.traffic``). The default keeps
    #: the original closed-loop ``1 / client_rate`` pacing bit-identical;
    #: any other kind switches clients to open-loop arrivals drawn from
    #: dedicated seeded streams and ignores ``client_window``.
    traffic: ArrivalProcess = field(default_factory=ArrivalProcess)

    #: Bounded-queue admission control and client retry/shed behavior.
    #: The default (no limits) is bit-identical to unbounded queues.
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)

    #: Deterministic fault schedule; the default injects nothing and
    #: leaves the healthy pipeline bit-identical to a fault-free build.
    faults: FaultSchedule = field(default_factory=FaultSchedule)

    #: Ordering-service replication (``repro.consensus``). The default of
    #: one node keeps the legacy single ``OrderingService`` and is
    #: bit-identical to the pre-consensus build; ``orderer_nodes >= 2``
    #: replaces it with a Raft-style CFT cluster per channel.
    orderer_nodes: int = 1
    consensus: ConsensusConfig = field(default_factory=ConsensusConfig)

    #: Validation pipeline (``repro.validation``). The defaults select the
    #: legacy inline serial validator, which is bit-identical to the
    #: pre-pipeline build; any non-default value switches the peer to the
    #: modelled pipeline, where worker lanes, the MVCC scheduler, and
    #: cross-block overlap change *timing only* — committed ledgers and
    #: per-transaction outcomes are invariant (the oracle tests prove it).
    #: Number of parallel signature-verification lanes per peer.
    validation_workers: int = 1
    #: MVCC commit scheduler: "serial" checks transactions one after the
    #: other in block order; "dependency" validates independent
    #: transactions in parallel waves along the intra-block dependency
    #: graph, serialising only along conflict chains.
    validation_scheduler: str = "serial"
    #: Blocks allowed in flight per channel: 1 = verify and commit strictly
    #: alternate; k allows verifying block n+k-1 while block n commits.
    pipeline_depth: int = 1
    #: Concurrency-control strategy for the validation/commit stage, by
    #: registry name (``repro.validation.registry``): "serial",
    #: "dependency", "lockless" (OCC snapshot validation, no write lock,
    #: first-committer-wins write-write aborts — Meir et al.), or
    #: "depaware" (conflict-graph dataflow, out-of-arrival-order commits
    #: — Kaul et al.). The default "serial" defers to
    #: ``validation_scheduler`` for backward compatibility (see
    #: :attr:`resolved_cc_strategy`); "lockless" and "depaware" ignore
    #: ``pipeline_depth``, and "lockless" also ignores
    #: ``validation_workers`` (its per-transaction cost model folds
    #: verification like the serial loop).
    cc_strategy: str = "serial"

    #: Cap on Johnson cycle enumeration per block. Dense conflict graphs
    #: contain exponentially many elementary cycles; past roughly a
    #: thousand counted cycles the greedy abort choice no longer changes,
    #: so enumeration beyond this cap buys nothing (the reorder ablation
    #: bench demonstrates this). Residual cycles after the cap are broken
    #: by an SCC-based fallback sweep.
    max_cycles_per_block: int = 1000

    #: O(1)-memory metrics for long-horizon runs: replace the unbounded
    #: per-transaction sample lists in :class:`PipelineMetrics` with
    #: online aggregates plus a seeded bounded reservoir for latency
    #: percentiles (``repro.fabric.metrics.StreamingMetrics``; accuracy
    #: bounds in ``docs/longruns.md``). Default off — disabled runs are
    #: byte-identical to pre-streaming builds. Purely observational:
    #: enabling it never changes the event schedule, only how outcomes
    #: are aggregated.
    streaming_metrics: bool = False

    seed: int = 42

    @property
    def uses_replicated_ordering(self) -> bool:
        """True when ordering runs as a replicated consensus cluster."""
        return self.orderer_nodes > 1

    @property
    def uses_sharding(self) -> bool:
        """True when the run builds independent sharded channel runtimes."""
        return self.channels > 1

    def org_names(self) -> Tuple[str, ...]:
        """The organization names this topology creates."""
        return tuple(
            f"Org{chr(ord('A') + index)}" for index in range(self.num_orgs)
        )

    def peer_names(self) -> Tuple[str, ...]:
        """Every peer name this configuration will instantiate.

        Single-runtime configs name peers ``peer<i>.<org>``; sharded
        configs qualify each runtime's peers with its channel,
        ``peer<i>.<org>.ch<k>`` — the namespace fault schedules must use.
        """
        base = tuple(
            f"peer{index}.{org}"
            for org in self.org_names()
            for index in range(self.peers_per_org)
        )
        if not self.uses_sharding:
            return base
        return tuple(
            f"{name}.ch{channel}"
            for channel in range(self.channels)
            for name in base
        )

    @property
    def uses_validation_pipeline(self) -> bool:
        """True when any validation knob leaves its legacy default.

        The peer then runs the modelled ``repro.validation`` pipeline
        instead of the inline serial validator.
        """
        return (
            self.validation_workers != 1
            or self.validation_scheduler != "serial"
            or self.pipeline_depth != 1
        )

    @property
    def resolved_cc_strategy(self) -> str:
        """The registry name of the CC strategy this config selects.

        An explicit non-default ``cc_strategy`` wins; the default
        "serial" falls back to ``validation_scheduler``, which named the
        only two strategies before the registry existed (so old specs
        and CLI invocations keep their meaning).
        """
        if self.cc_strategy != "serial":
            return self.cc_strategy
        return self.validation_scheduler

    @property
    def is_fabric_plus_plus(self) -> bool:
        """True if any Fabric++ optimization is enabled."""
        return (
            self.reordering
            or self.early_abort_simulation
            or self.early_abort_ordering
        )

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        self.batch.validate()
        if self.num_orgs < 1:
            raise ConfigError("num_orgs must be >= 1")
        if self.peers_per_org < 1:
            raise ConfigError("peers_per_org must be >= 1")
        if self.cores_per_peer < 1:
            raise ConfigError("cores_per_peer must be >= 1")
        if self.num_channels < 1:
            raise ConfigError("num_channels must be >= 1")
        if self.channels < 1:
            raise ConfigError("channels must be >= 1")
        if self.uses_sharding and self.num_channels != 1:
            raise ConfigError(
                "sharded runs (channels >= 2) are incompatible with the "
                "co-hosted num_channels model; set num_channels to 1"
            )
        if not 0.0 <= self.cross_channel_fraction < 1.0:
            raise ConfigError(
                "cross_channel_fraction must be in [0, 1), "
                f"got {self.cross_channel_fraction}"
            )
        if self.cross_channel_fraction > 0 and not self.uses_sharding:
            raise ConfigError(
                "cross_channel_fraction > 0 requires channels >= 2 "
                "(a saga needs a second channel for its remote leg)"
            )
        if self.cross_channel_fraction > 0 and self.resubmit_failed:
            raise ConfigError(
                "cross_channel_fraction > 0 is incompatible with "
                "resubmit_failed: saga legs are terminal by design"
            )
        self.population.validate()
        if not self.population.is_off and not self.uses_sharding:
            raise ConfigError(
                "a client population requires channels >= 2 "
                "(its only effect is channel affinity)"
            )
        if self.channel_cc_strategies:
            if len(self.channel_cc_strategies) != self.channels:
                raise ConfigError(
                    "channel_cc_strategies must name exactly one strategy "
                    f"per channel ({self.channels}), "
                    f"got {len(self.channel_cc_strategies)}"
                )
            from repro.validation.registry import strategy_names as _names

            for strategy in self.channel_cc_strategies:
                if strategy not in _names():
                    raise ConfigError(
                        f"channel_cc_strategies names unknown strategy "
                        f"{strategy!r}; expected one of {', '.join(_names())}"
                    )
        if self.clients_per_channel < 1:
            raise ConfigError("clients_per_channel must be >= 1")
        if self.client_rate <= 0:
            raise ConfigError("client_rate must be > 0")
        if self.client_window < 1:
            raise ConfigError("client_window must be >= 1")
        if self.max_resubmits is not None and self.max_resubmits < 0:
            raise ConfigError("max_resubmits must be >= 0 (or None for no cap)")
        if self.validation_workers < 1:
            raise ConfigError("validation_workers must be >= 1")
        if self.validation_scheduler not in ("serial", "dependency"):
            raise ConfigError(
                "validation_scheduler must be 'serial' or 'dependency', "
                f"got {self.validation_scheduler!r}"
            )
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        # Imported here: the registry lives above the config in the
        # package graph (its factories build validators around peers).
        from repro.validation.registry import strategy_names

        if self.cc_strategy not in strategy_names():
            known = ", ".join(strategy_names())
            raise ConfigError(
                f"cc_strategy must be one of {known}; "
                f"got {self.cc_strategy!r}"
            )
        if (
            self.cc_strategy != "serial"
            and self.validation_scheduler != "serial"
            and self.cc_strategy != self.validation_scheduler
        ):
            raise ConfigError(
                f"cc_strategy {self.cc_strategy!r} conflicts with "
                f"validation_scheduler {self.validation_scheduler!r}; "
                "set only one of the two knobs"
            )
        if self.orderer_nodes < 1:
            raise ConfigError("orderer_nodes must be >= 1")
        self.consensus.validate()
        self.traffic.validate()
        self.backpressure.validate()
        self.faults.validate()
        # Fail fast on schedules naming peers the topology never builds:
        # at config time the full peer namespace is known, so a typo in a
        # --faults-file surfaces before any network (or sweep worker)
        # is constructed.
        known_peers = set(self.peer_names())
        for window in self.faults.crashes:
            if window.peer not in known_peers:
                raise ConfigError(
                    f"crash schedule names unknown peer {window.peer!r} "
                    f"(known peers: {sorted(known_peers)})"
                )
        if not self.uses_replicated_ordering:
            if self.faults.orderer_crashes:
                raise ConfigError(
                    "orderer crash windows require orderer_nodes >= 2"
                )
            for partition in self.faults.partitions:
                if partition.groups:
                    raise ConfigError(
                        "partition windows with node groups require "
                        "orderer_nodes >= 2"
                    )
        for partition in self.faults.partitions:
            if partition.channels:
                if not self.uses_sharding:
                    raise ConfigError(
                        f"partition window ({partition.describe()}) "
                        "isolates channels but the run is not sharded "
                        "(channels >= 2 required)"
                    )
                for channel in partition.channels:
                    if channel >= self.channels:
                        raise ConfigError(
                            f"partition window ({partition.describe()}) "
                            f"names channel {channel} but only "
                            f"{self.channels} channels exist"
                        )
        for window in self.faults.orderer_crashes:
            if window.node >= self.orderer_nodes:
                raise ConfigError(
                    f"orderer crash window ({window.describe()}) names "
                    f"node {window.node} but only {self.orderer_nodes} "
                    "orderer nodes exist"
                )
        for partition in self.faults.partitions:
            for group in partition.groups:
                for node in group:
                    if node >= self.orderer_nodes:
                        raise ConfigError(
                            f"partition window ({partition.describe()}) "
                            f"names node {node} but only "
                            f"{self.orderer_nodes} orderer nodes exist"
                        )

    def with_fabric_plus_plus(self) -> "FabricConfig":
        """Return a copy with every Fabric++ optimization enabled."""
        return replace(
            self,
            reordering=True,
            early_abort_simulation=True,
            early_abort_ordering=True,
        )

    def with_vanilla(self) -> "FabricConfig":
        """Return a copy with every Fabric++ optimization disabled."""
        return replace(
            self,
            reordering=False,
            early_abort_simulation=False,
            early_abort_ordering=False,
        )


#: Paper Table 5 system parameters as a ready-made configuration.
PAPER_DEFAULTS = FabricConfig()
