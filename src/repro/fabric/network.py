"""Network topology and the experiment entry point.

:class:`FabricNetwork` wires a complete deployment, mirroring the paper's
cluster (Section 6.1): organizations contribute peers, one machine runs the
ordering service for all channels, one machine hosts all benchmark clients.
``run(duration)`` fires the configured workload for a stretch of simulated
time and returns the collected :class:`PipelineMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.identity import IdentityRegistry
from repro.errors import ConfigError
from repro.fabric.chaincode import ChaincodeRegistry
from repro.fabric.client import Client
from repro.fabric.config import OVERLOAD_SEED_SALT, FabricConfig
from repro.fabric.metrics import (
    STREAMING_SEED_SALT,
    OverloadStats,
    PipelineMetrics,
    TxOutcome,
)
from repro.fabric.orderer import OrderingService
from repro.fabric.peer import Peer
from repro.fabric.policy import AllOrgs, EndorsementPolicy, parse_policy_spec
from repro.consensus.cluster import OrdererCluster
from repro.consensus.service import ReplicatedOrderingService
from repro.faults import MISBEHAVIOR_SEED_SALT, FaultInjector, assign_misbehaviors
from repro.traffic import TRAFFIC_SEED_SALT, ArrivalSampler
from repro.ledger.block import Block
from repro.sim.distributions import Rng, mix_seed
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.trace.tracer import Tracer
from repro.workloads.base import Workload

#: A workload shared by all channels, or a factory keyed by channel index.
WorkloadSpec = Union[Workload, Callable[[int], Workload]]


@dataclass
class NetworkTopology:
    """Static facts about a built network (handy for tests and reports)."""

    orgs: List[str]
    peer_names: List[str]
    channels: List[str]
    clients_per_channel: int


class FabricNetwork:
    """A fully wired Fabric deployment running inside one DES environment."""

    def __init__(
        self,
        config: FabricConfig,
        workload: WorkloadSpec,
        policy: Optional[EndorsementPolicy] = None,
        tracer: Optional[Tracer] = None,
        env: Optional[Environment] = None,
        channel_names: Optional[Sequence[str]] = None,
    ) -> None:
        # ``env``/``channel_names`` let repro.channels embed this network
        # as one sharded channel runtime inside a shared simulation; both
        # default to the legacy single-runtime behaviour.
        config.validate()
        self.config = config
        self.env = env if env is not None else Environment()
        self.registry = IdentityRegistry()
        self.metrics = PipelineMetrics()
        if config.streaming_metrics:
            # The reservoir's replacement stream is salted off the run
            # seed, independent from every simulation stream (metrics
            # are observational; the schedule must not notice them).
            self.metrics.enable_streaming(
                mix_seed(config.seed, STREAMING_SEED_SALT)
            )
        # The tracer is a runtime-only argument — never part of the
        # config — so cache fingerprints and result rows are unaffected
        # by whether a run was observed.
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self.env)

        self.orgs = [f"Org{chr(ord('A') + i)}" for i in range(config.num_orgs)]
        if policy is None and config.endorsement_policy:
            policy = parse_policy_spec(config.endorsement_policy, self.orgs)
        self.policy = policy or AllOrgs(*self.orgs)
        unknown = self.policy.mentioned_orgs() - set(self.orgs)
        if unknown:
            raise ConfigError(f"policy references unknown orgs: {sorted(unknown)}")

        # Peers (the paper uses four: two orgs with two peers each).
        self.peers: List[Peer] = []
        self.peers_by_org: Dict[str, List[Peer]] = {org: [] for org in self.orgs}
        for org in self.orgs:
            for index in range(config.peers_per_org):
                identity = self.registry.register(f"peer{index}.{org}", org)
                peer = Peer(self.env, identity, config, self.registry, tracer=tracer)
                self.peers.append(peer)
                self.peers_by_org[org].append(peer)
        self.reference_peer = self.peers[0]
        self.reference_peer.attach_reference_hooks(self._notify, self.metrics)

        # Fault injection: built only for non-trivial schedules, so a
        # healthy run schedules no extra events and draws no extra
        # randomness (bit-identical to a build without repro.faults).
        self._peer_by_name = {peer.name: peer for peer in self.peers}
        #: Per-org gossip dissemination order: position 0 is the org
        #: leader (direct delivery from the orderer); later positions are
        #: one gossip hop behind. A recovered peer re-joins at the tail.
        self._gossip_order: Dict[str, List[Peer]] = {
            org: list(peers) for org, peers in self.peers_by_org.items()
        }
        self.faults: Optional[FaultInjector] = None
        if not config.faults.is_zero:
            # Unknown peer names were already rejected by config.validate;
            # only the reference-peer restriction is checked here.
            for window in config.faults.crashes:
                if window.peer == self.reference_peer.name:
                    raise ConfigError(
                        "the reference peer is the measurement anchor and "
                        "cannot be scheduled to crash"
                    )
            self.faults = FaultInjector(
                self.env, config.faults, config.seed, self.metrics
            )

        # One ordering-service machine and one client machine, shared by
        # every channel (Section 6.1's single orderer / single client host).
        self.orderer_cpu = Resource(self.env, config.cores_per_peer)
        self.client_cpu = Resource(self.env, config.cores_per_peer)

        # Replicated ordering: built only for orderer_nodes >= 2, so the
        # default single-orderer path schedules no consensus events and
        # stays bit-identical to the pre-consensus build.
        self.orderer_cluster: Optional[OrdererCluster] = None
        if config.uses_replicated_ordering:
            self.orderer_cluster = OrdererCluster(self.env, config, tracer=tracer)
            self.metrics.consensus = self.orderer_cluster.stats

        # Backpressure: one shared stats object, attached to the metrics
        # and to every admission point only when a queue bound is set —
        # unbounded runs carry no overload machinery at all.
        self.overload: Optional[OverloadStats] = None
        if not config.backpressure.is_off:
            self.overload = OverloadStats(
                orderer_queue_limit=config.backpressure.orderer_queue_limit,
                endorse_queue_limit=config.backpressure.endorse_queue_limit,
            )
            self.metrics.overload = self.overload
            for peer in self.peers:
                peer.overload = self.overload

        self.orderers: Dict[str, OrderingService] = {}
        self.clients: List[Client] = []
        self.workloads: Dict[str, Workload] = {}
        self._pending: Dict[str, Tuple[Client, float, int]] = {}

        if channel_names is not None:
            if len(channel_names) != config.num_channels:
                raise ConfigError(
                    f"channel_names has {len(channel_names)} entries but "
                    f"num_channels is {config.num_channels}"
                )
            self.channels = list(channel_names)
        else:
            self.channels = [f"ch{i}" for i in range(config.num_channels)]
        for channel_index, channel in enumerate(self.channels):
            self._build_channel(channel_index, channel, workload)

    # -- construction helpers -----------------------------------------------------

    def _build_channel(
        self, channel_index: int, channel: str, workload: WorkloadSpec
    ) -> None:
        instance = workload(channel_index) if callable(workload) else workload
        self.workloads[channel] = instance

        chaincodes = ChaincodeRegistry()
        chaincodes.install(instance.create_chaincode())
        initial_state = instance.initial_state()
        for peer in self.peers:
            peer.join_channel(channel, chaincodes, self.policy, initial_state)

        if self.orderer_cluster is not None:
            orderer = ReplicatedOrderingService(
                self.env,
                channel,
                channel_index,
                self.config,
                self.orderer_cluster,
                broadcast=self._broadcast,
                notify=self._notify,
                tracer=self.tracer,
            )
        else:
            orderer = OrderingService(
                self.env,
                channel,
                self.config,
                self.orderer_cpu,
                broadcast=self._broadcast,
                notify=self._notify,
                tracer=self.tracer,
            )
        self.orderers[channel] = orderer
        orderer.overload = self.overload
        if (
            self.config.backpressure.delivery_backlog_limit > 0
            and isinstance(orderer, OrderingService)
        ):
            peers = list(self.peers)
            orderer.peer_backlog = lambda: max(
                len(peer.channels[channel].incoming_blocks) for peer in peers
            )

        misbehaviors = (
            assign_misbehaviors(
                self.config.faults,
                self.config.seed,
                channel_index,
                self.config.clients_per_channel,
            )
            if self.config.faults.misbehaviors
            else {}
        )

        for client_index in range(self.config.clients_per_channel):
            identity = self.registry.register(
                f"client{client_index}.{channel}", "ClientOrg"
            )
            rng = Rng(
                mix_seed(self.config.seed, channel_index, client_index)
            )
            fault_rng = (
                self.faults.backoff_rng(channel_index, client_index)
                if self.faults is not None
                else None
            )
            arrival = None
            if not self.config.traffic.is_closed:
                arrival = ArrivalSampler(
                    self.config.traffic,
                    self.config.client_rate,
                    Rng(
                        mix_seed(
                            self.config.seed,
                            TRAFFIC_SEED_SALT,
                            channel_index,
                            client_index,
                        )
                    ),
                )
            misbehavior = misbehaviors.get(client_index)
            misbehavior_rng = None
            if misbehavior is not None:
                misbehavior_rng = Rng(
                    mix_seed(
                        self.config.seed,
                        MISBEHAVIOR_SEED_SALT,
                        channel_index,
                        client_index,
                        1,
                    )
                )
            overload_rng = None
            if self.overload is not None:
                overload_rng = Rng(
                    mix_seed(
                        self.config.seed,
                        OVERLOAD_SEED_SALT,
                        channel_index,
                        client_index,
                    )
                )
            client = Client(
                self.env,
                identity,
                channel,
                self.config,
                instance,
                rng,
                endorser_pools=self.peers_by_org,
                policy=self.policy,
                orderer=orderer,
                machine_cpu=self.client_cpu,
                metrics=self.metrics,
                register_pending=self._register_pending,
                faults=self.faults,
                fault_rng=fault_rng,
                arrival=arrival,
                misbehavior=misbehavior,
                misbehavior_rng=misbehavior_rng,
                overload_rng=overload_rng,
                overload=self.overload,
                tracer=self.tracer,
            )
            self.clients.append(client)

    # -- cross-component plumbing ---------------------------------------------------

    def _broadcast(self, channel: str, block: Block) -> None:
        """Distribute a freshly cut block to every peer of the network.

        The ordering service guarantees all peers receive the same blocks
        in the same order (Section 2.2.2). Distribution is two-stage, as
        in the paper's Figure 13: the orderer ships the block to one
        *leader* peer per organization directly (step 8); the remaining
        org peers receive it via gossip one hop later (step 9). Per-peer
        FIFO block queues preserve the same-order guarantee even though
        arrival times differ.
        """
        size = sum(tx.estimated_size_bytes() for tx in block.transactions)
        base_delay = self.config.costs.block_distribution_delay(size)
        gossip_hop = self.config.costs.gossip_hop

        tracer = self.tracer

        def deliver(peer: Peer, delay: float):
            yield delay  # bare-delay sleep
            if tracer is not None:
                tracer.charge("network", delay)
                tracer.instant(
                    "block.deliver",
                    cat="net",
                    track="net/blocks",
                    block_id=block.block_id,
                    peer=peer.name,
                )
            peer.deliver_block(channel, block)

        if self.faults is None:
            for org_peers in self.peers_by_org.values():
                for position, peer in enumerate(org_peers):
                    delay = base_delay if position == 0 else base_delay + gossip_hop
                    self.env.process(
                        deliver(peer, delay), name=f"deliver/{channel}/{peer.name}"
                    )
            return

        redelivery = self.config.faults.block_redelivery_interval

        def deliver_faulty(peer: Peer, base: float):
            # Gossip redelivers dropped blocks until the peer has them
            # (Fabric's anti-entropy pull); a crashed peer ignores the
            # delivery and catches up from a neighbour on recovery.
            while True:
                delay = self.faults.message_delay(base)
                if delay is not None:
                    yield delay  # bare-delay sleep
                    if tracer is not None:
                        tracer.charge("network", delay)
                        tracer.instant(
                            "block.deliver",
                            cat="net",
                            track="net/blocks",
                            block_id=block.block_id,
                            peer=peer.name,
                        )
                    peer.deliver_block(channel, block)
                    return
                yield redelivery

        for org_peers in self._gossip_order.values():
            for position, peer in enumerate(org_peers):
                base = base_delay if position == 0 else base_delay + gossip_hop
                self.env.process(
                    deliver_faulty(peer, base),
                    name=f"deliver/{channel}/{peer.name}",
                )

    # -- fault hooks -----------------------------------------------------------------

    def _require_cluster(self) -> OrdererCluster:
        if self.orderer_cluster is None:
            raise ConfigError(
                "orderer fault hooks require orderer_nodes >= 2"
            )
        return self.orderer_cluster

    def crash_orderer(self, index: int) -> None:
        """Take one ordering node down (fault injector / bench hook)."""
        self._require_cluster().crash(index)

    def recover_orderer(self, index: int) -> None:
        """Bring a crashed ordering node back as a follower."""
        self._require_cluster().recover(index)

    def set_partition(self, groups) -> None:
        """Partition the ordering cluster into isolated groups."""
        self._require_cluster().set_partition(groups)

    def heal_partition(self) -> None:
        """Restore full ordering-cluster connectivity."""
        self._require_cluster().heal_partition()

    def crash_peer(self, name: str) -> None:
        """Take a peer down: it stops endorsing/validating and loses
        in-flight work (called by the fault injector)."""
        peer = self._peer_by_name[name]
        peer.crash()
        for org_peers in self._gossip_order.values():
            if peer in org_peers:
                org_peers.remove(peer)
        if self.faults is not None:
            self.faults.record("crashes")
            self.faults.log_event("crash", name)

    def recover_peer(self, name: str) -> None:
        """Bring a crashed peer back: it rebuilds state by replaying the
        blocks it missed from the reference peer, then re-joins gossip at
        the tail of its org (one hop behind the leader)."""
        peer = self._peer_by_name[name]
        peer.recover()
        for org, org_peers in self.peers_by_org.items():
            if peer in org_peers and peer not in self._gossip_order[org]:
                self._gossip_order[org].append(peer)
        if self.faults is not None:
            self.faults.record("recoveries")
            self.faults.log_event("recover", name)
        for channel in self.channels:
            horizon = self.orderers[channel].next_block_id - 1
            self.env.process(
                self._catchup_poller(peer, channel, horizon),
                name=f"catchup/{channel}/{name}",
            )

    def _catchup_poller(self, peer: Peer, channel: str, horizon: int):
        """Replay missed blocks from the reference peer until ``peer`` has
        every block cut before its recovery.

        Blocks the reference peer itself has not validated yet arrive by
        normal (re)delivery; the poller keeps pulling until the recovered
        peer's chain reaches ``horizon``, then exits so the event queue
        can drain.
        """
        poll = self.config.faults.catchup_poll_interval
        while True:
            if peer.crashed:
                return  # crashed again before catching up
            replayed = peer.catch_up(channel, self.reference_peer)
            if replayed and self.faults is not None:
                self.faults.record("blocks_caught_up", replayed)
            if peer.channels[channel].ledger.tip_block_id >= horizon:
                if self.faults is not None:
                    self.faults.log_event("catchup_complete", f"{peer.name}/{channel}")
                return
            yield poll

    def _register_pending(
        self, tx_id: str, client: Client, submitted_at: float, retries: int = 0
    ) -> None:
        self._pending[tx_id] = (client, submitted_at, retries)

    def _notify(self, tx_id: str, outcome: TxOutcome) -> None:
        """Resolve a transaction outcome back to its client."""
        entry = self._pending.pop(tx_id, None)
        if entry is None:
            return  # already resolved (e.g. orderer aborted it earlier)
        client, submitted_at, retries = entry
        client.resolve(
            None, outcome, submitted_at=submitted_at, retries=retries, tx_id=tx_id
        )

    # -- running ---------------------------------------------------------------------

    def topology(self) -> NetworkTopology:
        """Describe the built network."""
        return NetworkTopology(
            orgs=list(self.orgs),
            peer_names=[peer.name for peer in self.peers],
            channels=list(self.channels),
            clients_per_channel=self.config.clients_per_channel,
        )

    def begin(self, duration: float) -> None:
        """Launch fault processes and client firing without running the
        environment — the embedding hook for sharded fleets, where many
        runtimes share one environment that is run exactly once."""
        if duration <= 0:
            raise ConfigError("duration must be > 0")
        if self.metrics.streaming is not None:
            self.metrics.streaming.set_window(duration)
        if self.faults is not None:
            self.faults.start(self)
        for client in self.clients:
            client.start()

        def stop_clients():
            yield duration
            for client in self.clients:
                client.stop()

        self.env.process(stop_clients(), name="stop-clients")

    def finish(self, duration: float) -> PipelineMetrics:
        """Finalise metrics after the environment has been run.

        Split out of :meth:`run` so drivers that advance the environment
        themselves — the sharded fleet and the segmented checkpoint loop
        (``repro.checkpoint``) — finalise through the exact same code.
        """
        if self.tracer is not None:
            self.metrics.cost_breakdown = self.tracer.breakdown
        self.metrics.duration = duration
        return self.metrics

    def run(self, duration: float, drain: float = 3.0) -> PipelineMetrics:
        """Fire the workload for ``duration`` simulated seconds.

        Clients stop firing at ``duration``; the simulation then keeps
        running for up to ``drain`` extra simulated seconds so in-flight
        transactions resolve (their outcomes are still counted, as the
        paper's averages cover whole runs). Throughput figures divide by
        ``duration``.
        """
        self.begin(duration)
        if self.tracer is not None:
            from repro.crypto import signing

            previous = signing.set_trace_recorder(self.tracer.record_crypto_op)
            try:
                self.env.run(until=duration + drain)
            finally:
                signing.set_trace_recorder(previous)
        else:
            self.env.run(until=duration + drain)
        return self.finish(duration)
