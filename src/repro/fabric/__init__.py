"""The Hyperledger Fabric v1.2 protocol layer (simulated).

This package rebuilds Fabric's simulate-order-validate-commit pipeline
(paper Section 2) on top of the DES substrate:

- :mod:`repro.fabric.rwset` / :mod:`repro.fabric.transaction` — read/write
  sets, proposals, endorsements, transactions;
- :mod:`repro.fabric.chaincode` — the smart-contract API (``get_state`` /
  ``put_state``) that builds read/write sets during simulation;
- :mod:`repro.fabric.policy` — endorsement policies (AND/OR/OutOf of orgs);
- :mod:`repro.fabric.peer` — endorsement, validation, and commit;
- :mod:`repro.fabric.orderer` — the ordering service with batch cutting,
  in arrival-order (vanilla) or reordering (Fabric++) mode;
- :mod:`repro.fabric.client` — proposal firing and transaction assembly;
- :mod:`repro.fabric.network` — topology wiring and experiment entry point.

Vanilla Fabric and Fabric++ are the same code base differentiated by
:class:`repro.fabric.config.FabricConfig` feature flags, mirroring how the
paper presents Fabric++ as a set of modifications to Fabric 1.2.
"""

from repro.fabric.config import CostModel, FabricConfig
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.fabric.network import FabricNetwork, NetworkTopology
from repro.fabric.policy import AllOrgs, AnyOrg, OutOf, RequireOrg
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Endorsement, Proposal, Transaction

__all__ = [
    "CostModel",
    "FabricConfig",
    "Chaincode",
    "ChaincodeStub",
    "FabricNetwork",
    "NetworkTopology",
    "AllOrgs",
    "AnyOrg",
    "OutOf",
    "RequireOrg",
    "ReadWriteSet",
    "Endorsement",
    "Proposal",
    "Transaction",
]
