"""Peers: endorsement (simulation phase), validation, and commit.

Each peer runs a local Fabric instance: per channel it keeps a ledger, a
current-state database, and — in the vanilla configuration — the
readers-writer lock that serialises chaincode simulation against block
validation (paper Section 4.2.1). Fabric++ drops the lock and instead
version-checks every read against the block height observed when the
simulation started (Section 5.2.1), aborting provably stale simulations
immediately.

The peer's CPU is a shared :class:`~repro.sim.resources.Resource`;
endorsement execution, signing, and block validation all consume it, which
is what makes channels and clients compete for resources in the scaling
experiments (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.crypto.identity import Identity, IdentityRegistry
from repro.crypto.signing import sign, verify
from repro.errors import ConfigError
from repro.fabric.chaincode import ChaincodeRegistry, ChaincodeStub
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics, TxOutcome
from repro.fabric.policy import EndorsementPolicy
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Endorsement, Proposal, Transaction, endorsement_payload
from repro.ledger.block import Block
from repro.ledger.ledger import Ledger
from repro.ledger.state_db import StateDatabase, Version
from repro.sim.engine import Environment, Process
from repro.sim.resources import Resource, RWLock, Store
from repro.trace.tracer import ASYNC, Tracer
from repro.validation import build_validator
from repro.validation.workers import VerifyWorkerPool

#: CPU scheduling bands within a peer: validation preempts endorsement.
VALIDATE_PRIORITY = 0
ENDORSE_PRIORITY = 10


@dataclass
class EndorseReply:
    """An endorser's answer to a proposal."""

    endorsement: Optional[Endorsement]
    #: Set when a Fabric++ simulation aborted on a stale read.
    early_aborted: bool = False
    #: The key that triggered the stale-read abort, if any.
    stale_key: Optional[str] = None
    #: Set when the endorser was crashed — a connection-refused answer.
    down: bool = False
    #: Set when the endorser shed the proposal at its admission cap
    #: (backpressure runs; the client retries with backoff or sheds).
    rejected: bool = False


class PeerChannelState:
    """A peer's per-channel stores and queues."""

    def __init__(self, env: Environment, chaincodes: ChaincodeRegistry) -> None:
        self.state = StateDatabase()
        self.ledger = Ledger()
        self.lock = RWLock(env)
        self.incoming_blocks = Store(env)
        self.chaincodes = chaincodes
        #: Reorder buffer for out-of-order gossip arrivals. Lives here
        #: (not in the validator generator) so crash handling can drop it
        #: and recovery catch-up can advance past it.
        self.pending_blocks: Dict[int, Block] = {}
        #: True while the validator is mid-block; catch-up replay must
        #: not splice blocks underneath it.
        self.validating = False


class Peer:
    """One peer node hosting endorsement and validation for its channels."""

    def __init__(
        self,
        env: Environment,
        identity: Identity,
        config: FabricConfig,
        registry: IdentityRegistry,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.identity = identity
        self.config = config
        self.registry = registry
        self.tracer = tracer
        self.cpu = Resource(env, config.cores_per_peer)
        self.channels: Dict[str, PeerChannelState] = {}
        #: Straggler knob: all of this peer's simulated CPU durations are
        #: multiplied by this factor (1.0 = nominal hardware). Lets tests
        #: and experiments model a slow peer without touching the global
        #: cost model.
        self.speed_factor = 1.0
        #: Test hook: transforms the simulated rwset before signing, to
        #: model a byzantine endorser (Appendix A.3.1).
        self.byzantine_rwset_hook: Optional[
            Callable[[ReadWriteSet], ReadWriteSet]
        ] = None
        #: True while this peer is crashed: it refuses endorsements,
        #: abandons in-flight work at the next scheduling point, and
        #: discards delivered blocks (recovery replays them).
        self.crashed = False
        #: Set on exactly one peer per network: the peer whose commits
        #: drive metrics and client notifications.
        self.is_reference = False
        self._notify: Optional[Callable[[str, TxOutcome], None]] = None
        self._metrics: Optional[PipelineMetrics] = None
        self._policies: Dict[str, EndorsementPolicy] = {}
        #: Backpressure: concurrent endorsement requests, checked against
        #: ``config.backpressure.endorse_queue_limit`` when that bound is
        #: set. ``overload`` is the shared OverloadStats, attached by the
        #: network on backpressure runs.
        self._endorse_inflight = 0
        self.overload = None

    @property
    def name(self) -> str:
        """The peer's identity name (e.g. ``peer0.orgA``)."""
        return self.identity.name

    @property
    def org(self) -> str:
        """The organization hosting this peer."""
        return self.identity.org

    # -- channel management ----------------------------------------------------

    def join_channel(
        self,
        channel: str,
        chaincodes: ChaincodeRegistry,
        policy: EndorsementPolicy,
        initial_state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Join ``channel``, installing chaincodes and seeding state."""
        if channel in self.channels:
            raise ConfigError(f"{self.name} already joined channel {channel!r}")
        state = PeerChannelState(self.env, chaincodes)
        if initial_state:
            state.state.populate(initial_state)
        self.channels[channel] = state
        self._policies[channel] = policy
        self.env.process(
            build_validator(self, channel),
            name=f"{self.name}/{channel}/validator",
        )

    def attach_reference_hooks(
        self,
        notify: Callable[[str, TxOutcome], None],
        metrics: PipelineMetrics,
    ) -> None:
        """Make this peer the network's reference peer for accounting."""
        self.is_reference = True
        self._notify = notify
        self._metrics = metrics

    # -- simulation phase (endorsement) ----------------------------------------

    def endorse(self, channel: str, proposal: Proposal) -> Process:
        """Simulate ``proposal``; returns a process firing an EndorseReply."""
        return self.env.process(
            self._endorse_process(channel, proposal),
            name=f"{self.name}/endorse/{proposal.proposal_id}",
        )

    def _endorse_process(self, channel: str, proposal: Proposal) -> Generator:
        limit = self.config.backpressure.endorse_queue_limit
        if limit <= 0:
            # No bound configured: the historical path, untouched.
            return (yield from self._endorse_inner(channel, proposal))
        if self._endorse_inflight >= limit:
            # Admission control: shed the proposal instead of queueing it
            # on the peer CPU behind an unbounded backlog.
            if self.overload is not None:
                self.overload.endorse_rejections += 1
            return EndorseReply(None, rejected=True)
        self._endorse_inflight += 1
        if (
            self.overload is not None
            and self._endorse_inflight > self.overload.endorse_inflight_peak
        ):
            self.overload.endorse_inflight_peak = self._endorse_inflight
        try:
            return (yield from self._endorse_inner(channel, proposal))
        finally:
            self._endorse_inflight -= 1

    def _endorse_inner(self, channel: str, proposal: Proposal) -> Generator:
        pcs = self.channels[channel]
        costs = self.config.costs
        tracer = self.tracer
        endorse_start = self.env.now
        if self.crashed:
            # Connection refused: the client learns quickly that this
            # endorser is gone (its own network hops model the latency).
            return EndorseReply(None, down=True)

        chaincode = pcs.chaincodes.lookup(proposal.chaincode)
        op_count = chaincode.operation_count(proposal.function, proposal.args)
        execution_time = max(1, op_count) * costs.chaincode_op * self.speed_factor

        vanilla = not self.config.early_abort_simulation
        if vanilla:
            # Vanilla: the whole simulation holds the shared read lock.
            # While a block validates (exclusive write lock), simulations
            # queue here — the coupling Section 4.2.1 describes. Acquired
            # before the CPU so lock waiters never pin a core (and cannot
            # deadlock against the validator's CPU demand).
            yield pcs.lock.acquire_read()
        holds_read_lock = vanilla
        try:
            # Endorsement runs in the peer's low-priority worker band so a
            # proposal flood cannot starve block validation.
            yield self.cpu.request(priority=ENDORSE_PRIORITY)
            try:
                if self.crashed:
                    # The peer died while this request queued for its
                    # CPU: in-flight endorsement work is dropped.
                    return EndorseReply(None, down=True)
                # The chaincode's reads observe the state at the start of
                # its execution; the rwset is fixed from this instant on.
                stub = ChaincodeStub(pcs.state, start_block_id=None)
                chaincode.invoke(stub, proposal.function, proposal.args)
                yield execution_time  # bare-delay sleep
                if tracer is not None:
                    tracer.charge("logic", execution_time, count=stub.operations)
                if self.crashed:
                    return EndorseReply(None, down=True)
                if vanilla:
                    # Under the read lock no block could commit meanwhile,
                    # so the rwset is consistent at release time.
                    pcs.lock.release_read()
                    holds_read_lock = False
                else:
                    # Fabric++: lock-free simulation ran concurrently with
                    # validation; re-check every read against the live
                    # store (the version-number comparison of Figure 6)
                    # and abort as soon as staleness is proven — the
                    # signing cost and the whole downstream pipeline are
                    # saved, and the client learns immediately.
                    for key, version in stub.rwset.reads.items():
                        if pcs.state.get_version(key) != version:
                            if tracer is not None:
                                tracer.span(
                                    "peer.endorse",
                                    cat="endorse",
                                    track=f"endorse/{self.name}",
                                    start=endorse_start,
                                    tx_id=proposal.proposal_id,
                                    mode=ASYNC,
                                    ops=stub.operations,
                                    early_abort=True,
                                    stale_key=key,
                                )
                            return EndorseReply(
                                None, early_aborted=True, stale_key=key
                            )
                rwset = stub.rwset
                if self.byzantine_rwset_hook is not None:
                    rwset = self.byzantine_rwset_hook(rwset)
                yield costs.endorse_sign * self.speed_factor
                if tracer is not None:
                    tracer.charge(
                        "sign", costs.endorse_sign * self.speed_factor
                    )
            finally:
                self.cpu.release()
        finally:
            if holds_read_lock:
                pcs.lock.release_read()

        signature = sign(self.identity, endorsement_payload(proposal, rwset))
        endorsement = Endorsement(self.name, self.org, rwset, signature)
        if tracer is not None:
            tracer.span(
                "peer.endorse",
                cat="endorse",
                track=f"endorse/{self.name}",
                start=endorse_start,
                tx_id=proposal.proposal_id,
                mode=ASYNC,
                ops=stub.operations,
                early_abort=False,
            )
        return EndorseReply(endorsement)

    # -- validation + commit phase ----------------------------------------------
    #
    # The validator loop itself lives in ``repro.validation``:
    # ``serial_validator`` (the legacy inline loop, default) or
    # ``PipelinedValidator`` (worker lanes / dependency waves / cross-block
    # overlap) — ``join_channel`` picks via ``build_validator``. The
    # check helpers below are shared by both.

    def verify_pool(self) -> VerifyWorkerPool:
        """The peer's verification worker pool (created on first use).

        Shared across the peer's channels, like the validator worker
        pool of a real peer process. Only the modelled pipeline uses it;
        the legacy serial validator folds verification into its
        per-transaction CPU charge.
        """
        if getattr(self, "_verify_pool", None) is None:
            self._verify_pool = VerifyWorkerPool(
                self.env,
                self.cpu,
                self.config.validation_workers,
                priority=VALIDATE_PRIORITY,
                owner=self.name,
                tracer=self.tracer,
            )
        return self._verify_pool

    def _validate_transaction(
        self,
        channel: str,
        tx: Transaction,
        pending_writes: Dict[str, Version],
    ) -> TxOutcome:
        """Run the two validation checks of Section 2.2.3."""
        if not self._endorsements_valid(channel, tx):
            return TxOutcome.ABORT_POLICY
        if not self._reads_current(channel, tx, pending_writes):
            return TxOutcome.ABORT_MVCC
        return TxOutcome.COMMITTED

    def _endorsements_valid(self, channel: str, tx: Transaction) -> bool:
        """Endorsement-policy evaluation (paper Appendix A.3.1)."""
        policy = self._policies[channel]
        if not policy.satisfied_by(tx.endorsing_orgs):
            return False
        payload = endorsement_payload(tx.proposal, tx.rwset)
        for endorsement in tx.endorsements:
            # The signature must cover the rwset that travels with the
            # transaction; a client that swapped in another write set
            # fails here because the honest signature no longer matches.
            if endorsement.rwset != tx.rwset:
                return False
            if not verify(self.registry, endorsement.signature, payload):
                return False
            signer = self.registry.lookup(endorsement.signature.signer)
            if signer.org != endorsement.org:
                return False
        return True

    def _reads_current(
        self,
        channel: str,
        tx: Transaction,
        pending_writes: Dict[str, Version],
    ) -> bool:
        """Serializability conflict check (paper Appendix A.3.2).

        Every read version must match the current state, where "current"
        includes the writes of earlier valid transactions in the same
        block — exactly the semantics behind Table 1.
        """
        state = self.channels[channel].state
        for key, read_version in tx.rwset.reads.items():
            current = pending_writes.get(key)
            if current is None:
                current = state.get_version(key)
            if current != read_version:
                return False
        for range_read in tx.rwset.range_reads:
            if not self._range_read_current(state, pending_writes, range_read):
                return False
        return True

    @staticmethod
    def _range_read_current(
        state: StateDatabase,
        pending_writes: Dict[str, Version],
        range_read,
    ) -> bool:
        """Phantom check: re-execute the scan against the effective state.

        The effective state overlays the committed store with the writes
        of earlier valid transactions in the same block, exactly like the
        point-read check. Any difference — an inserted key (phantom), a
        deleted key, or a changed version — invalidates the scan.
        """
        effective: Dict[str, Version] = {
            key: entry.version
            for key, entry in state.range_scan(
                range_read.start_key, range_read.end_key
            )
        }
        for key, version in pending_writes.items():
            if key < range_read.start_key:
                continue
            if range_read.end_key is not None and key >= range_read.end_key:
                continue
            effective[key] = version
        return effective == dict(range_read.results)

    def _report(self, tx: Transaction, outcome: TxOutcome) -> None:
        """Reference-peer accounting: notify the client of the outcome."""
        tx.committed_at = self.env.now
        if (
            outcome.is_success
            and self._metrics is not None
            and tx.ordered_at is not None
        ):
            self._metrics.record_phases(
                endorse=tx.assembled_at - tx.proposal.submitted_at,
                order=tx.ordered_at - tx.assembled_at,
                validate=tx.committed_at - tx.ordered_at,
            )
        if self._notify is not None:
            self._notify(tx.tx_id, outcome)

    # -- crash / recovery ---------------------------------------------------------

    def crash(self) -> None:
        """Go down: refuse new work and drop everything in flight.

        Queued-but-unvalidated blocks and buffered out-of-order arrivals
        are lost (they lived in volatile memory); a block *currently*
        validating completes — LevelDB's batched commit makes block
        application all-or-nothing, so crashes take effect at block
        boundaries for the state.
        """
        self.crashed = True
        for pcs in self.channels.values():
            pcs.incoming_blocks.drain()
            pcs.pending_blocks.clear()

    def recover(self) -> None:
        """Come back up; catch-up replay is driven by the network."""
        self.crashed = False

    def catch_up(self, channel: str, source: "Peer") -> int:
        """Replay blocks missed while down from ``source``'s ledger.

        Uses the ledger-export replay semantics (state transfer, the way
        a real peer fetches missing blocks from a gossip neighbour):
        append each missing block — hash chain verified by the ledger —
        and apply the write sets of its transactions already flagged
        valid. Returns the number of blocks replayed; 0 while the local
        validator is mid-block (the caller polls again later).
        """
        from repro.ledger.export import catch_up_from

        pcs = self.channels[channel]
        if pcs.validating:
            return 0
        return catch_up_from(
            source.channels[channel].ledger, pcs.ledger, pcs.state
        )

    # -- delivery ----------------------------------------------------------------

    def deliver_block(self, channel: str, block: Block) -> None:
        """Enqueue a block received from the ordering service."""
        if self.crashed:
            return  # a down peer never receives the block; catch-up replays it
        self.channels[channel].incoming_blocks.put(block)
