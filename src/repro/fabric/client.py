"""Clients: proposal firing, endorsement collection, transaction assembly.

A client fires transaction proposals uniformly at a configured rate (the
paper's benchmark framework fires 512 proposals per second per client,
Table 5), collects endorsements from one peer of every organization the
endorsement policy names, checks that all returned read/write sets agree,
assembles the transaction, and submits it to the ordering service.

Backpressure: the real benchmark drives Fabric through synchronous gRPC
client stubs, so the number of unresolved proposals per client is bounded.
``client_window`` models that bound — when it is reached, firing stalls
until an outcome (commit, abort, or early abort) frees a slot. Fabric++'s
early aborts therefore recycle client capacity sooner, one of the ways the
paper's optimizations lift successful throughput.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.crypto.identity import Identity
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics, TxOutcome
from repro.fabric.orderer import OrderingService
from repro.fabric.peer import EndorseReply, Peer
from repro.fabric.policy import EndorsementPolicy
from repro.fabric.transaction import Proposal, Transaction
from repro.sim.distributions import Rng
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.workloads.base import Workload


class Client:
    """One benchmark client bound to a channel."""

    def __init__(
        self,
        env: Environment,
        identity: Identity,
        channel: str,
        config: FabricConfig,
        workload: Workload,
        rng: Rng,
        endorser_pools: Dict[str, Sequence[Peer]],
        policy: EndorsementPolicy,
        orderer: OrderingService,
        machine_cpu: Resource,
        metrics: PipelineMetrics,
        register_pending: Callable[[str, "Client", float], None],
    ) -> None:
        self.env = env
        self.identity = identity
        self.channel = channel
        self.config = config
        self.workload = workload
        self.rng = rng
        self.policy = policy
        self.orderer = orderer
        self.machine_cpu = machine_cpu
        self.metrics = metrics
        self._register_pending = register_pending
        # Round-robin endorser choice per org, as real SDKs load-balance.
        self._endorser_cycles = {
            org: itertools.cycle(list(peers))
            for org, peers in endorser_pools.items()
        }
        self._sequence = 0
        self._in_flight = 0
        self._slot_waiter: Optional[Event] = None
        self._stopped = False

    # -- firing loop ---------------------------------------------------------------

    def start(self) -> None:
        """Begin firing proposals at the configured rate."""
        self.env.process(self._fire_loop(), name=f"{self.identity.name}/fire")

    def stop(self) -> None:
        """Stop firing new proposals (in-flight ones still resolve)."""
        self._stopped = True

    def _fire_loop(self) -> Generator:
        interval = 1.0 / self.config.client_rate
        next_fire = self.env.now
        while not self._stopped:
            if self.env.now < next_fire:
                yield self.env.timeout(next_fire - self.env.now)
            if self._stopped:
                return
            if self._in_flight >= self.config.client_window:
                self._slot_waiter = self.env.event()
                yield self._slot_waiter
                self._slot_waiter = None
                if self._stopped:
                    return
            self._fire_one()
            next_fire += interval
            if self.env.now > next_fire:
                # We fell behind (window stall); resume the cadence from
                # now rather than releasing a burst of make-up proposals.
                next_fire = self.env.now

    def _fire_one(self) -> None:
        invocation = self.workload.next_invocation(self.rng)
        self._sequence += 1
        proposal = Proposal(
            proposal_id=f"{self.identity.name}-{self._sequence}",
            client=self.identity.name,
            channel=self.channel,
            chaincode=self.workload.chaincode_name,
            function=invocation.function,
            args=invocation.args,
            submitted_at=self.env.now,
        )
        self.metrics.record_fired()
        self._in_flight += 1
        self.env.process(
            self._submit(proposal), name=f"{self.identity.name}/submit"
        )

    # -- one proposal's lifecycle ----------------------------------------------------

    def _submit(self, proposal: Proposal) -> Generator:
        costs = self.config.costs
        yield from self.machine_cpu.use(costs.client_proposal)

        endorsers = self._pick_endorsers()
        # Ship the proposal to the endorsers (one network hop) and gather
        # their replies in parallel.
        yield self.env.timeout(costs.net_message)
        replies: List[EndorseReply] = yield self.env.all_of(
            [peer.endorse(self.channel, proposal) for peer in endorsers]
        )
        yield self.env.timeout(costs.net_message)

        early = [reply for reply in replies if reply.early_aborted]
        if early:
            # Fabric++: a stale simulation was aborted at the endorser; the
            # client learns immediately and the slot frees without the
            # proposal ever touching the orderer (Section 5.2.1).
            self.resolve(proposal, TxOutcome.EARLY_ABORT_SIM)
            return

        yield from self.machine_cpu.use(
            costs.client_verify_endorsement * len(replies)
        )
        endorsements = [reply.endorsement for reply in replies]
        reference = endorsements[0].rwset
        if any(e.rwset != reference for e in endorsements[1:]):
            # Non-determinism or a tampering endorser: the read/write sets
            # disagree, so no transaction can be formed (Section 2.2.1).
            self.resolve(proposal, TxOutcome.ENDORSEMENT_MISMATCH)
            return

        transaction = Transaction(
            tx_id=proposal.proposal_id,
            proposal=proposal,
            rwset=reference,
            endorsements=endorsements,
            assembled_at=self.env.now,
        )
        self._register_pending(transaction.tx_id, self, proposal.submitted_at)
        yield self.env.timeout(costs.net_message)
        self.orderer.submit(transaction)

    def _pick_endorsers(self) -> List[Peer]:
        """One peer per org required by the endorsement policy."""
        return [
            next(self._endorser_cycles[org])
            for org in sorted(self.policy.required_orgs())
        ]

    # -- outcome handling --------------------------------------------------------------

    def resolve(
        self,
        proposal_or_submitted: object,
        outcome: TxOutcome,
        submitted_at: Optional[float] = None,
    ) -> None:
        """Record a terminal outcome and free the client slot.

        Called either directly (early sim abort, mismatch) with the
        proposal, or by the network resolver with the submission time.
        """
        if submitted_at is None:
            submitted_at = proposal_or_submitted.submitted_at
        latency = self.env.now - submitted_at
        self.metrics.record_outcome(outcome, latency, now=self.env.now)
        self._in_flight -= 1
        if self._slot_waiter is not None and not self._slot_waiter.triggered:
            self._slot_waiter.succeed()
        if self.config.resubmit_failed and not outcome.is_success and not self._stopped:
            # Immediate resubmission of the failed business intent as a
            # fresh proposal (fresh simulation, new chance to commit).
            self._fire_one()
