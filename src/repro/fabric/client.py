"""Clients: proposal firing, endorsement collection, transaction assembly.

A client fires transaction proposals uniformly at a configured rate (the
paper's benchmark framework fires 512 proposals per second per client,
Table 5), collects endorsements from one peer of every organization the
endorsement policy names, checks that all returned read/write sets agree,
assembles the transaction, and submits it to the ordering service.

Backpressure: the real benchmark drives Fabric through synchronous gRPC
client stubs, so the number of unresolved proposals per client is bounded.
``client_window`` models that bound — when it is reached, firing stalls
until an outcome (commit, abort, or early abort) frees a slot. Fabric++'s
early aborts therefore recycle client capacity sooner, one of the ways the
paper's optimizations lift successful throughput.

Robustness: when a fault schedule is active the client switches to a
fault-tolerant endorsement collection — a per-round deadline, bounded
retries with exponential backoff and seeded jitter, and graceful
degradation to whatever surviving endorsements still satisfy the policy
(``OutOf`` commits from k of n). The healthy path is untouched so
fault-free runs stay bit-identical.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.crypto.identity import Identity
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics, TxOutcome
from repro.fabric.orderer import OrderingService
from repro.fabric.peer import EndorseReply, Peer
from repro.fabric.policy import EndorsementPolicy
from repro.fabric.transaction import Proposal, Transaction
from repro.faults import FaultInjector, MisbehaviorSpec
from repro.sim.distributions import Rng
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.trace.tracer import ASYNC, Tracer
from repro.traffic import ArrivalSampler
from repro.workloads.base import Workload


class Client:
    """One benchmark client bound to a channel."""

    def __init__(
        self,
        env: Environment,
        identity: Identity,
        channel: str,
        config: FabricConfig,
        workload: Workload,
        rng: Rng,
        endorser_pools: Dict[str, Sequence[Peer]],
        policy: EndorsementPolicy,
        orderer: OrderingService,
        machine_cpu: Resource,
        metrics: PipelineMetrics,
        register_pending: Callable[..., None],
        faults: Optional[FaultInjector] = None,
        fault_rng: Optional[Rng] = None,
        arrival: Optional[ArrivalSampler] = None,
        misbehavior: Optional[MisbehaviorSpec] = None,
        misbehavior_rng: Optional[Rng] = None,
        overload_rng: Optional[Rng] = None,
        overload=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.identity = identity
        self.channel = channel
        self.config = config
        self.workload = workload
        self.rng = rng
        self.policy = policy
        self.orderer = orderer
        self.machine_cpu = machine_cpu
        self.metrics = metrics
        self._register_pending = register_pending
        self.faults = faults
        self.fault_rng = fault_rng
        #: Open-loop traffic: when set, arrivals come from this sampler
        #: and the in-flight window no longer gates firing.
        self.arrival = arrival
        #: Misbehavior: the spec this client adopts (None = honest) and
        #: its dedicated behavior-draw stream.
        self.misbehavior = misbehavior
        self.misbehavior_rng = misbehavior_rng
        #: Backpressure: seeded rejection-backoff stream and the run's
        #: shared OverloadStats (both None on unbounded runs).
        self.overload_rng = overload_rng
        self.overload = overload
        self.tracer = tracer
        # Round-robin endorser choice per org, as real SDKs load-balance.
        self._endorser_cycles = {
            org: itertools.cycle(list(peers))
            for org, peers in endorser_pools.items()
        }
        self._sequence = 0
        self._in_flight = 0
        self._slot_waiter: Optional[Event] = None
        self._stopped = False
        #: resubmit_storm: lifetime refires, bounded by the spec's cap.
        self._storm_fired = 0
        #: Cross-channel sagas (``repro.channels``): set by the sharded
        #: fleet on clients of saga-enabled runs; None (the default)
        #: leaves every firing and resolution path untouched.
        self.saga_router = None

    # -- firing loop ---------------------------------------------------------------

    def start(self) -> None:
        """Begin firing proposals at the configured rate."""
        self.env.process(self._fire_loop(), name=f"{self.identity.name}/fire")

    def stop(self) -> None:
        """Stop firing new proposals (in-flight ones still resolve)."""
        self._stopped = True

    def _fire_loop(self) -> Generator:
        if self.arrival is not None:
            yield from self._fire_loop_open()
            return
        interval = 1.0 / self.config.client_rate
        next_fire = self.env.now
        while not self._stopped:
            if self.env.now < next_fire:
                yield next_fire - self.env.now  # bare-delay sleep
            if self._stopped:
                return
            if self._in_flight >= self.config.client_window:
                self._slot_waiter = self.env.event()
                yield self._slot_waiter
                self._slot_waiter = None
                if self._stopped:
                    return
            self._fire_one()
            next_fire += interval
            if self.env.now > next_fire:
                # We fell behind (window stall); resume the cadence from
                # now rather than releasing a burst of make-up proposals.
                next_fire = self.env.now

    def _fire_loop_open(self) -> Generator:
        """Open-loop arrivals: fire on the sampler's schedule, regardless
        of how many earlier proposals are still unresolved.

        No ``client_window`` gate — open-loop load does not slow down when
        the system falls behind, which is exactly what exposes overload
        behavior.
        """
        while not self._stopped:
            yield self.arrival.next_interval(self.env.now)  # bare-delay sleep
            if self._stopped:
                return
            self._fire_one()

    def _fire_one(self, retries: int = 0) -> None:
        invocation = self.workload.next_invocation(self.rng)
        if self.saga_router is not None and retries == 0:
            # The router may turn this intent into a cross-channel saga
            # (its own seeded decision stream; the workload draw above is
            # reused as the home leg, so the local stream is unperturbed).
            if self.saga_router.take(self, invocation):
                return
        self.fire_invocation(invocation, retries)

    def fire_invocation(self, invocation, retries: int = 0) -> str:
        """Fire one concrete invocation; returns the proposal id.

        Split out of :meth:`_fire_one` so the saga router can inject
        remote legs through a channel's gateway client.
        """
        self._sequence += 1
        proposal = Proposal(
            proposal_id=f"{self.identity.name}-{self._sequence}",
            client=self.identity.name,
            channel=self.channel,
            chaincode=self.workload.chaincode_name,
            function=invocation.function,
            args=invocation.args,
            submitted_at=self.env.now,
        )
        self.metrics.record_fired()
        self._in_flight += 1
        self.env.process(
            self._submit(proposal, retries), name=f"{self.identity.name}/submit"
        )
        return proposal.proposal_id

    # -- one proposal's lifecycle ----------------------------------------------------

    def _submit(
        self, proposal: Proposal, retries: int = 0, overload_attempt: int = 0
    ) -> Generator:
        if self.faults is not None and self.config.faults.endorsement_timeout > 0:
            yield from self._submit_robust(proposal, retries, overload_attempt)
            return

        costs = self.config.costs
        tracer = self.tracer
        yield from self.machine_cpu.use(costs.client_proposal)
        if tracer is not None:
            tracer.charge("sign", costs.client_proposal)

        endorsers = self._pick_endorsers()
        # Ship the proposal to the endorsers (one network hop) and gather
        # their replies in parallel.
        yield costs.net_message
        replies: List[EndorseReply] = yield self.env.all_of(
            [peer.endorse(self.channel, proposal) for peer in endorsers]
        )
        yield costs.net_message
        if tracer is not None:
            # One proposal hop out plus one endorsement hop back per
            # contacted endorser.
            tracer.charge(
                "network",
                2 * costs.net_message * len(endorsers),
                count=2 * len(endorsers),
            )
            tracer.span(
                "tx.endorse",
                cat="client",
                track=f"client/{self.identity.name}",
                start=proposal.submitted_at,
                tx_id=proposal.proposal_id,
                mode=ASYNC,
                endorsers=len(endorsers),
            )

        early = [reply for reply in replies if reply.early_aborted]
        if early:
            # Fabric++: a stale simulation was aborted at the endorser; the
            # client learns immediately and the slot frees without the
            # proposal ever touching the orderer (Section 5.2.1).
            self.resolve(proposal, TxOutcome.EARLY_ABORT_SIM, retries=retries)
            return
        if any(reply.rejected for reply in replies):
            # A saturated endorser shed the proposal: back off and retry
            # the whole round (fresh reads), or shed after the budget.
            yield from self._overload_backoff(proposal, retries, overload_attempt)
            return

        yield from self.machine_cpu.use(
            costs.client_verify_endorsement * len(replies)
        )
        if tracer is not None:
            tracer.charge(
                "verify",
                costs.client_verify_endorsement * len(replies),
                count=len(replies),
            )
        endorsements = [reply.endorsement for reply in replies]
        reference = endorsements[0].rwset
        if any(e.rwset != reference for e in endorsements[1:]):
            # Non-determinism or a tampering endorser: the read/write sets
            # disagree, so no transaction can be formed (Section 2.2.1).
            self.resolve(proposal, TxOutcome.ENDORSEMENT_MISMATCH, retries=retries)
            return

        rwset = self._maybe_oversize(reference, proposal)
        transaction = Transaction(
            tx_id=proposal.proposal_id,
            proposal=proposal,
            rwset=rwset,
            endorsements=endorsements,
            assembled_at=self.env.now,
        )
        yield from self._dispatch(transaction, proposal, retries, overload_attempt)

    # -- misbehavior ---------------------------------------------------------------

    def _maybe_oversize(self, reference, proposal: Proposal) -> object:
        """oversized_rwset: pad the write set *after* endorsement.

        The padded rwset no longer matches what the endorsers signed, so
        validation fails the transaction with a policy abort — the
        signature check doing its job against a tampering client.
        """
        spec = self.misbehavior
        if (
            spec is None
            or spec.kind != "oversized_rwset"
            or self.misbehavior_rng.random() >= spec.rate
        ):
            return reference
        self.metrics.record_fault("oversized_rwsets")
        padded = reference.copy()
        for index in range(spec.padding):
            padded.record_write(f"__pad/{proposal.proposal_id}/{index}", index)
        return padded

    def _dispatch(
        self,
        transaction: Transaction,
        proposal: Proposal,
        retries: int,
        overload_attempt: int,
    ) -> Generator:
        """Ship an assembled transaction to the ordering service.

        Applies the stale-replay hold, registers the pending intent only
        once the orderer actually accepts the submission, and routes a
        rejection through the overload backoff.
        """
        spec = self.misbehavior
        if (
            spec is not None
            and spec.kind == "stale_replay"
            and self.misbehavior_rng.random() < spec.rate
        ):
            # Hold the fully endorsed transaction before submitting it, so
            # its read versions are stale by validation time (a replayed
            # or long-buffered proposal).
            self.metrics.record_fault("stale_replays")
            yield spec.hold_time  # bare-delay sleep
        yield self.config.costs.net_message
        if self.tracer is not None:
            self.tracer.charge("network", self.config.costs.net_message)
        if not self.orderer.submit(transaction):
            yield from self._overload_backoff(proposal, retries, overload_attempt)
            return
        self._register_pending(
            transaction.tx_id, self, proposal.submitted_at, retries
        )

    def _overload_backoff(
        self, proposal: Proposal, retries: int, attempt: int
    ) -> Generator:
        """React to an admission-control rejection: back off, retry, shed.

        Each retry re-runs the whole submission (fresh endorsement round,
        fresh reads — a held-back transaction would only abort later
        anyway). After ``client_retries`` rejections the transaction is
        shed with the terminal ``overload_rejected`` outcome.
        """
        backpressure = self.config.backpressure
        if self._stopped or attempt >= backpressure.client_retries:
            if self.overload is not None:
                self.overload.txs_shed += 1
            self.resolve(proposal, TxOutcome.OVERLOAD_REJECTED, retries=retries)
            return
        if self.overload is not None:
            self.overload.client_retries += 1
        backoff = backpressure.retry_backoff_base * (
            backpressure.retry_backoff_factor ** attempt
        )
        if backpressure.retry_backoff_jitter > 0 and self.overload_rng is not None:
            backoff *= (
                1.0 + backpressure.retry_backoff_jitter * self.overload_rng.random()
            )
        yield backoff  # bare-delay sleep
        yield from self._submit(proposal, retries, overload_attempt=attempt + 1)

    # -- fault-tolerant endorsement collection -----------------------------------------

    def _submit_robust(
        self, proposal: Proposal, retries: int, overload_attempt: int = 0
    ) -> Generator:
        """Endorsement collection under faults (timeout / retry / degrade).

        Each round ships the proposal to one peer of *every* org the
        policy mentions and races the replies against the endorsement
        deadline. The round succeeds as soon as the collected replies
        satisfy the policy — possibly a strict subset of the contacted
        endorsers (``OutOf`` graceful degradation). Unsatisfiable rounds
        are retried with exponential backoff and seeded jitter, up to
        ``max_endorsement_retries``; exhaustion resolves the proposal as
        :attr:`TxOutcome.ENDORSEMENT_TIMEOUT`.
        """
        costs = self.config.costs
        schedule = self.config.faults
        yield from self.machine_cpu.use(costs.client_proposal)
        if self.tracer is not None:
            self.tracer.charge("sign", costs.client_proposal)

        for attempt in range(schedule.max_endorsement_retries + 1):
            endorsers = self._pick_robust_endorsers()
            asks = [
                self.env.process(
                    self._ask_endorser(peer, proposal),
                    name=f"{self.identity.name}/ask/{peer.name}",
                )
                for peer in endorsers
            ]
            gate = self.env.all_of(asks)
            deadline = self.env.timeout(schedule.endorsement_timeout)
            race = gate | deadline
            yield race
            if race.first_event is gate:
                replies: List[EndorseReply] = [
                    reply for reply in gate.value if reply is not None
                ]
            else:
                self.faults.record("endorsement_timeouts")
                replies = [
                    ask.value
                    for ask in asks
                    if ask.triggered and ask.value is not None
                ]

            if any(reply.early_aborted for reply in replies):
                self.resolve(proposal, TxOutcome.EARLY_ABORT_SIM, retries=retries)
                return

            endorsements = [reply.endorsement for reply in replies]
            orgs = frozenset(e.org for e in endorsements)
            if endorsements and self.policy.satisfied_by(orgs):
                if len(endorsements) < len(endorsers):
                    # Fewer endorsers answered than were asked, but the
                    # policy still holds: commit from the survivors.
                    self.faults.record("degraded_endorsements")
                yield from self.machine_cpu.use(
                    costs.client_verify_endorsement * len(endorsements)
                )
                if self.tracer is not None:
                    self.tracer.charge(
                        "verify",
                        costs.client_verify_endorsement * len(endorsements),
                        count=len(endorsements),
                    )
                reference = endorsements[0].rwset
                if any(e.rwset != reference for e in endorsements[1:]):
                    self.resolve(
                        proposal, TxOutcome.ENDORSEMENT_MISMATCH, retries=retries
                    )
                    return
                rwset = self._maybe_oversize(reference, proposal)
                transaction = Transaction(
                    tx_id=proposal.proposal_id,
                    proposal=proposal,
                    rwset=rwset,
                    endorsements=endorsements,
                    assembled_at=self.env.now,
                )
                yield from self._dispatch(
                    transaction, proposal, retries, overload_attempt
                )
                return

            if attempt < schedule.max_endorsement_retries:
                self.faults.record("endorsement_retries")
                backoff = schedule.retry_backoff_base * (
                    schedule.retry_backoff_factor ** attempt
                )
                if schedule.retry_backoff_jitter > 0:
                    backoff *= (
                        1.0 + schedule.retry_backoff_jitter * self.fault_rng.random()
                    )
                yield backoff  # bare-delay sleep

        self.faults.record("endorsements_failed")
        self.resolve(proposal, TxOutcome.ENDORSEMENT_TIMEOUT, retries=retries)

    def _ask_endorser(self, peer: Peer, proposal: Proposal) -> Generator:
        """One endorser exchange over a faulty link.

        Returns the reply, or ``None`` when the peer was down or either
        message was lost. A lost message leaves this ask pending past the
        round deadline (the client cannot observe a drop directly — it
        surfaces as a timeout, exactly as on a real network); a down peer
        answers immediately, like a refused connection.
        """
        costs = self.config.costs
        schedule = self.config.faults
        delay = self.faults.message_delay(costs.net_message)
        if delay is None:
            yield schedule.endorsement_timeout  # sleep past the deadline
            return None
        yield delay
        if self.tracer is not None:
            self.tracer.charge("network", delay)
        reply = yield peer.endorse(self.channel, proposal)
        if reply.down:
            self.faults.record("endorsements_refused")
            return None
        if reply.rejected:
            # Shed at the peer's admission cap: like a refused connection,
            # the round may still satisfy the policy from other orgs.
            return None
        back = self.faults.message_delay(costs.net_message)
        if back is None:
            yield schedule.endorsement_timeout  # sleep past the deadline
            return None
        yield back
        if self.tracer is not None:
            self.tracer.charge("network", back)
        return reply

    def _pick_endorsers(self) -> List[Peer]:
        """One peer per org required by the endorsement policy."""
        return [
            next(self._endorser_cycles[org])
            for org in sorted(self.policy.required_orgs())
        ]

    def _pick_robust_endorsers(self) -> List[Peer]:
        """One peer from every org the policy *mentions*.

        Contacting more than the cheapest satisfying set is what makes
        ``OutOf`` degradation possible: when an endorser is down, the
        surviving replies may still satisfy the policy.
        """
        return [
            next(self._endorser_cycles[org])
            for org in sorted(self.policy.mentioned_orgs())
        ]

    # -- outcome handling --------------------------------------------------------------

    def resolve(
        self,
        proposal_or_submitted: object,
        outcome: TxOutcome,
        submitted_at: Optional[float] = None,
        retries: int = 0,
        tx_id: Optional[str] = None,
    ) -> None:
        """Record a terminal outcome and free the client slot.

        Called either directly (early sim abort, mismatch) with the
        proposal, or by the network resolver with the submission time.
        ``retries`` counts how often this business intent has already
        been resubmitted.
        """
        if submitted_at is None:
            submitted_at = proposal_or_submitted.submitted_at
            if tx_id is None:
                tx_id = proposal_or_submitted.proposal_id
        latency = self.env.now - submitted_at
        spec = self.misbehavior
        storms = spec is not None and spec.kind == "resubmit_storm"
        failed_live = not outcome.is_success and not self._stopped
        will_resubmit = False
        exhausted = False
        terminal = outcome
        if failed_live and self.config.resubmit_failed and not storms:
            cap = self.config.max_resubmits
            if cap is None or retries < cap:
                will_resubmit = True
            else:
                # The intent exhausted its resubmission budget: its final
                # failure terminates in the dedicated exhaustion bucket,
                # distinct from whatever abort it happened to hit last.
                exhausted = True
                terminal = TxOutcome.RESUBMIT_EXHAUSTED
        self.metrics.record_outcome(terminal, latency, now=self.env.now)
        if self.tracer is not None:
            self.tracer.span(
                "tx.lifecycle",
                cat="client",
                track=f"client/{self.identity.name}",
                start=submitted_at,
                tx_id=tx_id,
                mode=ASYNC,
                outcome=terminal.value,
                retries=retries,
            )
        self._in_flight -= 1
        if self._slot_waiter is not None and not self._slot_waiter.triggered:
            self._slot_waiter.succeed()
        if self.saga_router is not None:
            self.saga_router.on_outcome(tx_id, terminal, self.env.now)
        if storms and failed_live:
            # resubmit_storm: a buggy retry loop refires every failure
            # ``storm_factor`` times, amplifying load exactly when the
            # system is struggling — bounded by the spec's lifetime cap.
            burst = min(spec.storm_factor, spec.storm_cap - self._storm_fired)
            if burst > 0:
                self._storm_fired += burst
                self.metrics.record_fault("storm_resubmits", burst)
                for _ in range(burst):
                    self._fire_one(retries + 1)
        elif will_resubmit:
            # Immediate resubmission of the failed business intent as a
            # fresh proposal (fresh simulation, new chance to commit).
            self._fire_one(retries + 1)
        elif exhausted:
            self.metrics.record_fault("resubmit_capped")
