"""Test and benchmark utilities: rwset builders and validation oracles.

Shared by the unit/property test-suite and the micro-benchmarks. The
centrepiece is :func:`count_valid_in_order` — an independent, simple
re-statement of Fabric's within-block validation rule used as a
correctness oracle against the production pipeline (and to replay the
paper's Tables 1/2 and Appendix B micro-benchmarks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.fabric.rwset import ReadWriteSet
from repro.ledger.state_db import Version

#: Convenience versions for building fixtures.
V1 = Version(1, 0)
V2 = Version(2, 0)


def rwset(
    reads: Iterable = (),
    writes: Iterable[str] = (),
    read_version: Version = V1,
) -> ReadWriteSet:
    """Build a ReadWriteSet from key iterables.

    ``reads`` items may be bare keys (read at ``read_version``) or
    ``(key, version)`` pairs. ``writes`` are keys written with a dummy
    value.
    """
    result = ReadWriteSet()
    for item in reads:
        if isinstance(item, tuple):
            key, version = item
        else:
            key, version = item, read_version
        result.record_read(key, version)
    for key in writes:
        result.record_write(key, f"value-of-{key}")
    return result


def paper_table3_rwsets() -> List[ReadWriteSet]:
    """The six transactions T0..T5 of the paper's Table 3 (keys K0..K9)."""
    read_rows = [
        ("K0", "K1"),            # T0
        ("K3", "K4", "K5"),      # T1
        ("K6", "K7"),            # T2
        ("K2", "K8"),            # T3
        ("K9",),                 # T4
        (),                      # T5
    ]
    write_rows = [
        ("K2",),                 # T0
        ("K0",),                 # T1
        ("K3", "K9"),            # T2
        ("K1", "K4"),            # T3
        ("K5", "K6", "K8"),      # T4
        ("K7",),                 # T5
    ]
    return [
        rwset(reads=reads, writes=writes)
        for reads, writes in zip(read_rows, write_rows)
    ]


def paper_table1_rwsets() -> List[ReadWriteSet]:
    """The four transactions T1..T4 of the paper's Table 1 (index 0 = T1).

    T1 writes k1; T2, T3, T4 each read k1 (at the pre-update version) and
    write k2, k3, k4 respectively (T2/T3 also read their write target).
    """
    t1 = rwset(writes=("k1",))
    t2 = rwset(reads=("k1", "k2"), writes=("k2",))
    t3 = rwset(reads=("k1", "k3"), writes=("k3",))
    t4 = rwset(reads=("k1", "k3"), writes=("k4",))
    return [t1, t2, t3, t4]


def snapshot_roundtrip(network) -> Dict[str, int]:
    """Assert every RNG stream and resource snapshot restores exactly.

    The checkpoint subsystem's correctness rests on two properties this
    helper probes directly on a live network:

    * every seeded RNG stream reachable from the network pickles, and a
      restored clone produces the same next draws as a second clone —
      without advancing the original stream;
    * every :class:`~repro.sim.resources.Resource`'s observable state
      (:func:`repro.checkpoint.resource_state`) pickle-roundtrips to an
      equal dict.

    Returns ``{"rng_streams": N, "resources": M}`` so callers can assert
    the walk actually found something. Raises ``AssertionError`` with
    the offending object's path otherwise.
    """
    import pickle

    from repro.checkpoint import iter_resources, iter_rng_streams, resource_state

    streams = iter_rng_streams(network)
    for path, stream in streams:
        state = stream.getstate()
        restored = pickle.loads(pickle.dumps(state))
        import random as _random

        clone_a, clone_b = _random.Random(), _random.Random()
        clone_a.setstate(restored)
        clone_b.setstate(state)
        draws_a = [clone_a.random() for _ in range(4)]
        draws_b = [clone_b.random() for _ in range(4)]
        assert draws_a == draws_b, (
            f"RNG at {path} diverged after pickle roundtrip"
        )
        assert stream.getstate() == state, (
            f"RNG at {path} was advanced by snapshotting"
        )
    resources = iter_resources(network)
    for path, resource in resources:
        snapshot = resource_state(resource)
        restored = pickle.loads(pickle.dumps(snapshot))
        assert restored == snapshot, (
            f"resource state at {path} changed across pickle roundtrip"
        )
    return {"rng_streams": len(streams), "resources": len(resources)}


def count_valid_in_order(
    rwsets: Sequence[ReadWriteSet],
    order: Sequence[int],
    initial_versions: Optional[Dict[str, Version]] = None,
) -> int:
    """Replay Fabric's within-block validation rule over ``order``.

    Returns how many transactions would commit: a transaction is valid
    iff every read's version still matches the effective state (initial
    versions overlaid with the writes of previously committed
    transactions in the order).
    """
    effective: Dict[str, Optional[Version]] = dict(initial_versions or {})
    valid = 0
    for position, index in enumerate(order):
        candidate = rwsets[index]
        # A read is stale iff the key was overwritten by an earlier commit.
        current_ok = all(
            effective[key] == version if key in effective else True
            for key, version in candidate.reads.items()
        )
        if current_ok:
            valid += 1
            for key in candidate.writes:
                effective[key] = Version(999, position)
    return valid
