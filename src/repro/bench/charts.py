"""ASCII charts: render benchmark series as horizontal bar charts.

Plotting libraries are unavailable offline, and the paper's figures are
mostly grouped bar/line charts of one metric over one swept parameter —
which horizontal text bars render perfectly well::

    blocksize=16    Fabric   |#########                    348.3
                    Fabric++ |#########                    348.7
    blocksize=1024  Fabric   |#######################      872.7
                    Fabric++ |########################     887.3
"""

from __future__ import annotations

from typing import Dict, Sequence

BAR_WIDTH = 40


def bar_chart(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = BAR_WIDTH,
) -> str:
    """Render grouped horizontal bars, one group per x value."""
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(
        (value for values in series.values() for value in values),
        default=0.0,
    )
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max((len(name) for name in series), default=0)
    group_width = max(
        [len(f"{x_label}={x}") for x in x_values] + [0]
    )

    lines = []
    if title:
        lines.append(title)
    for index, x in enumerate(x_values):
        group = f"{x_label}={x}".ljust(group_width)
        for position, (name, values) in enumerate(series.items()):
            value = values[index]
            bar = "#" * max(0, int(round(value * scale)))
            prefix = group if position == 0 else " " * group_width
            lines.append(
                f"{prefix}  {name.ljust(label_width)} |{bar.ljust(width)} {value:.1f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def sparkline(values: Sequence[float]) -> str:
    """Render a compact one-line trend of ``values``.

    Useful for throughput time series in run summaries.
    """
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    low = min(values)
    high = max(values)
    if high == low:
        return glyphs[len(glyphs) // 2] * len(values)
    span = high - low
    out = []
    for value in values:
        index = int((value - low) / span * (len(glyphs) - 1))
        out.append(glyphs[index])
    return "".join(out)
