"""Process-parallel sweep engine for grids of independent experiments.

Every benchmark grid in this repository is embarrassingly parallel: each
grid point is one self-contained deterministic simulation. ``run_sweep``
fans a list of :class:`ExperimentSpec` across worker processes
(``--jobs N``), consults the on-disk result cache first, reports live
progress (completed/total, per-point wall-clock, ETA), and returns a
:class:`ResultSet` whose order matches the input spec order — so a
parallel sweep is row-for-row identical to a serial one, preserving the
DES's determinism (enforced by ``tests/bench/test_sweep.py``).

``parallel_map`` is the engine's generic sibling for micro-benchmarks
that sweep a pure function instead of a network experiment.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.bench.cache import ResultCache
from repro.bench.results import ExperimentResult, ResultSet
from repro.bench.spec import ExperimentSpec
from repro.errors import ConfigError

#: Environment variable forcing progress output on (``1``) or off (``0``).
PROGRESS_ENV = "REPRO_SWEEP_PROGRESS"


@dataclass
class SweepStats:
    """Bookkeeping of one sweep: cache behaviour and wall-clock timing."""

    total: int = 0
    #: Grid points actually simulated this run.
    executed: int = 0
    #: Grid points served from the on-disk cache.
    cached: int = 0
    jobs: int = 1
    #: Wall-clock seconds for the whole sweep (including cache lookups).
    elapsed_seconds: float = 0.0
    #: Per-point records: label, params, wall-clock seconds, cached flag.
    per_point: List[dict] = field(default_factory=list)

    def summary_line(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"{self.total} point(s): {self.executed} simulated, "
            f"{self.cached} from cache, {self.elapsed_seconds:.1f}s wall "
            f"(jobs={self.jobs})"
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value; 0/None means one worker per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _progress_enabled(progress: Optional[bool]) -> bool:
    if progress is not None:
        return progress
    env = os.environ.get(PROGRESS_ENV)
    if env is not None:
        return env == "1"
    return sys.stderr.isatty()


class SweepProgress:
    """Live progress lines on stderr: completed/total, per-point time, ETA."""

    def __init__(
        self, total: int, enabled: bool, live_total: int = 0, jobs: int = 1
    ) -> None:
        self.total = total
        self.enabled = enabled
        self.completed = 0
        self.live_total = live_total
        self.live_done = 0
        #: Accumulated *measured* simulation seconds of uncached points.
        #: The ETA divides this — never the sweep's wall clock, which also
        #: covers cache scans and near-zero cache hits and would drag the
        #: per-point mean toward zero.
        self.live_seconds = 0.0
        self.jobs = max(1, jobs)
        self.started = time.perf_counter()

    def point_done(self, description: str, seconds: float, cached: bool) -> None:
        """Report one finished grid point."""
        self.completed += 1
        if not cached:
            self.live_done += 1
            self.live_seconds += seconds
        if not self.enabled:
            return
        if cached:
            timing = "cache hit"
        else:
            timing = f"{seconds:.2f}s"
        eta = self._eta()
        eta_text = f" | eta {eta:.0f}s" if eta is not None else ""
        print(
            f"[{self.completed}/{self.total}] {description} ({timing}){eta_text}",
            file=sys.stderr,
            flush=True,
        )

    def _eta(self) -> Optional[float]:
        """Estimated seconds remaining for the *uncached* points.

        Mean measured seconds per simulated point, times the uncached
        points still outstanding, divided by how many workers can run
        them concurrently. Cache hits contribute nothing to either term.
        """
        remaining = self.live_total - self.live_done
        if remaining <= 0 or self.live_done == 0:
            return None
        per_point = self.live_seconds / self.live_done
        return per_point * remaining / min(self.jobs, remaining)


def _mp_context():
    """Prefer fork (cheap, inherits imported bench modules) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute_spec(spec: ExperimentSpec):
    """Worker entry point: run one spec, timing its wall clock."""
    from repro.bench.harness import run_experiment

    started = time.perf_counter()
    result = run_experiment(spec)
    return result, time.perf_counter() - started


def _resolve_cache(
    cache: Union[ResultCache, bool, None], cache_dir
) -> Optional[ResultCache]:
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache(cache_dir)
    return None


def run_sweep(
    specs: Iterable[ExperimentSpec],
    jobs: int = 1,
    cache: Union[ResultCache, bool, None] = None,
    cache_dir=None,
    progress: Optional[bool] = None,
) -> ResultSet:
    """Run a grid of experiment specs, possibly in parallel, with caching.

    ``jobs`` <= 1 runs in-process (no pool); ``jobs`` == 0 uses one worker
    per CPU. ``cache`` may be an explicit :class:`ResultCache`, ``True``
    (open the default ``.repro-cache/`` directory, or ``cache_dir``), or
    None/False (no caching). ``progress`` forces progress lines on or off;
    by default they appear when stderr is a terminal (override with the
    ``REPRO_SWEEP_PROGRESS`` environment variable).

    The returned :class:`ResultSet` preserves the input spec order
    regardless of worker completion order, so results are independent of
    ``jobs``.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    cache_obj = _resolve_cache(cache, cache_dir)
    stats = SweepStats(total=len(specs), jobs=jobs)
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    started = time.perf_counter()

    pending: List[int] = []
    hits: List[int] = []
    for index, spec in enumerate(specs):
        hit = cache_obj.get(spec) if cache_obj is not None else None
        if hit is not None:
            results[index] = hit
            hits.append(index)
        else:
            pending.append(index)

    reporter = SweepProgress(
        total=len(specs),
        enabled=_progress_enabled(progress),
        live_total=len(pending),
        jobs=jobs,
    )
    for index in hits:
        stats.cached += 1
        stats.per_point.append(
            {
                "label": specs[index].resolved_label(),
                "params": dict(specs[index].params),
                "seconds": 0.0,
                "cached": True,
            }
        )
        reporter.point_done(specs[index].describe(), 0.0, cached=True)

    def record(index: int, result: ExperimentResult, seconds: float) -> None:
        results[index] = result
        if cache_obj is not None:
            cache_obj.put(specs[index], result)
        stats.executed += 1
        stats.per_point.append(
            {
                "label": specs[index].resolved_label(),
                "params": dict(specs[index].params),
                "seconds": seconds,
                "cached": False,
            }
        )
        reporter.point_done(specs[index].describe(), seconds, cached=False)

    if pending and jobs <= 1:
        for index in pending:
            result, seconds = _execute_spec(specs[index])
            record(index, result, seconds)
    elif pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ) as pool:
            futures = {
                pool.submit(_execute_spec, specs[index]): index
                for index in pending
            }
            for future in as_completed(futures):
                result, seconds = future.result()
                record(futures[future], result, seconds)

    stats.elapsed_seconds = time.perf_counter() - started
    return ResultSet(results, stats=stats)


def _call_indexed(function: Callable, index: int, item) -> tuple:
    started = time.perf_counter()
    return index, function(item), time.perf_counter() - started


def parallel_map(
    function: Callable,
    items: Sequence,
    jobs: int = 1,
    progress: Optional[bool] = None,
    label: str = "",
) -> list:
    """Map a picklable function over items, optionally across processes.

    The micro-benchmarks (reordering on synthetic blocks, no network) use
    this instead of :func:`run_sweep`: same worker pool and progress
    reporting, ordered results, no cache. ``function`` must be a
    module-level callable so it pickles to workers.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    reporter = SweepProgress(
        total=len(items),
        enabled=_progress_enabled(progress),
        live_total=len(items),
        jobs=jobs,
    )
    prefix = f"{label} " if label else ""
    outputs: List[object] = [None] * len(items)
    if jobs <= 1 or len(items) <= 1:
        for index, item in enumerate(items):
            index, output, seconds = _call_indexed(function, index, item)
            outputs[index] = output
            reporter.point_done(f"{prefix}{item!r}", seconds, cached=False)
        return outputs
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), mp_context=_mp_context()
    ) as pool:
        futures = [
            pool.submit(_call_indexed, function, index, item)
            for index, item in enumerate(items)
        ]
        for future in as_completed(futures):
            index, output, seconds = future.result()
            outputs[index] = output
            reporter.point_done(f"{prefix}{items[index]!r}", seconds, cached=False)
    return outputs
