"""Unified experiment results: one row type, one collection type.

Historically the bench layer juggled three result shapes: bare
:class:`ExperimentResult` objects, the ``{label: result}`` dict returned
by ``compare_fabric_vs_fabricpp``, and ``ReplicatedResult``'s parallel
value lists. :class:`ResultSet` replaces the latter two: an ordered
collection of :class:`ExperimentResult` with mapping-style access by
label, flat ``rows()`` for tables, JSON round-tripping, improvement
factors, and multi-seed aggregation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ReproError
from repro.fabric.config import (
    BackpressureConfig,
    ConsensusConfig,
    CostModel,
    FabricConfig,
    PopulationConfig,
)
from repro.fabric.metrics import PipelineMetrics, TxOutcome
from repro.faults import schedule_from_dict
from repro.traffic import ArrivalProcess

#: Schema version stamped into serialised result sets; bump on breaking change.
RESULTSET_SCHEMA = 1


@dataclass
class ExperimentResult:
    """One experiment's outcome, with the run's identifying labels."""

    label: str
    config: FabricConfig
    metrics: PipelineMetrics
    duration: float
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def successful_tps(self) -> float:
        """Average successful transactions per second."""
        return self.metrics.successful_tps()

    @property
    def failed_tps(self) -> float:
        """Average failed transactions per second."""
        return self.metrics.failed_tps()

    def row(self) -> Dict[str, object]:
        """A flat dict for report tables."""
        summary = self.metrics.summary()
        return {"label": self.label, **self.params, **summary}


# -- (de)serialisation helpers --------------------------------------------------
#
# The cache and ResultSet.to_json share these; every float round-trips
# exactly through JSON (repr-based), so a replayed result is row-for-row
# identical to the live run that produced it.


def config_to_dict(config: FabricConfig) -> Dict[str, object]:
    """Plain-dict form of a configuration (nested dataclasses included)."""
    return asdict(config)


def config_from_dict(data: Dict[str, object]) -> FabricConfig:
    """Rebuild a :class:`FabricConfig` from :func:`config_to_dict` output."""
    data = dict(data)
    batch = BatchCutConfig(**data.pop("batch"))
    costs = CostModel(**data.pop("costs"))
    faults = schedule_from_dict(data.pop("faults", {}))
    # Absent in pre-consensus snapshots (and cache entries they wrote).
    consensus = ConsensusConfig(**data.pop("consensus", {}))
    # Absent in pre-overload snapshots.
    traffic = ArrivalProcess(**data.pop("traffic", {}))
    backpressure = BackpressureConfig(**data.pop("backpressure", {}))
    # Absent in pre-channel snapshots.
    population = PopulationConfig(**data.pop("population", {}))
    if "channel_cc_strategies" in data:
        data["channel_cc_strategies"] = tuple(data["channel_cc_strategies"])
    return FabricConfig(
        batch=batch,
        costs=costs,
        faults=faults,
        consensus=consensus,
        traffic=traffic,
        backpressure=backpressure,
        population=population,
        **data,
    )


def metrics_to_dict(metrics: PipelineMetrics) -> Dict[str, object]:
    """Full snapshot of one run's metrics (counters and samples).

    The ``cost_breakdown`` key appears only when a traced run attached
    one, so snapshots of untraced runs are byte-identical to those of
    pre-trace builds (golden-hash discipline).
    """
    snapshot = {
        "outcomes": {
            outcome.value: count
            for outcome, count in metrics.outcomes.items()
            if count
        },
        "commit_latencies": list(metrics.commit_latencies),
        "outcome_times": [[time, outcome.value] for time, outcome in metrics.outcome_times],
        "phase_latencies": [list(sample) for sample in metrics.phase_latencies],
        "fired": metrics.fired,
        "blocks_committed": metrics.blocks_committed,
        "block_sizes": list(metrics.block_sizes),
        "duration": metrics.duration,
        "fault_counters": dict(metrics.fault_counters),
        "fault_events": [list(event) for event in metrics.fault_events],
    }
    if metrics.cost_breakdown is not None:
        snapshot["cost_breakdown"] = metrics.cost_breakdown.to_dict()
    if metrics.validation is not None:
        snapshot["validation"] = metrics.validation.to_dict()
    if metrics.consensus is not None:
        snapshot["consensus"] = metrics.consensus.to_dict()
    if metrics.overload is not None:
        snapshot["overload"] = metrics.overload.to_dict()
    if metrics.channels is not None:
        snapshot["channels"] = metrics.channels.to_dict()
    if metrics.streaming is not None:
        snapshot["streaming"] = metrics.streaming.to_dict()
    return snapshot


def metrics_from_dict(data: Dict[str, object]) -> PipelineMetrics:
    """Rebuild :class:`PipelineMetrics` from :func:`metrics_to_dict` output."""
    metrics = PipelineMetrics()
    for value, count in data["outcomes"].items():
        metrics.outcomes[TxOutcome(value)] = count
    metrics.commit_latencies = list(data["commit_latencies"])
    metrics.outcome_times = [
        (time, TxOutcome(value)) for time, value in data["outcome_times"]
    ]
    metrics.phase_latencies = [tuple(sample) for sample in data["phase_latencies"]]
    metrics.fired = data["fired"]
    metrics.blocks_committed = data["blocks_committed"]
    metrics.block_sizes = list(data["block_sizes"])
    metrics.duration = data["duration"]
    # Absent in pre-fault snapshots (and cache entries written by them).
    metrics.fault_counters = dict(data.get("fault_counters", {}))
    metrics.fault_events = [tuple(event) for event in data.get("fault_events", [])]
    if "cost_breakdown" in data:
        from repro.trace.cost import CostBreakdown

        metrics.cost_breakdown = CostBreakdown.from_dict(data["cost_breakdown"])
    if "validation" in data:
        from repro.fabric.metrics import ValidationStats

        metrics.validation = ValidationStats.from_dict(data["validation"])
    if "consensus" in data:
        from repro.fabric.metrics import ConsensusStats

        metrics.consensus = ConsensusStats.from_dict(data["consensus"])
    if "overload" in data:
        from repro.fabric.metrics import OverloadStats

        metrics.overload = OverloadStats.from_dict(data["overload"])
    if "channels" in data:
        from repro.fabric.metrics import ChannelFleetStats

        metrics.channels = ChannelFleetStats.from_dict(data["channels"])
    if "streaming" in data:
        from repro.fabric.metrics import StreamingMetrics

        metrics.streaming = StreamingMetrics.from_dict(data["streaming"])
    return metrics


def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    """Plain-dict form of one result, suitable for JSON."""
    return {
        "label": result.label,
        "duration": result.duration,
        "params": dict(result.params),
        "config": config_to_dict(result.config),
        "metrics": metrics_to_dict(result.metrics),
    }


def result_from_dict(data: Dict[str, object]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`."""
    return ExperimentResult(
        label=data["label"],
        config=config_from_dict(data["config"]),
        metrics=metrics_from_dict(data["metrics"]),
        duration=data["duration"],
        params=dict(data["params"]),
    )


class ResultSet:
    """An ordered collection of :class:`ExperimentResult`.

    Access is mapping-style by label (``result_set["Fabric++"]`` returns
    the first result with that label; iteration yields labels, so
    ``set(result_set)`` gives the label set) or positional by integer
    index. ``results`` exposes the underlying ordered list.
    """

    def __init__(self, results: Iterable[ExperimentResult] = (), stats=None) -> None:
        self.results: List[ExperimentResult] = list(results)
        #: Optional :class:`repro.bench.sweep.SweepStats` of the producing run.
        self.stats = stats

    # -- collection protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[str]:
        return (result.label for result in self.results)

    def __contains__(self, label: object) -> bool:
        return any(result.label == label for result in self.results)

    def __getitem__(self, key: Union[str, int]) -> ExperimentResult:
        if isinstance(key, int):
            return self.results[key]
        for result in self.results:
            if result.label == key:
                return result
        raise KeyError(key)

    def get(self, label: str, default=None) -> Optional[ExperimentResult]:
        """First result with ``label``, or ``default``."""
        try:
            return self[label]
        except KeyError:
            return default

    def items(self) -> Iterator[tuple]:
        """``(label, result)`` pairs in run order."""
        return ((result.label, result) for result in self.results)

    def values(self) -> List[ExperimentResult]:
        """The results in run order."""
        return list(self.results)

    def labels(self) -> List[str]:
        """Unique labels in first-appearance order."""
        seen: List[str] = []
        for result in self.results:
            if result.label not in seen:
                seen.append(result.label)
        return seen

    def select(self, label: str) -> "ResultSet":
        """All results carrying ``label``, as a new set."""
        return ResultSet(result for result in self.results if result.label == label)

    def append(self, result: ExperimentResult) -> None:
        """Add one result at the end."""
        self.results.append(result)

    # -- consumption surface ----------------------------------------------------

    def rows(self) -> List[Dict[str, object]]:
        """Flat dict-rows for report tables, in run order."""
        return [result.row() for result in self.results]

    def channel_rows(self) -> List[Dict[str, object]]:
        """Per-channel breakdown rows of every sharded result.

        Each sharded result contributes one ``channel="fleet"`` row (the
        aggregate, with the saga counters inlined) followed by its
        per-channel rows; single-runtime results contribute nothing.
        """
        rows: List[Dict[str, object]] = []
        for result in self.results:
            fleet = result.metrics.channels
            if fleet is None:
                continue
            rows.append(
                {
                    "label": result.label,
                    **result.params,
                    "channel": "fleet",
                    "fired": result.metrics.fired,
                    "successful": result.metrics.successful,
                    "failed": result.metrics.failed,
                    "successful_tps": round(result.metrics.successful_tps(), 2),
                    "failed_tps": round(result.metrics.failed_tps(), 2),
                    "blocks": result.metrics.blocks_committed,
                    **{
                        f"saga_{key}": value
                        for key, value in fleet.saga.summary().items()
                    },
                }
            )
            for row in fleet.per_channel:
                rows.append({"label": result.label, **result.params, **row})
        return rows

    def to_json(self) -> str:
        """Serialise every result (full metrics) to a JSON document."""
        payload = {
            "schema_version": RESULTSET_SCHEMA,
            "results": [result_to_dict(result) for result in self.results],
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a set serialised by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"cannot parse result set: {error}") from error
        if payload.get("schema_version") != RESULTSET_SCHEMA:
            raise ReproError(
                f"unsupported result-set schema {payload.get('schema_version')!r}"
            )
        return cls(result_from_dict(entry) for entry in payload["results"])

    def improvement_factor(
        self, baseline: str = "Fabric", improved: str = "Fabric++"
    ) -> float:
        """Ratio of mean successful throughput, ``improved`` over ``baseline``.

        With one result per label (the compare case) this is the paper's
        plain "x" factor; over a grid it is the ratio of per-label means.
        """
        from repro.bench.report import improvement_factor as factor

        return factor(
            self.aggregate(label=baseline)["mean"],
            self.aggregate(label=improved)["mean"],
        )

    def aggregate(
        self, metric: str = "successful_tps", label: Optional[str] = None
    ) -> Dict[str, object]:
        """Mean/stdev of ``metric`` over the (optionally label-filtered) set.

        This subsumes the old ``ReplicatedResult``: run one config under
        several seeds and aggregate the spread. The stdev is the
        population standard deviation, as before.
        """
        subset = self.results if label is None else [
            result for result in self.results if result.label == label
        ]
        values = [float(getattr(result, metric)) for result in subset]
        if not values:
            return {"n": 0, "mean": 0.0, "stdev": 0.0, "values": []}
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / len(values)
        return {
            "n": len(values),
            "mean": mean,
            "stdev": variance ** 0.5,
            "values": values,
        }

    def format_table(self, title: str = "") -> str:
        """Render :meth:`rows` as an aligned text table."""
        from repro.bench.report import format_table

        return format_table(self.rows(), title=title)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({len(self.results)} results, labels={self.labels()})"
