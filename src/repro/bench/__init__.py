"""Benchmark harness.

The paper's experiments are driven by the authors' own benchmarking
framework (Section 6.2.1) plus one Hyperledger Caliper run (Section 6.7).
This package provides both:

- :mod:`repro.bench.harness` — run a configuration against a workload and
  collect throughput/latency numbers; compare vanilla Fabric against
  Fabric++ on identical inputs;
- :mod:`repro.bench.caliper` — a Caliper-style report (min/avg/max latency
  plus successful TPS, Table 8);
- :mod:`repro.bench.report` — plain-text tables and series matching the
  rows the paper's figures plot.
"""

from repro.bench.caliper import CaliperReport, run_caliper
from repro.bench.harness import (
    ExperimentResult,
    compare_fabric_vs_fabricpp,
    run_experiment,
)
from repro.bench.report import format_series, format_table

__all__ = [
    "CaliperReport",
    "run_caliper",
    "ExperimentResult",
    "compare_fabric_vs_fabricpp",
    "run_experiment",
    "format_series",
    "format_table",
]
