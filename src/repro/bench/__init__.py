"""Benchmark harness.

The paper's experiments are driven by the authors' own benchmarking
framework (Section 6.2.1) plus one Hyperledger Caliper run (Section 6.7).
This package provides both, organised around a single unit of work — the
picklable :class:`ExperimentSpec`:

- :mod:`repro.bench.spec` — experiments described as data (config +
  workload reference + duration + drain + seed + label);
- :mod:`repro.bench.harness` — ``run_experiment(spec)``: run one spec and
  collect throughput/latency numbers; compare vanilla Fabric against
  Fabric++ on identical inputs; replicate a config over seeds;
- :mod:`repro.bench.sweep` — fan a grid of specs across worker processes
  with on-disk result caching and live progress;
- :mod:`repro.bench.cache` — the ``.repro-cache/`` result store keyed by
  a stable hash of (config, workload, duration, package version);
- :mod:`repro.bench.results` — the unified :class:`ResultSet` consumed by
  reports, charts, and the CLI;
- :mod:`repro.bench.caliper` — a Caliper-style report (min/avg/max latency
  plus successful TPS, Table 8);
- :mod:`repro.bench.report` — plain-text tables and series matching the
  rows the paper's figures plot.
"""

from repro.bench.cache import ResultCache, spec_fingerprint
from repro.bench.caliper import (
    CaliperReport,
    caliper_spec,
    report_from_result,
    run_caliper,
)
from repro.bench.harness import (
    compare_fabric_vs_fabricpp,
    run_experiment,
    run_replicated,
)
from repro.bench.report import format_series, format_table, improvement_factor
from repro.bench.results import ExperimentResult, ResultSet
from repro.bench.spec import DEFAULT_DRAIN, DEFAULT_DURATION, ExperimentSpec
from repro.bench.sweep import SweepStats, parallel_map, run_sweep
from repro.workloads.registry import WorkloadRef

__all__ = [
    "CaliperReport",
    "caliper_spec",
    "report_from_result",
    "run_caliper",
    "ExperimentResult",
    "ExperimentSpec",
    "DEFAULT_DURATION",
    "DEFAULT_DRAIN",
    "ResultCache",
    "ResultSet",
    "SweepStats",
    "WorkloadRef",
    "compare_fabric_vs_fabricpp",
    "parallel_map",
    "run_experiment",
    "run_replicated",
    "run_sweep",
    "spec_fingerprint",
    "format_series",
    "format_table",
    "improvement_factor",
]
