"""Picklable experiment descriptions — the sweep engine's unit of work.

An :class:`ExperimentSpec` captures everything one simulated run needs as
plain data: the network configuration, a workload reference, the firing
duration, the post-run drain window, an optional seed override, a display
label, and the report parameters the run should carry into its result
row. Because a spec is data rather than a closure, it can be pickled to a
worker process and hashed into a stable on-disk cache key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Union

from repro.fabric.config import FabricConfig
from repro.workloads.base import Workload
from repro.workloads.registry import WorkloadRef

#: Default simulated run length for benchmark experiments. The paper fires
#: for 90 s; shapes stabilise far earlier in the deterministic simulator,
#: so benchmarks default to a shorter window and report the value used.
DEFAULT_DURATION = 5.0

#: Default post-run drain window (simulated seconds) during which in-flight
#: transactions may still resolve; matches :meth:`FabricNetwork.run`.
DEFAULT_DRAIN = 3.0

#: What a spec accepts as its workload: a data-only registry reference
#: (cacheable, preferred), a concrete instance, or a per-channel factory.
WorkloadLike = Union[WorkloadRef, Workload, Callable]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, described entirely as data.

    ``run_experiment(spec)`` is the canonical entry point consuming it;
    :func:`repro.bench.sweep.run_sweep` fans lists of specs across worker
    processes. Only specs whose ``workload`` is a :class:`WorkloadRef`
    participate in the on-disk result cache.
    """

    config: FabricConfig
    workload: WorkloadLike
    duration: float = DEFAULT_DURATION
    label: str = ""
    #: When set, overrides ``config.seed`` for this run.
    seed: Optional[int] = None
    #: Simulated seconds the network keeps running after clients stop.
    drain: float = DEFAULT_DRAIN
    #: Report parameters carried verbatim into the result row (e.g. the
    #: swept axis value: ``{"BS": 1024}``).
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    @property
    def is_cacheable(self) -> bool:
        """True when the workload is described as data (a registry ref)."""
        return isinstance(self.workload, WorkloadRef)

    def resolved_config(self) -> FabricConfig:
        """The effective configuration (seed override applied)."""
        if self.seed is None:
            return self.config
        return replace(self.config, seed=self.seed)

    def resolved_label(self) -> str:
        """The explicit label, or the system name the config implies."""
        return self.label or (
            "Fabric++" if self.config.is_fabric_plus_plus else "Fabric"
        )

    def build_workload(self):
        """Materialise the workload for :class:`FabricNetwork`."""
        if isinstance(self.workload, WorkloadRef):
            return self.workload.build()
        return self.workload

    def describe(self) -> str:
        """Short human-readable form for progress lines."""
        if self.params:
            knobs = ", ".join(f"{key}={value}" for key, value in self.params.items())
            return f"{self.resolved_label()} ({knobs})"
        return self.resolved_label()
