"""Plain-text tables and series for benchmark output.

The benchmark targets print the same rows/series the paper's figures plot;
these helpers render them readably on a terminal without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned text table (first row fixes columns)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render several y-series over shared x-values, one row per x.

    This is the textual analogue of one paper figure: each series is a
    plotted line (e.g. "Fabric" and "Fabric++").
    """
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = round(values[index], 1)
        rows.append(row)
    return format_table(rows, title=title)


def improvement_factor(baseline: float, improved: float) -> float:
    """Improvement of ``improved`` over ``baseline`` (paper's 'x' factors)."""
    if baseline <= 0:
        return float("inf") if improved > 0 else 1.0
    return improved / baseline


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, dict):
        return ",".join(f"{k}={v}" for k, v in value.items())
    return str(value)
