"""Caliper-style benchmark report (paper Section 6.7, Table 8).

Hyperledger Caliper reports maximum, minimum, and average transaction
latency together with the throughput of successful transactions. The paper
runs it at a reduced firing rate (150 proposals/s per client, 600 total)
with block size 512, because Caliper cannot sustain the main experiments'
rates. :func:`run_caliper` reproduces that setup; :func:`caliper_spec`
exposes the same scenario as an :class:`ExperimentSpec` so Caliper grids
run through the sweep engine like every other benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.bench.results import ExperimentResult
from repro.bench.spec import DEFAULT_DRAIN, ExperimentSpec, WorkloadLike
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig


@dataclass(frozen=True)
class CaliperReport:
    """The Table 8 metric quadruple for one system."""

    label: str
    max_latency: float
    min_latency: float
    avg_latency: float
    successful_tps: float

    def rows(self) -> list:
        """Rows in the paper's Table 8 ordering."""
        return [
            ("Max. Latency [seconds]", round(self.max_latency, 2)),
            ("Min. Latency [seconds]", round(self.min_latency, 2)),
            ("Avg. Latency [seconds]", round(self.avg_latency, 2)),
            ("Avg. Successful Transactions per second", round(self.successful_tps)),
        ]


def caliper_spec(
    config: FabricConfig,
    workload: WorkloadLike,
    duration: float = 10.0,
    rate_per_client: float = 150.0,
    block_size: int = 512,
    label: Optional[str] = None,
    drain: float = DEFAULT_DRAIN,
) -> ExperimentSpec:
    """Describe the Caliper scenario (low rate, block size 512) as a spec."""
    caliper_config = replace(
        config,
        client_rate=rate_per_client,
        batch=replace(config.batch, max_transactions=block_size),
    )
    return ExperimentSpec(
        config=caliper_config,
        workload=workload,
        duration=duration,
        label=label or "",
        drain=drain,
    )


def report_from_result(result: ExperimentResult) -> CaliperReport:
    """Condense one experiment result into the Table 8 quadruple."""
    latency = result.metrics.latency()
    if latency is None:
        raise RuntimeError("no transaction committed; cannot report latency")
    return CaliperReport(
        label=result.label,
        max_latency=latency.maximum,
        min_latency=latency.minimum,
        avg_latency=latency.average,
        successful_tps=result.metrics.successful_tps(),
    )


def run_caliper(
    config: FabricConfig,
    workload: WorkloadLike,
    duration: float = 10.0,
    rate_per_client: float = 150.0,
    block_size: int = 512,
    label: Optional[str] = None,
) -> CaliperReport:
    """Run the Caliper scenario: low rate, block size 512."""
    from repro.bench.harness import run_experiment

    spec = caliper_spec(
        config,
        workload,
        duration=duration,
        rate_per_client=rate_per_client,
        block_size=block_size,
        label=label,
    )
    return report_from_result(run_experiment(spec))


__all__ = [
    "CaliperReport",
    "caliper_spec",
    "report_from_result",
    "run_caliper",
    "BatchCutConfig",
]
