"""Caliper-style benchmark report (paper Section 6.7, Table 8).

Hyperledger Caliper reports maximum, minimum, and average transaction
latency together with the throughput of successful transactions. The paper
runs it at a reduced firing rate (150 proposals/s per client, 600 total)
with block size 512, because Caliper cannot sustain the main experiments'
rates. :func:`run_caliper` reproduces that setup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork, WorkloadSpec


@dataclass(frozen=True)
class CaliperReport:
    """The Table 8 metric quadruple for one system."""

    label: str
    max_latency: float
    min_latency: float
    avg_latency: float
    successful_tps: float

    def rows(self) -> list:
        """Rows in the paper's Table 8 ordering."""
        return [
            ("Max. Latency [seconds]", round(self.max_latency, 2)),
            ("Min. Latency [seconds]", round(self.min_latency, 2)),
            ("Avg. Latency [seconds]", round(self.avg_latency, 2)),
            ("Avg. Successful Transactions per second", round(self.successful_tps)),
        ]


def run_caliper(
    config: FabricConfig,
    workload: WorkloadSpec,
    duration: float = 10.0,
    rate_per_client: float = 150.0,
    block_size: int = 512,
    label: Optional[str] = None,
) -> CaliperReport:
    """Run the Caliper scenario: low rate, block size 512."""
    caliper_config = replace(
        config,
        client_rate=rate_per_client,
        batch=replace(config.batch, max_transactions=block_size),
    )
    network = FabricNetwork(caliper_config, workload)
    metrics = network.run(duration=duration)
    latency = metrics.latency()
    if latency is None:
        raise RuntimeError("no transaction committed; cannot report latency")
    return CaliperReport(
        label=label
        or ("Fabric++" if caliper_config.is_fabric_plus_plus else "Fabric"),
        max_latency=latency.maximum,
        min_latency=latency.minimum,
        avg_latency=latency.average,
        successful_tps=metrics.successful_tps(),
    )


__all__ = ["CaliperReport", "run_caliper", "BatchCutConfig"]
