"""Experiment runner: one spec, one simulation, one set of numbers.

Mirrors the paper's framework (Section 6.2.1): fire proposals uniformly at
a specified rate from multiple clients in multiple channels and report the
throughput of successful and aborted transactions per second.

The canonical entry point is ``run_experiment(spec)`` with a single
:class:`ExperimentSpec`; the historical
``run_experiment(config, workload, duration, label, params)`` signature
still works and is converted to a spec internally. Grids of specs run
through :func:`repro.bench.sweep.run_sweep`, in parallel and cached.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.bench.results import ExperimentResult, ResultSet
from repro.bench.spec import DEFAULT_DRAIN, DEFAULT_DURATION, ExperimentSpec
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork, WorkloadSpec
from repro.workloads.registry import WorkloadRef


def run_experiment(
    spec: Union[ExperimentSpec, FabricConfig],
    workload: Optional[WorkloadSpec] = None,
    duration: Optional[float] = None,
    label: str = "",
    params: Optional[Dict[str, object]] = None,
    drain: Optional[float] = None,
) -> ExperimentResult:
    """Build a network, run the workload, and collect metrics.

    Preferred form: ``run_experiment(spec)`` with everything described by
    one :class:`ExperimentSpec`. The legacy positional form builds the
    spec on the fly from a config plus a workload (instance, per-channel
    factory, or :class:`WorkloadRef`).
    """
    if isinstance(spec, ExperimentSpec):
        if workload is not None:
            raise TypeError(
                "run_experiment(spec) takes no separate workload argument"
            )
        experiment = spec
    else:
        if workload is None:
            raise TypeError("run_experiment(config, workload, ...) needs a workload")
        experiment = ExperimentSpec(
            config=spec,
            workload=workload,
            duration=DEFAULT_DURATION if duration is None else duration,
            label=label,
            params=dict(params or {}),
            drain=DEFAULT_DRAIN if drain is None else drain,
        )
    result, _network = run_experiment_with_network(experiment)
    return result


def run_experiment_with_network(
    spec: ExperimentSpec, tracer=None
) -> "tuple[ExperimentResult, FabricNetwork]":
    """Run one spec and return the result *and* the live network.

    Sharded specs (``config.channels >= 2``) return a
    :class:`repro.channels.ShardedNetwork` instead of a
    :class:`FabricNetwork`; both expose ``peers``/``orderers``/
    ``channels``, and the sharded fleet adds ``runtimes``.

    The network gives callers post-run access to the peers — for ledger
    export (``repro-bench run --export-ledger``), crash-recovery oracle
    checks, and fault forensics. Plain sweeps should use
    :func:`run_experiment`; a live network is not picklable.

    ``tracer`` (a :class:`repro.trace.Tracer`) opts the run into the
    observability layer; it is runtime-only and never part of the spec,
    so cache fingerprints are unaffected.
    """
    config = spec.resolved_config()
    # Imported here: repro.channels sits above the fabric layer, and the
    # bench package is imported by modules repro.channels depends on.
    from repro.channels import build_network

    network = build_network(config, spec.build_workload(), tracer=tracer)
    metrics = network.run(duration=spec.duration, drain=spec.drain)
    result = ExperimentResult(
        label=spec.resolved_label(),
        config=config,
        metrics=metrics,
        duration=spec.duration,
        params=dict(spec.params),
    )
    return result, network


def run_replicated(
    config: FabricConfig,
    workload_factory: Callable[[int], WorkloadSpec],
    seeds,
    duration: float = DEFAULT_DURATION,
    label: str = "",
    drain: float = DEFAULT_DRAIN,
) -> ResultSet:
    """Run the same configuration under several seeds and collect the runs.

    ``workload_factory`` receives each seed so the workload stream varies
    with the network seed. The paper reports single 90-second runs; this
    replication utility quantifies run-to-run spread in the simulator:
    ``run_replicated(...).aggregate()`` yields mean/stdev of successful
    throughput over the replicas.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("run_replicated needs at least one seed")
    results = ResultSet()
    for seed in seeds:
        spec = ExperimentSpec(
            config=config,
            workload=workload_factory(seed),
            duration=duration,
            label=label,
            seed=seed,
            drain=drain,
            params={"seed": seed},
        )
        results.append(run_experiment(spec))
    return results


def compare_fabric_vs_fabricpp(
    base_config: FabricConfig,
    workload_factory: Union[WorkloadRef, Callable[[], WorkloadSpec]],
    duration: float = DEFAULT_DURATION,
    params: Optional[Dict[str, object]] = None,
    drain: float = DEFAULT_DRAIN,
) -> ResultSet:
    """Run vanilla Fabric and Fabric++ on identical fresh workloads.

    ``workload_factory`` is either a :class:`WorkloadRef` (each system
    builds its own instance from the same data) or a zero-argument
    callable returning a *fresh* workload per call, so the two systems
    see identical, independent initial states and invocation streams
    (both are seeded from the same configuration seed). Returns a
    :class:`ResultSet` with labels ``"Fabric"`` and ``"Fabric++"``.
    """
    results = ResultSet()
    for label, config in (
        ("Fabric", base_config.with_vanilla()),
        ("Fabric++", base_config.with_fabric_plus_plus()),
    ):
        workload = (
            workload_factory
            if isinstance(workload_factory, WorkloadRef)
            else workload_factory()
        )
        spec = ExperimentSpec(
            config=config,
            workload=workload,
            duration=duration,
            label=label,
            params=dict(params or {}),
            drain=drain,
        )
        results.append(run_experiment(spec))
    return results
