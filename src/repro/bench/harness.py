"""Experiment runner: one configuration, one workload, one set of numbers.

Mirrors the paper's framework (Section 6.2.1): fire proposals uniformly at
a specified rate from multiple clients in multiple channels and report the
throughput of successful and aborted transactions per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics
from repro.fabric.network import FabricNetwork, WorkloadSpec

#: Default simulated run length for benchmark experiments. The paper fires
#: for 90 s; shapes stabilise far earlier in the deterministic simulator,
#: so benchmarks default to a shorter window and report the value used.
DEFAULT_DURATION = 5.0


@dataclass
class ExperimentResult:
    """One experiment's outcome, with the run's identifying labels."""

    label: str
    config: FabricConfig
    metrics: PipelineMetrics
    duration: float
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def successful_tps(self) -> float:
        """Average successful transactions per second."""
        return self.metrics.successful_tps()

    @property
    def failed_tps(self) -> float:
        """Average failed transactions per second."""
        return self.metrics.failed_tps()

    def row(self) -> Dict[str, object]:
        """A flat dict for report tables."""
        summary = self.metrics.summary()
        return {"label": self.label, **self.params, **summary}


def run_experiment(
    config: FabricConfig,
    workload: WorkloadSpec,
    duration: float = DEFAULT_DURATION,
    label: str = "",
    params: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Build a network, run the workload, and collect metrics."""
    network = FabricNetwork(config, workload)
    metrics = network.run(duration=duration)
    return ExperimentResult(
        label=label or ("Fabric++" if config.is_fabric_plus_plus else "Fabric"),
        config=config,
        metrics=metrics,
        duration=duration,
        params=dict(params or {}),
    )


@dataclass
class ReplicatedResult:
    """Aggregate of one configuration run under several seeds."""

    label: str
    seeds: list
    successful_tps_values: list
    failed_tps_values: list

    @property
    def mean_successful_tps(self) -> float:
        """Mean successful throughput over the replicas."""
        return sum(self.successful_tps_values) / len(self.successful_tps_values)

    @property
    def stdev_successful_tps(self) -> float:
        """Population standard deviation of successful throughput."""
        mean = self.mean_successful_tps
        variance = sum(
            (value - mean) ** 2 for value in self.successful_tps_values
        ) / len(self.successful_tps_values)
        return variance ** 0.5

    def row(self) -> Dict[str, object]:
        """A flat dict for report tables."""
        return {
            "label": self.label,
            "replicas": len(self.seeds),
            "successful_tps_mean": round(self.mean_successful_tps, 1),
            "successful_tps_stdev": round(self.stdev_successful_tps, 1),
            "failed_tps_mean": round(
                sum(self.failed_tps_values) / len(self.failed_tps_values), 1
            ),
        }


def run_replicated(
    config: FabricConfig,
    workload_factory: Callable[[int], WorkloadSpec],
    seeds,
    duration: float = DEFAULT_DURATION,
    label: str = "",
) -> ReplicatedResult:
    """Run the same configuration under several seeds and aggregate.

    ``workload_factory`` receives each seed so the workload stream varies
    with the network seed. The paper reports single 90-second runs; this
    replication utility quantifies run-to-run spread in the simulator.
    """
    from dataclasses import replace as _replace

    seeds = list(seeds)
    if not seeds:
        raise ValueError("run_replicated needs at least one seed")
    successful = []
    failed = []
    for seed in seeds:
        seeded = _replace(config, seed=seed)
        result = run_experiment(
            seeded, workload_factory(seed), duration, label=label
        )
        successful.append(result.successful_tps)
        failed.append(result.failed_tps)
    return ReplicatedResult(
        label=label or ("Fabric++" if config.is_fabric_plus_plus else "Fabric"),
        seeds=seeds,
        successful_tps_values=successful,
        failed_tps_values=failed,
    )


def compare_fabric_vs_fabricpp(
    base_config: FabricConfig,
    workload_factory: Callable[[], WorkloadSpec],
    duration: float = DEFAULT_DURATION,
    params: Optional[Dict[str, object]] = None,
) -> Dict[str, ExperimentResult]:
    """Run vanilla Fabric and Fabric++ on identical fresh workloads.

    ``workload_factory`` must build a *fresh* workload per call so the two
    systems see identical, independent initial states and invocation
    streams (both are seeded from the same configuration seed).
    """
    results = {}
    for label, config in (
        ("Fabric", base_config.with_vanilla()),
        ("Fabric++", base_config.with_fabric_plus_plus()),
    ):
        results[label] = run_experiment(
            config, workload_factory(), duration, label=label, params=params
        )
    return results
