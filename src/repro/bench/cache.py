"""On-disk result cache keyed by a stable experiment fingerprint.

Re-running a benchmark grid recomputes only the grid points whose spec
actually changed: every completed run is stored under
``.repro-cache/<fingerprint>.json``, where the fingerprint is a SHA-256
over the canonical JSON of (configuration, workload reference, duration,
drain, package version, cache format). Any field change — a config knob,
a workload parameter, the seed, the duration — produces a different key;
bumping the package version invalidates everything at once.

Only specs whose workload is a :class:`~repro.workloads.registry.WorkloadRef`
are cacheable; closures and ad-hoc workload instances cannot be
fingerprinted and always run live.

The cache stores the run's *full* metrics snapshot, so a cache hit
reconstructs an :class:`ExperimentResult` that is row-for-row identical
to the live run that produced it (floats round-trip exactly through
JSON). The requesting spec's label and report params are re-applied on
load — they identify the row, not the simulation, and are deliberately
not part of the key.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.bench.results import (
    ExperimentResult,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.bench.spec import ExperimentSpec

#: Bump when the stored payload layout changes; invalidates old entries.
#: 2: metrics snapshots may carry a "validation" key (pipeline stats),
#: and configs gained the validation_workers/scheduler/pipeline_depth
#: knobs — which flow into the key via config_to_dict automatically.
#: 3: metrics snapshots may carry a "consensus" key, and configs gained
#: orderer_nodes plus the nested ConsensusConfig timing knobs (also in
#: the key via config_to_dict).
#: 4: metrics snapshots may carry an "overload" key, and configs gained
#: the nested traffic (ArrivalProcess) and backpressure
#: (BackpressureConfig) knobs plus FaultSchedule.misbehaviors (all in
#: the key via config_to_dict).
#: 5: configs gained the cc_strategy knob (in the key via
#: config_to_dict), ValidationStats snapshots gained a "strategy"
#: field, and outcome tables may carry "abort_occ_ww".
#: 6: configs gained the streaming_metrics knob (in the key via
#: config_to_dict) and metric snapshots may carry a conditional
#: "streaming" aggregate block.
CACHE_FORMAT = 6

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _package_version() -> str:
    """The installed package version (part of every cache key)."""
    import repro

    return repro.__version__


def spec_fingerprint(spec: ExperimentSpec, version: Optional[str] = None) -> str:
    """Stable hex fingerprint of everything that determines a run's output.

    Raises :class:`TypeError` for non-cacheable specs (workload not a
    :class:`WorkloadRef`).
    """
    if not spec.is_cacheable:
        raise TypeError(
            "only specs with a WorkloadRef workload can be fingerprinted"
        )
    payload = {
        "cache_format": CACHE_FORMAT,
        "version": version if version is not None else _package_version(),
        "config": config_to_dict(spec.resolved_config()),
        "workload": spec.workload.describe(),
        "duration": spec.duration,
        "drain": spec.drain,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """File-per-entry result cache under a root directory.

    The directory is created lazily on the first ``put``. ``hits`` and
    ``misses`` count ``get`` calls for sweep statistics.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        version: Optional[str] = None,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self._version = version
        self.hits = 0
        self.misses = 0

    @property
    def version(self) -> str:
        """The package version keyed into every fingerprint."""
        return self._version if self._version is not None else _package_version()

    def key(self, spec: ExperimentSpec) -> Optional[str]:
        """The spec's cache key, or None when the spec is not cacheable."""
        if not spec.is_cacheable:
            return None
        return spec_fingerprint(spec, version=self.version)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """The cached result for ``spec``, or None on a miss.

        Corrupt or unreadable entries count as misses (and are removed),
        so a damaged cache degrades to recomputation, never to an error.
        """
        key = self.key(spec)
        if key is None:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            metrics = metrics_from_dict(payload["metrics"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return ExperimentResult(
            label=spec.resolved_label(),
            config=spec.resolved_config(),
            metrics=metrics,
            duration=spec.duration,
            params=dict(spec.params),
        )

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> bool:
        """Store ``result`` under the spec's key; False if not cacheable."""
        key = self.key(spec)
        if key is None:
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_format": CACHE_FORMAT,
            "version": self.version,
            "fingerprint": key,
            "metrics": metrics_to_dict(result.metrics),
        }
        path = self._path(key)
        # Atomic publish: never leave a half-written entry behind.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return True

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
