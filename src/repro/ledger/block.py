"""Blocks: the unit of ordering, distribution, validation, and commit.

A block carries an ordered list of transactions plus, after validation, a
per-transaction validity flag — Fabric appends *all* transactions to the
ledger, valid and invalid alike (paper Section 2.2.4), and marks the invalid
ones. Blocks are hash-chained through their headers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def _tx_digest(transaction: object) -> bytes:
    """Return canonical bytes identifying a transaction for hashing."""
    digest = getattr(transaction, "digest", None)
    if callable(digest):
        return digest()
    return repr(transaction).encode()


def compute_block_hash(
    block_id: int, previous_hash: bytes, transactions: Sequence[object]
) -> bytes:
    """Compute the SHA-256 hash chaining a block to its predecessor."""
    hasher = hashlib.sha256()
    hasher.update(block_id.to_bytes(8, "big"))
    hasher.update(previous_hash)
    for transaction in transactions:
        hasher.update(_tx_digest(transaction))
    return hasher.digest()


@dataclass(frozen=True)
class BlockHeader:
    """Immutable header linking a block into the chain."""

    block_id: int
    previous_hash: bytes
    data_hash: bytes


@dataclass
class Block:
    """An ordered batch of transactions cut by the ordering service.

    ``validity`` is filled in by the validation phase: it maps each
    transaction id to True (valid, effects committed) or False (invalid,
    effects discarded). Until validation it is empty.
    """

    header: BlockHeader
    transactions: List[object]
    validity: Dict[str, bool] = field(default_factory=dict)
    #: Transactions dropped by Fabric++'s orderer-side early abort; kept on
    #: the block for accounting (they never reach the peers' validators as
    #: candidates, but the ledger still records them as invalid).
    early_aborted: List[object] = field(default_factory=list)

    @property
    def block_id(self) -> int:
        """The position of this block in the chain (genesis is 0)."""
        return self.header.block_id

    def __len__(self) -> int:
        return len(self.transactions)

    def mark(self, tx_id: str, valid: bool) -> None:
        """Record the validation outcome of one transaction."""
        self.validity[tx_id] = valid

    def is_valid(self, tx_id: str) -> Optional[bool]:
        """Return the validation outcome for ``tx_id`` (None if unset)."""
        return self.validity.get(tx_id)

    @classmethod
    def create(
        cls,
        block_id: int,
        previous_hash: bytes,
        transactions: Sequence[object],
        early_aborted: Sequence[object] = (),
    ) -> "Block":
        """Build a block, computing its chained data hash."""
        data_hash = compute_block_hash(block_id, previous_hash, transactions)
        header = BlockHeader(block_id, previous_hash, data_hash)
        return cls(header, list(transactions), early_aborted=list(early_aborted))
