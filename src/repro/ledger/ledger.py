"""The append-only, hash-chained ledger kept by every peer.

The ledger contains the ordered sequence of *all* transactions that went
through the system — valid and invalid (paper Section 2.1). Appending
verifies the hash chain, so a tampered or out-of-order block is rejected.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import LedgerError
from repro.ledger.block import Block, compute_block_hash

#: Hash value that the first real block chains to.
GENESIS_HASH = b"\x00" * 32


class Ledger:
    """An append-only chain of validated blocks."""

    def __init__(self) -> None:
        self._blocks: List[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    @property
    def height(self) -> int:
        """Number of blocks in the chain."""
        return len(self._blocks)

    @property
    def tip_hash(self) -> bytes:
        """Hash that the next block must chain to."""
        if not self._blocks:
            return GENESIS_HASH
        return self._blocks[-1].header.data_hash

    @property
    def tip_block_id(self) -> int:
        """Id of the last appended block (0 when empty)."""
        if not self._blocks:
            return 0
        return self._blocks[-1].block_id

    def append(self, block: Block) -> None:
        """Append ``block``, verifying id sequence and hash chain."""
        expected_id = self.tip_block_id + 1
        if block.block_id != expected_id:
            raise LedgerError(
                f"expected block {expected_id}, got {block.block_id}"
            )
        if block.header.previous_hash != self.tip_hash:
            raise LedgerError(f"block {block.block_id} breaks the hash chain")
        recomputed = compute_block_hash(
            block.block_id, block.header.previous_hash, block.transactions
        )
        if recomputed != block.header.data_hash:
            raise LedgerError(f"block {block.block_id} data hash mismatch")
        self._blocks.append(block)

    def block(self, block_id: int) -> Block:
        """Return the block with the given id (1-based)."""
        if not 1 <= block_id <= len(self._blocks):
            raise LedgerError(f"no block with id {block_id}")
        return self._blocks[block_id - 1]

    def find_transaction(self, tx_id: str) -> Optional[tuple]:
        """Locate ``tx_id``; returns (block, transaction) or None."""
        for block in self._blocks:
            for transaction in block.transactions:
                if getattr(transaction, "tx_id", None) == tx_id:
                    return block, transaction
        return None

    def verify_chain(self) -> bool:
        """Re-verify the whole hash chain; True iff intact."""
        previous = GENESIS_HASH
        for expected_id, block in enumerate(self._blocks, start=1):
            if block.block_id != expected_id:
                return False
            if block.header.previous_hash != previous:
                return False
            recomputed = compute_block_hash(
                block.block_id, previous, block.transactions
            )
            if recomputed != block.header.data_hash:
                return False
            previous = block.header.data_hash
        return True
