"""The append-only, hash-chained ledger kept by every peer.

The ledger contains the ordered sequence of *all* transactions that went
through the system — valid and invalid (paper Section 2.1). Appending
verifies the hash chain, so a tampered or out-of-order block is rejected.

Long-horizon runs prune: :meth:`Ledger.prune_below` compacts every block
below a height into a :class:`ContinuityRecord` — the pruned tip's
chained data hash (the rolling hash the next block must link to) plus
the block/transaction counts the compacted prefix contributed.
Verification then anchors at the record instead of genesis, so a pruned
chain still proves continuity without retaining its history, and
``catch_up_from`` keeps working as long as the source retains every
block above the follower's tip (see ``docs/longruns.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import LedgerError, LedgerVerificationError
from repro.ledger.block import Block, compute_block_hash

#: Hash value that the first real block chains to.
GENESIS_HASH = b"\x00" * 32


@dataclass(frozen=True)
class ContinuityRecord:
    """Compacted summary of a pruned chain prefix.

    ``tip_hash`` is the data hash of block ``height`` — because block
    hashes chain, it commits to the entire pruned prefix, so a verifier
    holding the record can check that the retained suffix extends the
    pruned history without seeing it.
    """

    #: Highest pruned block id; retained blocks start at ``height + 1``.
    height: int
    #: Data hash of block ``height`` (the rolling chain hash).
    tip_hash: bytes
    #: Blocks compacted into this record.
    blocks: int
    #: Transactions those blocks carried (valid and invalid alike).
    txs: int
    #: Transactions marked valid at commit time.
    valid_txs: int


class Ledger:
    """An append-only chain of validated blocks, prunable from the left."""

    def __init__(self) -> None:
        self._blocks: List[Block] = []
        self._continuity: Optional[ContinuityRecord] = None

    @classmethod
    def from_continuity(cls, record: ContinuityRecord) -> "Ledger":
        """An empty ledger anchored at ``record`` instead of genesis."""
        ledger = cls()
        ledger._continuity = record
        return ledger

    def __len__(self) -> int:
        """Number of *retained* blocks (excludes the pruned prefix)."""
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        """Iterate the retained blocks, oldest first."""
        return iter(self._blocks)

    @property
    def continuity(self) -> Optional[ContinuityRecord]:
        """The pruned-prefix record, or None if nothing was pruned."""
        return self._continuity

    @property
    def pruned_height(self) -> int:
        """Highest pruned block id (0 when nothing was pruned)."""
        return self._continuity.height if self._continuity else 0

    @property
    def first_block_id(self) -> int:
        """Id of the oldest block this ledger can still serve."""
        return self.pruned_height + 1

    @property
    def height(self) -> int:
        """Chain height: pruned prefix plus retained blocks."""
        return self.pruned_height + len(self._blocks)

    @property
    def anchor_hash(self) -> bytes:
        """Hash the oldest retained block must chain to."""
        if self._continuity is not None:
            return self._continuity.tip_hash
        return GENESIS_HASH

    @property
    def tip_hash(self) -> bytes:
        """Hash that the next block must chain to."""
        if not self._blocks:
            return self.anchor_hash
        return self._blocks[-1].header.data_hash

    @property
    def tip_block_id(self) -> int:
        """Id of the last appended block (0 when empty and unpruned)."""
        if not self._blocks:
            return self.pruned_height
        return self._blocks[-1].block_id

    def append(self, block: Block) -> None:
        """Append ``block``, verifying id sequence and hash chain."""
        expected_id = self.tip_block_id + 1
        if block.block_id != expected_id:
            raise LedgerError(
                f"expected block {expected_id}, got {block.block_id}"
            )
        if block.header.previous_hash != self.tip_hash:
            raise LedgerError(f"block {block.block_id} breaks the hash chain")
        recomputed = compute_block_hash(
            block.block_id, block.header.previous_hash, block.transactions
        )
        if recomputed != block.header.data_hash:
            raise LedgerError(f"block {block.block_id} data hash mismatch")
        self._blocks.append(block)

    def prune_below(self, height: int) -> int:
        """Compact every block with id < ``height`` into the continuity
        record; returns the number of blocks pruned.

        Blocks at and above ``height`` are retained; the tip is never
        removed (``height`` is clamped to the last appended block, so at
        least one block survives any prune). Repeated calls are
        idempotent — heights at or below the existing prune point are
        no-ops.
        """
        new_pruned = min(height, self.tip_block_id) - 1
        if new_pruned <= self.pruned_height:
            return 0
        cut = new_pruned - self.pruned_height
        pruned, self._blocks = self._blocks[:cut], self._blocks[cut:]
        previous = self._continuity
        blocks = (previous.blocks if previous else 0) + len(pruned)
        txs = previous.txs if previous else 0
        valid = previous.valid_txs if previous else 0
        for block in pruned:
            txs += len(block.transactions) + len(block.early_aborted)
            valid += sum(1 for ok in block.validity.values() if ok)
        self._continuity = ContinuityRecord(
            height=new_pruned,
            tip_hash=pruned[-1].header.data_hash,
            blocks=blocks,
            txs=txs,
            valid_txs=valid,
        )
        return len(pruned)

    def block(self, block_id: int) -> Block:
        """Return the block with the given id (1-based).

        Requests below the prune point raise
        :class:`LedgerVerificationError` naming the missing height, so
        callers can tell "pruned away" from "never appended".
        """
        if 1 <= block_id <= self.pruned_height:
            raise LedgerVerificationError(
                f"block {block_id} was pruned: ledger retains heights "
                f">= {self.first_block_id}",
                block_index=block_id,
            )
        if not self.first_block_id <= block_id <= self.tip_block_id:
            raise LedgerError(f"no block with id {block_id}")
        return self._blocks[block_id - self.first_block_id]

    def find_transaction(self, tx_id: str) -> Optional[tuple]:
        """Locate ``tx_id`` among retained blocks; (block, tx) or None."""
        for block in self._blocks:
            for transaction in block.transactions:
                if getattr(transaction, "tx_id", None) == tx_id:
                    return block, transaction
        return None

    def verify_chain(self) -> bool:
        """Re-verify the retained hash chain; True iff intact.

        A pruned chain verifies from its continuity anchor: the oldest
        retained block must chain to the pruned tip's hash.
        """
        previous = self.anchor_hash
        for expected_id, block in enumerate(
            self._blocks, start=self.first_block_id
        ):
            if block.block_id != expected_id:
                return False
            if block.header.previous_hash != previous:
                return False
            recomputed = compute_block_hash(
                block.block_id, previous, block.transactions
            )
            if recomputed != block.header.data_hash:
                return False
            previous = block.header.data_hash
        return True
