"""Ledger substrate: versioned state database, blocks, and the block chain.

Fabric peers maintain two stores (paper Section 2.1):

- the **ledger** (:class:`Ledger`): the ordered, hash-chained sequence of
  all blocks, containing both valid and invalid transactions, and
- the **current state** (:class:`StateDatabase`): a key-value store mapping
  each key to ``(value, version)``, where the version records the block and
  transaction that last wrote the key. The paper's fine-grained concurrency
  control (Section 5.2.1) is built entirely on these version numbers.
"""

from repro.ledger.block import Block, BlockHeader, compute_block_hash
from repro.ledger.ledger import Ledger
from repro.ledger.state_db import StateDatabase, StateSnapshot, Version, VersionedValue

__all__ = [
    "Block",
    "BlockHeader",
    "compute_block_hash",
    "Ledger",
    "StateDatabase",
    "StateSnapshot",
    "Version",
    "VersionedValue",
]
