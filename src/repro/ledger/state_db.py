"""The current-state database of a Fabric peer.

Fabric implements its current state as a key-value store that maps each key
to a pair of value and version-number, where the version-number is composed
of the ID of the block and the ID of the transaction that performed the last
update (paper Section 5.2.1). The vanilla system uses the versions only to
detect stale reads in the validation phase; Fabric++ additionally exploits
them for a lock-free concurrency-control mechanism that lets simulation and
validation run in parallel.

This module is the in-memory stand-in for Fabric's LevelDB current state.
Durability is irrelevant to the reproduced behaviour (conflict detection and
ordering), so values live in a plain dict; the version bookkeeping, atomic
block application and snapshot semantics follow the paper exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import StateError


@dataclass(frozen=True, order=True)
class Version:
    """A state version: the block and transaction of the last write.

    Ordering is lexicographic on (block_id, tx_id), which matches commit
    order because blocks commit in sequence and transactions commit in
    block order.
    """

    block_id: int
    tx_id: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"v({self.block_id}.{self.tx_id})"


#: The version given to keys created by the genesis / initial population.
GENESIS_VERSION = Version(block_id=0, tx_id=0)


@dataclass(frozen=True)
class VersionedValue:
    """A value together with the version of its last write."""

    value: object
    version: Version


class StateDatabase:
    """Versioned key-value store representing a peer's current state.

    The store tracks, alongside the data, the id of the last block whose
    writes were applied (``last_block_id``). Fabric++'s early abort in the
    simulation phase compares the version of every read value against the
    ``last_block_id`` observed when the simulation started (paper
    Figure 6): a read that returns a version from a *newer* block proves
    the simulating transaction already operates on stale data.
    """

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        self._last_block_id = 0
        #: Keys in sorted order, maintained incrementally on write (keys
        #: are never deleted — Fabric models deletes as tombstone values).
        #: Range scans bisect into this index instead of re-sorting the
        #: whole key space per scan, which made every phantom check
        #: O(n log n) in the store size.
        self._sorted_keys: List[str] = []

    # -- reads -------------------------------------------------------------

    @property
    def last_block_id(self) -> int:
        """Id of the last block applied to this state."""
        return self._last_block_id

    def get(self, key: str) -> Optional[VersionedValue]:
        """Return the (value, version) pair for ``key`` or None if absent."""
        return self._data.get(key)

    def get_value(self, key: str, default: object = None) -> object:
        """Return only the value stored under ``key``."""
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def get_version(self, key: str) -> Optional[Version]:
        """Return only the version stored under ``key``."""
        entry = self._data.get(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        """Iterate over all keys currently present."""
        return iter(self._data)

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        """Iterate over (key, VersionedValue) pairs."""
        return iter(self._data.items())

    def range_scan(
        self, start_key: str, end_key: Optional[str] = None
    ) -> Iterator[Tuple[str, VersionedValue]]:
        """Yield entries with start_key <= key < end_key in key order.

        ``end_key=None`` scans to the end of the key space. This is the
        LevelDB-style ordered iteration backing Fabric's
        ``GetStateByRange``; tombstoned keys are skipped by the chaincode
        stub, not here.
        """
        low = bisect.bisect_left(self._sorted_keys, start_key)
        high = (
            bisect.bisect_left(self._sorted_keys, end_key)
            if end_key is not None
            else len(self._sorted_keys)
        )
        for key in self._sorted_keys[low:high]:
            yield key, self._data[key]

    # -- writes ------------------------------------------------------------

    def populate(self, initial: Mapping[str, object]) -> None:
        """Load initial state (e.g. workload accounts) at the genesis version.

        Only permitted before any block has been applied, mirroring how a
        Fabric chaincode ``Init`` seeds the state in block 0/1.
        """
        if self._last_block_id != 0:
            raise StateError("populate() is only allowed before the first block")
        for key, value in initial.items():
            if key not in self._data:
                bisect.insort(self._sorted_keys, key)
            self._data[key] = VersionedValue(value, GENESIS_VERSION)

    def apply_write(self, key: str, value: object, version: Version) -> None:
        """Apply a single validated write, stamping it with ``version``."""
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = VersionedValue(value, version)

    def apply_block_writes(
        self,
        block_id: int,
        writes: Iterable[Tuple[int, Mapping[str, object]]],
    ) -> None:
        """Atomically apply the write sets of a block's valid transactions.

        ``writes`` yields ``(tx_id, write_set)`` pairs in commit order. The
        version of every written key becomes ``Version(block_id, tx_id)``,
        and ``last_block_id`` advances to ``block_id``. Blocks must be
        applied in order — an out-of-order block indicates a broken
        delivery guarantee and raises :class:`StateError`.
        """
        if block_id <= self._last_block_id:
            raise StateError(
                f"block {block_id} already applied (last={self._last_block_id})"
            )
        for tx_id, write_set in writes:
            for key, value in write_set.items():
                if key not in self._data:
                    bisect.insort(self._sorted_keys, key)
                self._data[key] = VersionedValue(value, Version(block_id, tx_id))
        self._last_block_id = block_id

    def advance_block(self, block_id: int) -> None:
        """Advance ``last_block_id`` after per-transaction inline applies.

        Fabric++'s fine-grained concurrency control applies each valid
        transaction's writes atomically *during* validation (visible to
        concurrently simulating chaincodes, paper Section 5.2.1) via
        :meth:`apply_write`; this finalises the block height afterwards.
        """
        if block_id <= self._last_block_id:
            raise StateError(
                f"block {block_id} already applied (last={self._last_block_id})"
            )
        self._last_block_id = block_id

    # -- validation helpers --------------------------------------------------

    def read_is_current(self, key: str, version: Optional[Version]) -> bool:
        """Return True if reading ``key`` at ``version`` is still up to date.

        This is the serializability conflict check of the validation phase
        (paper Section A.3.2): the version recorded in a transaction's read
        set must equal the version in the current state. A read of an
        absent key (``version is None``) is current only while the key is
        still absent.
        """
        current = self.get_version(key)
        return current == version

    def snapshot(self) -> "StateSnapshot":
        """Return an immutable snapshot of the current state.

        Vanilla Fabric holds a shared read lock for the whole simulation
        (paper Section 4.2.1), so a simulating chaincode observes a frozen
        state; the snapshot models exactly that. Fabric++ instead reads the
        live store and version-checks each read (see ``peer.py``).
        """
        return StateSnapshot(dict(self._data), self._last_block_id)


class StateSnapshot:
    """A frozen view of a :class:`StateDatabase` at one point in time."""

    def __init__(self, data: Dict[str, VersionedValue], last_block_id: int) -> None:
        self._data = data
        self.last_block_id = last_block_id

    def get(self, key: str) -> Optional[VersionedValue]:
        """Return the (value, version) pair for ``key`` or None if absent."""
        return self._data.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)
