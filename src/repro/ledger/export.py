"""Ledger export, import, and peer catch-up.

A Fabric peer that joins (or recovers) late replays the ordered block
stream to rebuild its state. This module provides the supporting pieces:

- :func:`export_ledger` / :func:`import_ledger` — JSON round trip of a
  ledger's chain, including per-transaction validity flags and write
  sets, with full hash-chain verification on import;
- :func:`replay_state` — rebuild the current-state database from an
  imported ledger by re-applying every valid transaction's writes, which
  must reproduce the live peers' state exactly (tested property).

Only the data needed to rebuild state travels: proposals, endorsements
and signatures are summarised by the transaction digest (the chain hash
already commits to them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import LedgerError, LedgerVerificationError
from repro.ledger.block import Block, BlockHeader
from repro.ledger.ledger import ContinuityRecord, Ledger
from repro.ledger.state_db import StateDatabase

SCHEMA_VERSION = 1


class ExportedTransaction:
    """A minimal transaction reconstructed from an export.

    Carries exactly what block hashing and state replay need: the id, the
    original digest, and the write set.
    """

    def __init__(self, tx_id: str, digest_hex: str, writes: Dict[str, object]):
        self.tx_id = tx_id
        self._digest = bytes.fromhex(digest_hex)
        self.writes = writes

    def digest(self) -> bytes:
        """The digest recorded at export time (preserves chain hashes)."""
        return self._digest


def export_ledger(ledger: Ledger) -> Dict[str, object]:
    """Serialise ``ledger`` into a JSON-compatible dict."""
    blocks: List[Dict[str, object]] = []
    for block in ledger:
        transactions = []
        for tx in block.transactions:
            writes = {}
            rwset = getattr(tx, "rwset", None)
            if rwset is not None:
                writes = {key: repr(value) for key, value in rwset.writes.items()}
            transactions.append(
                {
                    "tx_id": getattr(tx, "tx_id", None),
                    "digest": _tx_digest_hex(tx),
                    "valid": block.is_valid(getattr(tx, "tx_id", "")),
                    "writes": writes,
                }
            )
        blocks.append(
            {
                "block_id": block.block_id,
                "previous_hash": block.header.previous_hash.hex(),
                "data_hash": block.header.data_hash.hex(),
                "transactions": transactions,
            }
        )
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "blocks": blocks,
    }
    record = ledger.continuity
    if record is not None:
        # Only pruned ledgers carry the key, so unpruned exports stay
        # byte-identical to every pre-pruning export.
        payload["continuity"] = {
            "height": record.height,
            "tip_hash": record.tip_hash.hex(),
            "blocks": record.blocks,
            "txs": record.txs,
            "valid_txs": record.valid_txs,
        }
    return payload


def _tx_digest_hex(tx: object) -> str:
    digest = getattr(tx, "digest", None)
    if callable(digest):
        return digest().hex()
    return repr(tx).encode().hex()


def import_ledger(payload: Dict[str, object]) -> Ledger:
    """Rebuild a verified ledger from :func:`export_ledger` output.

    The hash chain is re-verified block by block; tampering with any
    exported transaction digest or block linkage raises
    :class:`LedgerError`.
    """
    if not isinstance(payload, dict):
        raise LedgerVerificationError(
            f"ledger export must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise LedgerVerificationError(
            f"unsupported ledger export schema {payload.get('schema_version')!r}"
        )
    entries = payload.get("blocks")
    if not isinstance(entries, list):
        raise LedgerVerificationError("ledger export has no 'blocks' list")
    record = payload.get("continuity")
    if record is None:
        ledger = Ledger()
    else:
        try:
            ledger = Ledger.from_continuity(
                ContinuityRecord(
                    height=record["height"],
                    tip_hash=bytes.fromhex(record["tip_hash"]),
                    blocks=record["blocks"],
                    txs=record["txs"],
                    valid_txs=record["valid_txs"],
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise LedgerVerificationError(
                f"corrupt continuity record in ledger export: {error!r}"
            ) from error
    for index, entry in enumerate(entries):
        try:
            transactions = [
                ExportedTransaction(tx["tx_id"], tx["digest"], dict(tx["writes"]))
                for tx in entry["transactions"]
            ]
            header = BlockHeader(
                block_id=entry["block_id"],
                previous_hash=bytes.fromhex(entry["previous_hash"]),
                data_hash=bytes.fromhex(entry["data_hash"]),
            )
            block = Block(header, transactions)
            for tx in entry["transactions"]:
                if tx["valid"] is not None:
                    block.mark(tx["tx_id"], tx["valid"])
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            # Truncated or hand-edited exports surface as missing keys or
            # malformed hex; report the block, not the raw stack trace.
            raise LedgerVerificationError(
                f"corrupt ledger export at block index {index}: {error!r}",
                block_index=index,
            ) from error
        try:
            ledger.append(block)
        except LedgerError as error:
            raise LedgerVerificationError(
                f"ledger verification failed at block index {index}: {error}",
                block_index=index,
            ) from error
    return ledger


def save_ledger(path: Union[str, Path], ledger: Ledger) -> None:
    """Export ``ledger`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(export_ledger(ledger), indent=2))


def load_ledger(path: Union[str, Path]) -> Ledger:
    """Load and verify a ledger exported with :func:`save_ledger`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise LedgerVerificationError(
            f"cannot load ledger from {path}: {error}"
        ) from error
    return import_ledger(payload)


def replay_state(
    ledger: Ledger, initial_state: Dict[str, object]
) -> StateDatabase:
    """Rebuild the current state by replaying a ledger's valid writes.

    This is how a late-joining peer catches up: apply, in block order,
    the write set of every transaction flagged valid. The result must be
    identical (values as their ``repr`` for exported ledgers, versions
    exactly) to the state of any peer that validated live.
    """
    state = StateDatabase()
    state.populate(initial_state)
    for block in ledger:
        state.apply_block_writes(block.block_id, _valid_writes(block))
    return state


def _valid_writes(block: Block) -> List[tuple]:
    """``(tx_index, write_set)`` pairs of a block's valid transactions.

    Works for live :class:`~repro.fabric.transaction.Transaction` objects
    (write sets live on ``tx.rwset``) and :class:`ExportedTransaction`
    (write sets inlined by the export).
    """
    writes: List[tuple] = []
    for index, tx in enumerate(block.transactions):
        if not block.is_valid(getattr(tx, "tx_id", "")):
            continue
        if hasattr(tx, "writes"):
            writes.append((index, tx.writes))
        else:
            rwset = getattr(tx, "rwset", None)
            if rwset is not None:
                writes.append((index, dict(rwset.writes)))
    return writes


def catch_up_from(source: Ledger, ledger: Ledger, state: StateDatabase) -> int:
    """Replay onto ``ledger``/``state`` every block they miss from ``source``.

    This is the crash-recovery path: a recovered peer pulls the blocks it
    lost from a healthy neighbour (state transfer), verifying the hash
    chain on append and applying the write sets of the transactions the
    network already validated — exactly the :func:`replay_state`
    semantics, but incremental over a live store. The write versions are
    ``Version(block_id, tx_index)``, identical to what live validation
    stamps, so a caught-up peer's state is byte-identical to one that
    never crashed. Returns the number of blocks replayed.

    A pruned source can still serve catch-up as long as it retains every
    block above the follower's tip (the fleet prune policy guarantees
    this: the prune point never passes the slowest peer's tip). If the
    gap reaches below the source's prune point, the replay fails loudly
    instead of silently skipping history.
    """
    if ledger.tip_block_id < source.first_block_id - 1:
        raise LedgerVerificationError(
            f"catch-up source pruned below height {source.first_block_id}: "
            f"follower tip is {ledger.tip_block_id}, missing block "
            f"{ledger.tip_block_id + 1}",
            block_index=ledger.tip_block_id + 1,
        )
    replayed = 0
    for block in source:
        if block.block_id <= ledger.tip_block_id:
            continue
        ledger.append(block)
        state.apply_block_writes(block.block_id, _valid_writes(block))
        replayed += 1
    return replayed
