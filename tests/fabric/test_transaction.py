"""Unit tests for proposals, endorsements, and transactions."""

from repro.crypto.identity import Identity
from repro.crypto.signing import sign
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import (
    Endorsement,
    Proposal,
    Transaction,
    endorsement_payload,
)
from repro.ledger.state_db import Version


def make_proposal(**overrides):
    defaults = dict(
        proposal_id="p1",
        client="client0",
        channel="ch0",
        chaincode="cc",
        function="transfer",
        args=("a", "b", 30),
    )
    defaults.update(overrides)
    return Proposal(**defaults)


def make_rwset():
    rwset = ReadWriteSet()
    rwset.record_read("BalA", Version(3, 0))
    rwset.record_write("BalA", 70)
    return rwset


def test_proposal_payload_bytes_deterministic():
    assert make_proposal().payload_bytes() == make_proposal().payload_bytes()


def test_proposal_payload_differs_by_args():
    a = make_proposal(args=("a", "b", 30))
    b = make_proposal(args=("a", "b", 31))
    assert a.payload_bytes() != b.payload_bytes()


def test_endorsement_payload_covers_proposal_and_rwset():
    proposal = make_proposal()
    rwset = make_rwset()
    payload = endorsement_payload(proposal, rwset)
    assert payload != endorsement_payload(make_proposal(function="other"), rwset)
    other = make_rwset()
    other.record_write("BalB", 80)
    assert payload != endorsement_payload(proposal, other)


def test_endorsement_signed_payload():
    identity = Identity.create("peer0.OrgA", "OrgA")
    proposal = make_proposal()
    rwset = make_rwset()
    signature = sign(identity, endorsement_payload(proposal, rwset))
    endorsement = Endorsement("peer0.OrgA", "OrgA", rwset, signature)
    assert endorsement.signed_payload(proposal) == endorsement_payload(
        proposal, rwset
    )


def make_transaction():
    identity_a = Identity.create("peer0.OrgA", "OrgA")
    identity_b = Identity.create("peer0.OrgB", "OrgB")
    proposal = make_proposal()
    rwset = make_rwset()
    payload = endorsement_payload(proposal, rwset)
    endorsements = [
        Endorsement("peer0.OrgA", "OrgA", rwset, sign(identity_a, payload)),
        Endorsement("peer0.OrgB", "OrgB", rwset, sign(identity_b, payload)),
    ]
    return Transaction("t1", proposal, rwset, endorsements)


def test_transaction_digest_stable():
    assert make_transaction().digest() == make_transaction().digest()


def test_transaction_digest_changes_with_rwset():
    tx = make_transaction()
    before = tx.digest()
    tx.rwset.record_write("BalB", 80)
    assert tx.digest() != before


def test_endorsing_orgs():
    tx = make_transaction()
    assert tx.endorsing_orgs == frozenset({"OrgA", "OrgB"})


def test_estimated_size_grows_with_entries():
    tx = make_transaction()
    small = tx.estimated_size_bytes()
    for i in range(50):
        tx.rwset.record_write(f"k{i}", i)
    assert tx.estimated_size_bytes() > small


def test_estimated_size_grows_with_endorsements():
    tx = make_transaction()
    one = Transaction("t2", tx.proposal, tx.rwset, tx.endorsements[:1])
    assert tx.estimated_size_bytes() > one.estimated_size_bytes()
