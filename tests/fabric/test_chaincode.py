"""Unit tests for the chaincode API, stubs, and stale-read aborts."""

import pytest

from repro.errors import ChaincodeError
from repro.fabric.chaincode import (
    Chaincode,
    ChaincodeRegistry,
    ChaincodeStub,
    StaleRead,
    Tombstone,
)
from repro.ledger.state_db import StateDatabase, Version


@pytest.fixture
def state():
    db = StateDatabase()
    db.populate({"a": 10, "b": 20})
    return db


def test_get_state_records_read(state):
    stub = ChaincodeStub(state)
    assert stub.get_state("a") == 10
    assert stub.rwset.reads["a"] == Version(0, 0)


def test_get_absent_key_records_none_version(state):
    stub = ChaincodeStub(state)
    assert stub.get_state("ghost") is None
    assert stub.rwset.reads["ghost"] is None


def test_put_state_buffers_write(state):
    stub = ChaincodeStub(state)
    stub.put_state("a", 99)
    assert stub.rwset.writes["a"] == 99
    assert state.get_value("a") == 10  # state untouched during simulation


def test_put_none_rejected(state):
    stub = ChaincodeStub(state)
    with pytest.raises(ChaincodeError):
        stub.put_state("a", None)


def test_del_state_writes_tombstone(state):
    stub = ChaincodeStub(state)
    stub.del_state("a")
    assert stub.rwset.writes["a"] == Tombstone()


def test_reads_do_not_see_own_writes(state):
    """Fabric semantics: GetState returns committed state, not pending."""
    stub = ChaincodeStub(state)
    stub.put_state("a", 99)
    assert stub.get_state("a") == 10


def test_stub_over_snapshot(state):
    snapshot = state.snapshot()
    state.apply_block_writes(1, [(0, {"a": 99})])
    stub = ChaincodeStub(snapshot)
    assert stub.get_state("a") == 10  # frozen view


def test_stale_read_detection(state):
    """Fabric++'s per-read version check (paper Figure 6)."""
    start_height = state.last_block_id
    state.apply_block_writes(1, [(0, {"a": 50})])
    stub = ChaincodeStub(state, start_block_id=start_height)
    # 'b' untouched: read succeeds.
    assert stub.get_state("b") == 20
    # 'a' was updated by block 1 > start height 0: abort.
    with pytest.raises(StaleRead) as info:
        stub.get_state("a")
    assert info.value.key == "a"
    assert info.value.read_block_id == 1
    assert info.value.start_block_id == 0


def test_no_stale_read_when_check_disabled(state):
    state.apply_block_writes(1, [(0, {"a": 50})])
    stub = ChaincodeStub(state, start_block_id=None)  # vanilla
    assert stub.get_state("a") == 50


def test_read_current_block_allowed(state):
    """Reads of versions at or below the start height are fine."""
    state.apply_block_writes(1, [(0, {"a": 50})])
    stub = ChaincodeStub(state, start_block_id=1)
    assert stub.get_state("a") == 50


class Doubler(Chaincode):
    name = "doubler"

    def invoke(self, stub, function, args):
        (key,) = args
        value = stub.get_state(key) or 0
        stub.put_state(key, value * 2)
        return value * 2


def test_chaincode_invoke_builds_rwset(state):
    stub = ChaincodeStub(state)
    result = Doubler().invoke(stub, "double", ("a",))
    assert result == 20
    assert stub.rwset.reads.keys() == {"a"}
    assert stub.rwset.writes == {"a": 20}


def test_default_operation_count():
    assert Doubler().operation_count("double", ("a",)) == 2


def test_registry_install_and_lookup():
    registry = ChaincodeRegistry()
    chaincode = Doubler()
    registry.install(chaincode)
    assert registry.lookup("doubler") is chaincode
    assert "doubler" in registry


def test_registry_duplicate_rejected():
    registry = ChaincodeRegistry()
    registry.install(Doubler())
    with pytest.raises(ChaincodeError):
        registry.install(Doubler())


def test_registry_unknown_lookup():
    registry = ChaincodeRegistry()
    with pytest.raises(ChaincodeError):
        registry.lookup("missing")


def test_base_invoke_not_implemented(state):
    with pytest.raises(NotImplementedError):
        Chaincode().invoke(ChaincodeStub(state), "f", ())


def test_tombstone_equality():
    assert Tombstone() == Tombstone()
    assert hash(Tombstone()) == hash(Tombstone())
    assert repr(Tombstone()) == "<deleted>"
