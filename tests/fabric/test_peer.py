"""Unit tests for peers: endorsement, validation, commit."""

from dataclasses import replace

from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.rwset import ReadWriteSet
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.ledger.state_db import Version
from tests.fabric.conftest import TestBed


# -- endorsement -------------------------------------------------------------------


def test_endorsement_builds_signed_rwset(testbed):
    proposal = testbed.proposal("p1")
    replies = testbed.endorse_everywhere(proposal)
    assert all(not reply.early_aborted for reply in replies)
    rwsets = [reply.endorsement.rwset for reply in replies]
    assert rwsets[0] == rwsets[1]
    assert rwsets[0].reads["k"] == Version(0, 0)
    assert rwsets[0].writes["k"] == 1


def test_endorsement_consumes_simulated_time(testbed):
    proposal = testbed.proposal("p1")
    testbed.endorse_everywhere(proposal)
    assert testbed.env.now > 0


def test_endorsements_signed_by_each_peer(testbed):
    proposal = testbed.proposal("p1")
    replies = testbed.endorse_everywhere(proposal)
    signers = {reply.endorsement.signature.signer for reply in replies}
    assert signers == {"peer0.OrgA", "peer0.OrgB"}


def test_byzantine_hook_changes_rwset(testbed):
    def corrupt(rwset):
        bad = rwset.copy()
        bad.record_write("k", 999_999)
        return bad

    testbed.peers[1].byzantine_rwset_hook = corrupt
    replies = testbed.endorse_everywhere(testbed.proposal("p1"))
    assert replies[0].endorsement.rwset != replies[1].endorsement.rwset


# -- validation and commit ------------------------------------------------------------


def make_block(testbed, transactions, block_id=1, previous=GENESIS_HASH):
    return Block.create(block_id, previous, transactions)


def test_valid_transaction_commits(testbed):
    proposal = testbed.proposal("p1")
    tx = testbed.make_transaction(proposal, testbed.endorse_everywhere(proposal))
    testbed.deliver(make_block(testbed, [tx]))
    assert testbed.notifications["p1"] is TxOutcome.COMMITTED
    for peer in testbed.peers:
        state = peer.channels["ch0"].state
        assert state.get_value("k") == 1
        assert state.get_version("k") == Version(1, 0)
        assert peer.channels["ch0"].ledger.height == 1


def test_invalid_transaction_effects_discarded(testbed):
    proposal = testbed.proposal("p1")
    tx = testbed.make_transaction(proposal, testbed.endorse_everywhere(proposal))
    # Fake a stale read: pretend the simulation saw a newer version.
    tx.rwset.reads["k"] = Version(7, 0)
    for endorsement in tx.endorsements:
        endorsement.rwset.reads["k"] = Version(7, 0)
    # Re-sign so the policy check passes and only MVCC fails.
    tx.endorsements = [
        testbed.forge_endorsement(proposal, tx.rwset, peer)
        for peer in testbed.peers
    ]
    testbed.deliver(make_block(testbed, [tx]))
    assert testbed.notifications["p1"] is TxOutcome.ABORT_MVCC
    assert testbed.peers[0].channels["ch0"].state.get_value("k") == 0


def test_invalid_transaction_stays_in_block_marked(testbed):
    proposal = testbed.proposal("p1")
    tx = testbed.make_transaction(proposal, testbed.endorse_everywhere(proposal))
    tx.rwset.reads["k"] = Version(7, 0)
    tx.endorsements = [
        testbed.forge_endorsement(proposal, tx.rwset, peer)
        for peer in testbed.peers
    ]
    block = make_block(testbed, [tx])
    testbed.deliver(block)
    assert block.is_valid("p1") is False
    ledger = testbed.peers[0].channels["ch0"].ledger
    assert ledger.find_transaction("p1") is not None


def test_within_block_conflict_invalidates_later_tx(testbed):
    """Two increments of the same key in one block: only the first commits
    (paper Table 1 semantics)."""
    p1, p2 = testbed.proposal("p1"), testbed.proposal("p2")
    tx1 = testbed.make_transaction(p1, testbed.endorse_everywhere(p1))
    tx2 = testbed.make_transaction(p2, testbed.endorse_everywhere(p2))
    testbed.deliver(make_block(testbed, [tx1, tx2]))
    assert testbed.notifications["p1"] is TxOutcome.COMMITTED
    assert testbed.notifications["p2"] is TxOutcome.ABORT_MVCC
    assert testbed.peers[0].channels["ch0"].state.get_value("k") == 1


def test_within_block_reader_before_writer_both_commit(testbed):
    """A read-only tx ordered before the writer commits fine."""
    reader_rwset = ReadWriteSet()
    reader_rwset.record_read("k", Version(0, 0))
    reader_proposal = testbed.proposal("reader")
    reader_tx = testbed.make_transaction(
        reader_proposal,
        [
            type("R", (), {"endorsement": testbed.forge_endorsement(
                reader_proposal, reader_rwset, peer), "early_aborted": False})()
            for peer in testbed.peers
        ],
    )
    writer_proposal = testbed.proposal("writer")
    writer_tx = testbed.make_transaction(
        writer_proposal, testbed.endorse_everywhere(writer_proposal)
    )
    testbed.deliver(make_block(testbed, [reader_tx, writer_tx]))
    assert testbed.notifications["reader"] is TxOutcome.COMMITTED
    assert testbed.notifications["writer"] is TxOutcome.COMMITTED


def test_cross_block_staleness_detected(testbed):
    p1 = testbed.proposal("p1")
    tx1 = testbed.make_transaction(p1, testbed.endorse_everywhere(p1))
    # p2 simulates against the same (pre-block-1) state...
    p2 = testbed.proposal("p2")
    tx2 = testbed.make_transaction(p2, testbed.endorse_everywhere(p2))
    # ...but commits only in block 2, after block 1 updated k.
    testbed.deliver(make_block(testbed, [tx1]))
    tip = testbed.peers[0].channels["ch0"].ledger.tip_hash
    testbed.deliver(make_block(testbed, [tx2], block_id=2, previous=tip))
    assert testbed.notifications["p1"] is TxOutcome.COMMITTED
    assert testbed.notifications["p2"] is TxOutcome.ABORT_MVCC


def test_tampered_write_set_fails_policy(testbed):
    """Appendix A.3.1: a client swapping in a different write set is caught."""
    proposal = testbed.proposal("p1")
    replies = testbed.endorse_everywhere(proposal)
    honest = replies[0].endorsement.rwset
    forged = honest.copy()
    forged.record_write("k", 1_000_000)  # the malicious write set
    tx = testbed.make_transaction(proposal, replies)
    tx.rwset = forged  # signatures still cover the honest rwset
    testbed.deliver(make_block(testbed, [tx]))
    assert testbed.notifications["p1"] is TxOutcome.ABORT_POLICY
    assert testbed.peers[0].channels["ch0"].state.get_value("k") == 0


def test_missing_org_endorsement_fails_policy(testbed):
    proposal = testbed.proposal("p1")
    replies = testbed.endorse_everywhere(proposal)
    tx = testbed.make_transaction(proposal, replies[:1])  # only OrgA
    testbed.deliver(make_block(testbed, [tx]))
    assert testbed.notifications["p1"] is TxOutcome.ABORT_POLICY


def test_misattributed_org_fails_policy(testbed):
    """An endorsement claiming the wrong org is rejected."""
    proposal = testbed.proposal("p1")
    replies = testbed.endorse_everywhere(proposal)
    tx = testbed.make_transaction(proposal, replies)
    from repro.fabric.transaction import Endorsement

    fake = tx.endorsements[1]
    tx.endorsements[1] = Endorsement(
        fake.endorser, "OrgB", fake.rwset, tx.endorsements[0].signature
    )
    testbed.deliver(make_block(testbed, [tx]))
    assert testbed.notifications["p1"] is TxOutcome.ABORT_POLICY


def test_fabricpp_simulation_aborts_on_stale_read():
    """With early_abort_simulation, a commit landing between the start of
    the simulation phase and chaincode execution aborts the proposal."""
    config = replace(
        FabricConfig(), num_orgs=2, peers_per_org=1, early_abort_simulation=True
    )
    bed = TestBed(config=config, initial={"k": 0})

    class SlowCounter(bed.chaincodes.lookup("counter").__class__):
        name = "slow_counter"

        def operation_count(self, function, args):
            # Stretch the simulated execution window past block validation
            # so the conflicting commit lands mid-simulation.
            return 10_000

    bed.chaincodes.install(SlowCounter())
    # Start an endorsement, and deliver a conflicting block mid-simulation.
    proposal = replace(bed.proposal("p1"), chaincode="slow_counter")
    handles = [peer.endorse("ch0", proposal) for peer in bed.peers]

    p0 = bed.proposal("p0")
    tx0_rwset = ReadWriteSet()
    tx0_rwset.record_read("k", Version(0, 0))
    tx0_rwset.record_write("k", 42)
    tx0 = bed.make_transaction(
        p0,
        [
            type("R", (), {"endorsement": bed.forge_endorsement(p0, tx0_rwset, peer),
                           "early_aborted": False})()
            for peer in bed.peers
        ],
    )
    from repro.ledger.block import Block
    from repro.ledger.ledger import GENESIS_HASH

    block = Block.create(1, GENESIS_HASH, [tx0])
    for peer in bed.peers:
        peer.deliver_block("ch0", block)
    bed.env.run()
    replies = [handle.value for handle in handles]
    # The block committed k during the endorsement window -> early abort.
    assert any(reply.early_aborted for reply in replies)
    stale = [r for r in replies if r.early_aborted][0]
    assert stale.stale_key == "k"


def test_vanilla_simulation_never_early_aborts(testbed):
    proposal = testbed.proposal("p1")
    replies = testbed.endorse_everywhere(proposal)
    assert all(not reply.early_aborted for reply in replies)


def test_reference_peer_records_blocks(testbed):
    proposal = testbed.proposal("p1")
    tx = testbed.make_transaction(proposal, testbed.endorse_everywhere(proposal))
    testbed.deliver(make_block(testbed, [tx]))
    assert testbed.metrics.blocks_committed == 1
    assert testbed.metrics.block_sizes == [1]
