"""Streaming (O(1)-memory) metrics: accuracy, defaults, serialization.

The knob is ``FabricConfig.streaming_metrics`` (default off). Off must
stay bit-identical to pre-streaming builds — metric snapshots carry no
``streaming`` key and the per-transaction lists fill as before. On, the
exact aggregates (counts, TPS, min/avg/max latency, block sizes, phase
breakdown) must equal the list-backed values; percentiles come from a
seeded reservoir and are exact until the reservoir overflows.
"""

from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment
from repro.bench.results import metrics_from_dict, metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import (
    STREAMING_RESERVOIR_CAPACITY,
    StreamingLatency,
    StreamingWindow,
)
from repro.workloads.registry import WorkloadRef

WORKLOAD = WorkloadRef("smallbank", {"num_users": 60, "s_value": 1.0}, seed=3)


def run_once(streaming: bool, channels: int = 1):
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=16),
        clients_per_channel=2,
        client_rate=100.0,
        channels=channels,
        cross_channel_fraction=0.1 if channels > 1 else 0.0,
        streaming_metrics=streaming,
        seed=9,
    )
    spec = ExperimentSpec(
        config=config, workload=WORKLOAD, duration=1.5, drain=1.0
    )
    return run_experiment(spec).metrics


@pytest.fixture(scope="module")
def paired():
    return run_once(streaming=False), run_once(streaming=True)


def test_default_off_keeps_lists_and_snapshot_shape(paired):
    listed, _streamed = paired
    assert FabricConfig().streaming_metrics is False
    assert listed.streaming is None
    assert listed.commit_latencies, "list mode stopped recording latencies"
    assert listed.outcome_times
    assert "streaming" not in metrics_to_dict(listed)


def test_streaming_mode_keeps_lists_empty(paired):
    _listed, streamed = paired
    assert streamed.streaming is not None
    assert streamed.commit_latencies == []
    assert streamed.outcome_times == []
    assert streamed.phase_latencies == []
    assert streamed.block_sizes == []


def test_exact_aggregates_match_list_mode(paired):
    listed, streamed = paired
    assert streamed.outcomes == listed.outcomes
    assert streamed.fired == listed.fired
    assert streamed.blocks_committed == listed.blocks_committed
    assert streamed.successful_tps() == listed.successful_tps()
    assert streamed.failed_tps() == listed.failed_tps()
    assert streamed.average_block_size() == listed.average_block_size()
    want = listed.phase_breakdown()
    got = streamed.phase_breakdown()
    for phase in ("endorse", "order", "validate"):
        assert got[phase] == pytest.approx(want[phase])


def test_latency_summary_matches_list_mode(paired):
    listed, streamed = paired
    want = listed.latency()
    got = streamed.latency()
    assert got.count == want.count
    assert got.minimum == want.minimum
    assert got.maximum == want.maximum
    assert got.average == pytest.approx(want.average)
    # Short runs fit the reservoir, so percentiles are exact too.
    assert want.count <= STREAMING_RESERVOIR_CAPACITY
    assert got.p50 == want.p50
    assert got.p95 == want.p95
    assert got.p99 == want.p99


def test_timeseries_matches_list_mode(paired):
    listed, streamed = paired
    assert streamed.throughput_timeseries() == listed.throughput_timeseries()


def test_fleet_merge_matches_list_mode():
    listed = run_once(streaming=False, channels=4)
    streamed = run_once(streaming=True, channels=4)
    assert streamed.outcomes == listed.outcomes
    assert streamed.successful_tps() == listed.successful_tps()
    assert streamed.failed_tps() == listed.failed_tps()
    got, want = streamed.latency(), listed.latency()
    assert got.count == want.count
    assert got.minimum == want.minimum
    assert got.maximum == want.maximum
    assert got.average == pytest.approx(want.average)


def test_snapshot_roundtrip_preserves_streaming(paired):
    _listed, streamed = paired
    snapshot = metrics_to_dict(streamed)
    assert "streaming" in snapshot
    rebuilt = metrics_from_dict(snapshot)
    assert rebuilt.streaming is not None
    assert metrics_to_dict(rebuilt) == snapshot
    assert rebuilt.successful_tps() == streamed.successful_tps()
    assert rebuilt.latency().p95 == streamed.latency().p95


def test_reservoir_overflow_stays_deterministic_and_close():
    exact = [((i * 2654435761) % 10_000) / 1000.0 for i in range(20_000)]
    first = StreamingLatency(seed=1, capacity=256)
    second = StreamingLatency(seed=1, capacity=256)
    for value in exact:
        first.add(value)
        second.add(value)
    # Same seed, same stream -> identical reservoir (and thus summary).
    assert first.samples == second.samples
    stats = first.stats()
    assert stats.count == len(exact)
    assert stats.minimum == min(exact)
    assert stats.maximum == max(exact)
    assert stats.average == pytest.approx(sum(exact) / len(exact))
    ordered = sorted(exact)
    true_p50 = ordered[int(0.50 * (len(ordered) - 1))]
    true_p95 = ordered[int(0.95 * (len(ordered) - 1))]
    # A 256-sample uniform reservoir pins percentiles within a few points.
    assert stats.p50 == pytest.approx(true_p50, rel=0.15)
    assert stats.p95 == pytest.approx(true_p95, rel=0.15)


def test_window_coalesces_instead_of_growing():
    window = StreamingWindow(width=1.0, limit=8)
    for tick in range(100):
        window.observe(float(tick), is_success=True)
    assert len(window.success) <= 8
    assert window.width == 16.0  # doubled from 1.0 as the horizon grew
    assert sum(window.success) == 100
    assert window.windowed_success == 100
