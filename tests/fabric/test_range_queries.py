"""Tests for range scans and phantom detection.

Fabric records a range query's bounds and exact results in the read set;
validation re-executes the scan and invalidates the transaction on any
difference — updates, deletes, and phantom inserts alike.
"""

import pytest

from repro.errors import ChaincodeError
from repro.fabric.chaincode import ChaincodeStub, StaleRead
from repro.fabric.metrics import TxOutcome
from repro.fabric.peer import Peer
from repro.fabric.rwset import RangeRead, ReadWriteSet
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.ledger.state_db import StateDatabase, Version
from tests.fabric.conftest import TestBed


@pytest.fixture
def state():
    db = StateDatabase()
    db.populate({"item_1": 10, "item_2": 20, "item_3": 30, "other_9": 99})
    return db


# -- state DB range_scan ---------------------------------------------------------


def test_range_scan_bounds(state):
    keys = [key for key, _ in state.range_scan("item_1", "item_3")]
    assert keys == ["item_1", "item_2"]


def test_range_scan_open_end(state):
    keys = [key for key, _ in state.range_scan("item_2")]
    assert keys == ["item_2", "item_3", "other_9"]


def test_range_scan_empty_result(state):
    assert list(state.range_scan("zzz")) == []


def test_range_scan_sorted_order(state):
    keys = [key for key, _ in state.range_scan("")]
    assert keys == sorted(keys)


# -- stub range reads ------------------------------------------------------------


def test_stub_range_read_records_results(state):
    stub = ChaincodeStub(state)
    results = stub.get_state_by_range("item_", "item_z")
    assert results == [("item_1", 10), ("item_2", 20), ("item_3", 30)]
    assert len(stub.rwset.range_reads) == 1
    recorded = stub.rwset.range_reads[0]
    assert recorded.start_key == "item_"
    assert recorded.result_keys() == ("item_1", "item_2", "item_3")
    assert all(version == Version(0, 0) for _, version in recorded.results)


def test_stub_range_read_skips_tombstone_values(state):
    stub = ChaincodeStub(state)
    stub.del_state("item_2")  # buffered write, not visible to reads
    results = stub.get_state_by_range("item_", "item_z")
    assert ("item_2", 20) in results  # committed state still has it


def test_stub_range_read_stale_check(state):
    height = state.last_block_id
    state.apply_block_writes(1, [(0, {"item_2": 21})])
    stub = ChaincodeStub(state, start_block_id=height)
    with pytest.raises(StaleRead):
        stub.get_state_by_range("item_", "item_z")


def test_stub_range_over_snapshot_rejected(state):
    stub = ChaincodeStub(state.snapshot())
    with pytest.raises(ChaincodeError):
        stub.get_state_by_range("a", "z")


def test_range_read_participates_in_unique_keys(state):
    stub = ChaincodeStub(state)
    stub.get_state_by_range("item_", "item_z")
    assert {"item_1", "item_2", "item_3"} <= stub.rwset.unique_keys


def test_range_read_conflicts_into():
    scanner = ReadWriteSet()
    scanner.record_range_read(
        RangeRead("a", "z", (("k1", Version(1, 0)),))
    )
    writer = ReadWriteSet()
    writer.record_write("k1", 5)
    assert writer.conflicts_into(scanner)
    assert not scanner.conflicts_into(writer)


# -- validation: phantom detection --------------------------------------------------


def scan_tx(bed, tx_id, results):
    """A transaction whose rwset contains one recorded range scan."""
    rwset = ReadWriteSet()
    rwset.record_range_read(RangeRead("item_", "item_z", tuple(results)))
    rwset.record_write("out", tx_id)
    proposal = bed.proposal(tx_id)
    endorsements = [
        bed.forge_endorsement(proposal, rwset, peer) for peer in bed.peers
    ]
    from repro.fabric.transaction import Transaction

    return Transaction(tx_id, proposal, rwset, endorsements)


@pytest.fixture
def bed():
    return TestBed(initial={"item_1": 10, "item_2": 20, "k": 0})


def genesis_results():
    return [("item_1", Version(0, 0)), ("item_2", Version(0, 0))]


def test_unchanged_range_commits(bed):
    tx = scan_tx(bed, "scan", genesis_results())
    bed.deliver(Block.create(1, GENESIS_HASH, [tx]))
    assert bed.notifications["scan"] is TxOutcome.COMMITTED


def test_updated_range_member_invalidates(bed):
    writer_rwset = ReadWriteSet()
    writer_rwset.record_write("item_1", 11)
    proposal = bed.proposal("writer")
    from repro.fabric.transaction import Transaction

    writer = Transaction(
        "writer", proposal, writer_rwset,
        [bed.forge_endorsement(proposal, writer_rwset, peer) for peer in bed.peers],
    )
    scanner = scan_tx(bed, "scan", genesis_results())
    bed.deliver(Block.create(1, GENESIS_HASH, [writer, scanner]))
    assert bed.notifications["writer"] is TxOutcome.COMMITTED
    assert bed.notifications["scan"] is TxOutcome.ABORT_MVCC


def test_phantom_insert_invalidates(bed):
    """A key inserted into the scanned range by an earlier valid tx is a
    phantom: the recorded scan never saw it."""
    insert_rwset = ReadWriteSet()
    insert_rwset.record_write("item_15", 150)  # new key inside the range
    proposal = bed.proposal("insert")
    from repro.fabric.transaction import Transaction

    inserter = Transaction(
        "insert", proposal, insert_rwset,
        [bed.forge_endorsement(proposal, insert_rwset, peer) for peer in bed.peers],
    )
    scanner = scan_tx(bed, "scan", genesis_results())
    bed.deliver(Block.create(1, GENESIS_HASH, [inserter, scanner]))
    assert bed.notifications["insert"] is TxOutcome.COMMITTED
    assert bed.notifications["scan"] is TxOutcome.ABORT_MVCC


def test_write_outside_range_is_harmless(bed):
    outside_rwset = ReadWriteSet()
    outside_rwset.record_write("zzz", 1)
    proposal = bed.proposal("outside")
    from repro.fabric.transaction import Transaction

    outsider = Transaction(
        "outside", proposal, outside_rwset,
        [bed.forge_endorsement(proposal, outside_rwset, peer) for peer in bed.peers],
    )
    scanner = scan_tx(bed, "scan", genesis_results())
    bed.deliver(Block.create(1, GENESIS_HASH, [outsider, scanner]))
    assert bed.notifications["scan"] is TxOutcome.COMMITTED


def test_cross_block_phantom_detected(bed):
    insert_rwset = ReadWriteSet()
    insert_rwset.record_write("item_05", 5)
    proposal = bed.proposal("insert")
    from repro.fabric.transaction import Transaction

    inserter = Transaction(
        "insert", proposal, insert_rwset,
        [bed.forge_endorsement(proposal, insert_rwset, peer) for peer in bed.peers],
    )
    bed.deliver(Block.create(1, GENESIS_HASH, [inserter]))
    scanner = scan_tx(bed, "scan", genesis_results())
    tip = bed.peers[0].channels["ch0"].ledger.tip_hash
    bed.deliver(Block.create(2, tip, [scanner]))
    assert bed.notifications["scan"] is TxOutcome.ABORT_MVCC


def test_fresh_scan_after_insert_commits(bed):
    insert_rwset = ReadWriteSet()
    insert_rwset.record_write("item_05", 5)
    proposal = bed.proposal("insert")
    from repro.fabric.transaction import Transaction

    inserter = Transaction(
        "insert", proposal, insert_rwset,
        [bed.forge_endorsement(proposal, insert_rwset, peer) for peer in bed.peers],
    )
    bed.deliver(Block.create(1, GENESIS_HASH, [inserter]))
    fresh_results = [
        ("item_05", Version(1, 0)),
        ("item_1", Version(0, 0)),
        ("item_2", Version(0, 0)),
    ]
    scanner = scan_tx(bed, "scan", fresh_results)
    tip = bed.peers[0].channels["ch0"].ledger.tip_hash
    bed.deliver(Block.create(2, tip, [scanner]))
    assert bed.notifications["scan"] is TxOutcome.COMMITTED
