"""Unit tests for configuration and pipeline metrics."""

import pytest

from repro.errors import ConfigError
from repro.fabric.config import CostModel, FabricConfig
from repro.fabric.metrics import LatencyStats, PipelineMetrics, TxOutcome


# -- FabricConfig ------------------------------------------------------------------


def test_default_config_is_vanilla():
    config = FabricConfig()
    assert not config.is_fabric_plus_plus
    config.validate()


def test_with_fabric_plus_plus_enables_all():
    config = FabricConfig().with_fabric_plus_plus()
    assert config.reordering
    assert config.early_abort_simulation
    assert config.early_abort_ordering
    assert config.is_fabric_plus_plus


def test_with_vanilla_round_trip():
    config = FabricConfig().with_fabric_plus_plus().with_vanilla()
    assert not config.is_fabric_plus_plus


def test_single_flag_counts_as_fabricpp():
    from dataclasses import replace

    config = replace(FabricConfig(), reordering=True)
    assert config.is_fabric_plus_plus


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_orgs", 0),
        ("peers_per_org", 0),
        ("cores_per_peer", 0),
        ("num_channels", 0),
        ("clients_per_channel", 0),
        ("client_rate", 0),
        ("client_window", 0),
    ],
)
def test_validation_rejects_bad_values(field, value):
    from dataclasses import replace

    config = replace(FabricConfig(), **{field: value})
    with pytest.raises(ConfigError):
        config.validate()


def test_cost_model_block_distribution_scales_with_size():
    costs = CostModel()
    small = costs.block_distribution_delay(1000)
    large = costs.block_distribution_delay(2_000_000)
    assert large > small
    assert small >= costs.net_block_base


def test_cost_model_validation_cost_scales_with_endorsements():
    costs = CostModel()
    assert costs.tx_validation_cost(4) > costs.tx_validation_cost(1)
    assert costs.tx_validation_cost(0) == costs.mvcc_check


# -- PipelineMetrics ----------------------------------------------------------------


def test_metrics_start_empty():
    metrics = PipelineMetrics()
    assert metrics.successful == 0
    assert metrics.failed == 0
    assert metrics.successful_tps() == 0.0
    assert metrics.latency() is None


def test_record_outcomes():
    metrics = PipelineMetrics()
    metrics.record_outcome(TxOutcome.COMMITTED, latency=0.5)
    metrics.record_outcome(TxOutcome.COMMITTED, latency=1.5)
    metrics.record_outcome(TxOutcome.ABORT_MVCC, latency=2.0)
    assert metrics.successful == 2
    assert metrics.failed == 1
    assert metrics.resolved == 3
    assert metrics.commit_latencies == [0.5, 1.5]


def test_tps_computation():
    metrics = PipelineMetrics()
    for _ in range(10):
        metrics.record_outcome(TxOutcome.COMMITTED, latency=0.1)
    for _ in range(5):
        metrics.record_outcome(TxOutcome.EARLY_ABORT_CYCLE)
    metrics.duration = 2.0
    assert metrics.successful_tps() == 5.0
    assert metrics.failed_tps() == 2.5
    assert metrics.total_tps() == 7.5


def test_latency_stats():
    stats = LatencyStats.from_samples([0.2, 0.4, 0.6])
    assert stats.minimum == 0.2
    assert stats.maximum == 0.6
    assert stats.average == pytest.approx(0.4)
    assert stats.count == 3
    assert LatencyStats.from_samples([]) is None


def test_percentile_single_sample():
    """n=1: every percentile is the sample itself."""
    stats = LatencyStats.from_samples([0.7])
    assert stats.p50 == stats.p95 == stats.p99 == 0.7


def test_percentile_two_samples_nearest_rank():
    """n=2 regression: the old round-the-index code computed
    ``round(0.5 * 1) == 0`` (banker's rounding) and reported the *minimum*
    as the median. Nearest-rank picks the first sample covering 50% of
    the data — the lower sample — by definition, and p95/p99 the upper."""
    stats = LatencyStats.from_samples([1.0, 3.0])
    assert stats.p50 == 1.0
    assert stats.p95 == 3.0
    assert stats.p99 == 3.0


def test_percentile_three_samples():
    stats = LatencyStats.from_samples([3.0, 1.0, 2.0])
    assert stats.p50 == 2.0
    assert stats.p95 == 3.0
    assert stats.p99 == 3.0


def test_percentile_hundred_samples():
    """n=100 regression: p50 must be the 50th ordered value (index 49),
    not the 51st that the old ``round(0.50 * 99) == 50`` produced."""
    samples = [float(value) for value in range(1, 101)]
    stats = LatencyStats.from_samples(samples)
    assert stats.p50 == 50.0
    assert stats.p95 == 95.0
    assert stats.p99 == 99.0


def test_percentiles_are_monotone():
    """p50 <= p95 <= p99 <= max must hold for any sample count."""
    for n in range(1, 25):
        samples = [float(value) for value in range(n)]
        stats = LatencyStats.from_samples(samples)
        assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99
        assert stats.p99 <= stats.maximum


def test_outcome_classification():
    assert TxOutcome.COMMITTED.is_success
    assert not TxOutcome.ABORT_MVCC.is_success
    assert TxOutcome.EARLY_ABORT_SIM.is_early_abort
    assert TxOutcome.EARLY_ABORT_CYCLE.is_early_abort
    assert TxOutcome.EARLY_ABORT_VERSION.is_early_abort
    assert not TxOutcome.ABORT_MVCC.is_early_abort
    assert not TxOutcome.COMMITTED.is_early_abort


def test_block_accounting():
    metrics = PipelineMetrics()
    metrics.record_block(100)
    metrics.record_block(50)
    assert metrics.blocks_committed == 2
    assert metrics.average_block_size() == 75.0


def test_summary_contains_headline_fields():
    metrics = PipelineMetrics()
    metrics.record_fired()
    metrics.record_outcome(TxOutcome.COMMITTED, latency=0.3)
    metrics.duration = 1.0
    summary = metrics.summary()
    assert summary["fired"] == 1
    assert summary["successful"] == 1
    assert summary["successful_tps"] == 1.0
    assert summary["latency_avg"] == 0.3
    assert summary["outcomes"] == {"committed": 1}
