"""Builders for peer/orderer tests that need a wired DES environment."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import pytest

from repro.crypto.identity import IdentityRegistry
from repro.crypto.signing import sign
from repro.fabric.chaincode import Chaincode, ChaincodeRegistry
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics, TxOutcome
from repro.fabric.peer import Peer
from repro.fabric.policy import AllOrgs
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import (
    Endorsement,
    Proposal,
    Transaction,
    endorsement_payload,
)
from repro.sim.engine import Environment


class CounterChaincode(Chaincode):
    """Reads a key, writes key+1 — the simplest conflicting contract."""

    name = "counter"

    def invoke(self, stub, function, args):
        (key,) = args
        value = stub.get_state(key) or 0
        stub.put_state(key, value + 1)
        return value + 1


class TestBed:
    """A two-org, one-peer-per-org network without clients or orderer."""

    __test__ = False  # helper, not a test class

    def __init__(self, config: Optional[FabricConfig] = None, initial=None):
        self.config = config or replace(
            FabricConfig(), num_orgs=2, peers_per_org=1
        )
        self.env = Environment()
        self.registry = IdentityRegistry()
        self.policy = AllOrgs("OrgA", "OrgB")
        self.metrics = PipelineMetrics()
        self.notifications: Dict[str, TxOutcome] = {}
        self.chaincodes = ChaincodeRegistry()
        self.chaincodes.install(CounterChaincode())
        self.peers = []
        for org in ("OrgA", "OrgB"):
            identity = self.registry.register(f"peer0.{org}", org)
            peer = Peer(self.env, identity, self.config, self.registry)
            peer.join_channel(
                "ch0", self.chaincodes, self.policy, initial_state=initial or {}
            )
            self.peers.append(peer)
        self.peers[0].attach_reference_hooks(self._notify, self.metrics)

    def _notify(self, tx_id: str, outcome: TxOutcome) -> None:
        self.notifications[tx_id] = outcome

    def proposal(self, proposal_id: str, key: str = "k") -> Proposal:
        return Proposal(
            proposal_id, "client0", "ch0", "counter", "inc", (key,),
            submitted_at=self.env.now,
        )

    def endorse_everywhere(self, proposal: Proposal):
        """Run endorsement on both peers; returns the list of replies."""
        handles = [peer.endorse("ch0", proposal) for peer in self.peers]
        self.env.run()
        return [handle.value for handle in handles]

    def make_transaction(self, proposal: Proposal, replies) -> Transaction:
        endorsements = [reply.endorsement for reply in replies]
        return Transaction(
            tx_id=proposal.proposal_id,
            proposal=proposal,
            rwset=endorsements[0].rwset,
            endorsements=endorsements,
        )

    def forge_endorsement(self, proposal: Proposal, rwset: ReadWriteSet, peer):
        """An honest signature over an honest rwset, for tamper tests."""
        signature = sign(peer.identity, endorsement_payload(proposal, rwset))
        return Endorsement(peer.name, peer.org, rwset, signature)

    def deliver(self, block):
        for peer in self.peers:
            peer.deliver_block("ch0", block)
        self.env.run()


@pytest.fixture
def testbed():
    return TestBed(initial={"k": 0, "x": 10, "y": 20})
