"""Tests for out-of-order and duplicate block delivery at the peer."""

from repro.fabric.metrics import TxOutcome
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from tests.fabric.conftest import TestBed


def make_tx(bed, tx_id, key="k"):
    proposal = bed.proposal(tx_id, key)
    return bed.make_transaction(proposal, bed.endorse_everywhere(proposal))


def chained_blocks(bed, groups):
    """Build blocks for consecutive ids from lists of transactions."""
    blocks = []
    previous = GENESIS_HASH
    for block_id, transactions in enumerate(groups, start=1):
        block = Block.create(block_id, previous, transactions)
        previous = block.header.data_hash
        blocks.append(block)
    return blocks


def test_out_of_order_delivery_is_buffered():
    bed = TestBed(initial={"k": 0, "x": 0})
    tx1 = make_tx(bed, "t1", "k")
    tx2 = make_tx(bed, "t2", "x")
    block1, block2 = chained_blocks(bed, [[tx1], [tx2]])
    # Deliver block 2 first; the validator must wait for block 1.
    for peer in bed.peers:
        peer.deliver_block("ch0", block2)
        peer.deliver_block("ch0", block1)
    bed.env.run()
    assert bed.notifications["t1"] is TxOutcome.COMMITTED
    assert bed.notifications["t2"] is TxOutcome.COMMITTED
    ledger = bed.peers[0].channels["ch0"].ledger
    assert ledger.height == 2
    assert ledger.verify_chain()


def test_duplicate_delivery_ignored():
    bed = TestBed(initial={"k": 0})
    tx1 = make_tx(bed, "t1")
    (block1,) = chained_blocks(bed, [[tx1]])
    for peer in bed.peers:
        peer.deliver_block("ch0", block1)
    bed.env.run()
    # Re-deliver the same block plus a fresh one.
    tx2 = make_tx(bed, "t2")
    block2 = Block.create(2, block1.header.data_hash, [tx2])
    for peer in bed.peers:
        peer.deliver_block("ch0", block1)  # duplicate
        peer.deliver_block("ch0", block2)
    bed.env.run()
    ledger = bed.peers[0].channels["ch0"].ledger
    assert ledger.height == 2
    assert bed.notifications["t2"] is TxOutcome.COMMITTED


def test_heavily_shuffled_delivery():
    bed = TestBed(initial={"k": 0, "a": 0, "b": 0, "c": 0})
    transactions = [make_tx(bed, f"t{i}", key) for i, key in
                    enumerate(["k", "a", "b", "c"])]
    blocks = chained_blocks(bed, [[tx] for tx in transactions])
    shuffled = [blocks[2], blocks[0], blocks[3], blocks[1]]
    for peer in bed.peers:
        for block in shuffled:
            peer.deliver_block("ch0", block)
    bed.env.run()
    ledger = bed.peers[0].channels["ch0"].ledger
    assert ledger.height == 4
    assert [block.block_id for block in ledger] == [1, 2, 3, 4]
    assert all(
        bed.notifications[f"t{i}"] is TxOutcome.COMMITTED for i in range(4)
    )
