"""Unit tests for endorsement policies."""

import pytest

from repro.errors import PolicyError
from repro.fabric.policy import AllOrgs, AnyOrg, OutOf, RequireOrg


def test_require_org():
    policy = RequireOrg("OrgA")
    assert policy.satisfied_by(frozenset(["OrgA"]))
    assert policy.satisfied_by(frozenset(["OrgA", "OrgB"]))
    assert not policy.satisfied_by(frozenset(["OrgB"]))
    assert policy.required_orgs() == {"OrgA"}


def test_and_policy():
    policy = AllOrgs("OrgA", "OrgB")
    assert policy.satisfied_by(frozenset(["OrgA", "OrgB"]))
    assert not policy.satisfied_by(frozenset(["OrgA"]))
    assert policy.required_orgs() == {"OrgA", "OrgB"}


def test_or_policy():
    policy = AnyOrg("OrgA", "OrgB")
    assert policy.satisfied_by(frozenset(["OrgA"]))
    assert policy.satisfied_by(frozenset(["OrgB"]))
    assert not policy.satisfied_by(frozenset(["OrgC"]))
    assert len(policy.required_orgs()) == 1


def test_out_of_policy():
    policy = OutOf(2, ["OrgA", "OrgB", "OrgC"])
    assert policy.satisfied_by(frozenset(["OrgA", "OrgC"]))
    assert not policy.satisfied_by(frozenset(["OrgB"]))
    assert len(policy.required_orgs()) == 2


def test_out_of_bounds_rejected():
    with pytest.raises(PolicyError):
        OutOf(0, ["OrgA"])
    with pytest.raises(PolicyError):
        OutOf(3, ["OrgA", "OrgB"])


def test_nested_policy():
    # (A AND B) OR C
    policy = AnyOrg(AllOrgs("OrgA", "OrgB"), RequireOrg("OrgC"))
    assert policy.satisfied_by(frozenset(["OrgC"]))
    assert policy.satisfied_by(frozenset(["OrgA", "OrgB"]))
    assert not policy.satisfied_by(frozenset(["OrgA"]))
    # Cheapest path is just OrgC.
    assert policy.required_orgs() == {"OrgC"}


def test_mentioned_orgs():
    policy = AnyOrg(AllOrgs("OrgA", "OrgB"), RequireOrg("OrgC"))
    assert policy.mentioned_orgs() == {"OrgA", "OrgB", "OrgC"}


def test_empty_combinators_rejected():
    with pytest.raises(PolicyError):
        AllOrgs()
    with pytest.raises(PolicyError):
        AnyOrg()


def test_non_policy_operand_rejected():
    with pytest.raises(PolicyError):
        AllOrgs(42)


def test_string_shorthand():
    policy = AllOrgs("OrgA", RequireOrg("OrgB"))
    assert policy.satisfied_by(frozenset(["OrgA", "OrgB"]))


def test_repr_round_trip_readability():
    policy = OutOf(1, [AllOrgs("A", "B")])
    assert "OutOf(1" in repr(policy)
    assert "AND" in repr(policy)


# -- data-only policy specs (picklable, sweepable) ------------------------------


def test_parse_policy_spec_all():
    from repro.fabric.policy import parse_policy_spec

    policy = parse_policy_spec("all", ["OrgA", "OrgB"])
    assert policy.satisfied_by(frozenset(["OrgA", "OrgB"]))
    assert not policy.satisfied_by(frozenset(["OrgA"]))


def test_parse_policy_spec_any():
    from repro.fabric.policy import parse_policy_spec

    policy = parse_policy_spec("any", ["OrgA", "OrgB"])
    assert policy.satisfied_by(frozenset(["OrgB"]))


def test_parse_policy_spec_outof():
    from repro.fabric.policy import parse_policy_spec

    policy = parse_policy_spec("outof:2", ["OrgA", "OrgB", "OrgC"])
    assert policy.satisfied_by(frozenset(["OrgA", "OrgC"]))
    assert not policy.satisfied_by(frozenset(["OrgC"]))
    assert policy.mentioned_orgs() == {"OrgA", "OrgB", "OrgC"}


def test_parse_policy_spec_rejects_bad_input():
    from repro.fabric.policy import parse_policy_spec

    with pytest.raises(PolicyError):
        parse_policy_spec("bogus", ["OrgA"])
    with pytest.raises(PolicyError):
        parse_policy_spec("outof:nan", ["OrgA"])
    with pytest.raises(PolicyError):
        parse_policy_spec("outof:5", ["OrgA", "OrgB"])
    with pytest.raises(PolicyError):
        parse_policy_spec("outof:0", ["OrgA", "OrgB"])
