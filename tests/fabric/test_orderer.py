"""Unit tests for the ordering service."""

from dataclasses import replace
from typing import List

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.orderer import OrderingService
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Proposal, Transaction
from repro.ledger.state_db import Version
from repro.sim.engine import Environment
from repro.sim.resources import Resource


class OrdererHarness:
    """An ordering service with captured broadcasts and notifications."""

    def __init__(self, config: FabricConfig):
        self.env = Environment()
        self.blocks: List = []
        self.notifications = {}
        self.orderer = OrderingService(
            self.env,
            "ch0",
            config,
            Resource(self.env, config.cores_per_peer),
            broadcast=lambda channel, block: self.blocks.append(block),
            notify=lambda tx_id, outcome: self.notifications.__setitem__(
                tx_id, outcome
            ),
        )

    def submit_all(self, transactions):
        for tx in transactions:
            self.orderer.submit(tx)
        self.env.run()


def make_tx(tx_id, reads=(), writes=(), version=Version(1, 0)):
    rwset = ReadWriteSet()
    for item in reads:
        if isinstance(item, tuple):
            key, read_version = item
        else:
            key, read_version = item, version
        rwset.record_read(key, read_version)
    for key in writes:
        rwset.record_write(key, f"v-{key}")
    proposal = Proposal(tx_id, "client", "ch0", "cc", "f", ())
    return Transaction(tx_id, proposal, rwset, [])


def vanilla_config(**kwargs):
    batch = kwargs.pop("batch", BatchCutConfig(max_transactions=4))
    return replace(FabricConfig(), batch=batch, **kwargs)


def test_cut_by_count():
    harness = OrdererHarness(vanilla_config())
    harness.submit_all([make_tx(f"t{i}") for i in range(4)])
    assert len(harness.blocks) == 1
    assert [t.tx_id for t in harness.blocks[0].transactions] == [
        "t0", "t1", "t2", "t3",
    ]


def test_partial_batch_cut_by_timeout():
    harness = OrdererHarness(vanilla_config())
    harness.submit_all([make_tx("t0"), make_tx("t1")])
    assert len(harness.blocks) == 1  # timeout (1s) fired during run()
    assert harness.env.now >= 1.0
    assert len(harness.blocks[0]) == 2


def test_blocks_chain_hashes():
    harness = OrdererHarness(vanilla_config())
    harness.submit_all([make_tx(f"t{i}") for i in range(8)])
    assert len(harness.blocks) == 2
    first, second = harness.blocks
    assert first.block_id == 1
    assert second.block_id == 2
    assert second.header.previous_hash == first.header.data_hash


def test_vanilla_keeps_arrival_order():
    """The vanilla orderer must not inspect transaction semantics."""
    harness = OrdererHarness(vanilla_config())
    writer = make_tx("writer", writes=["k"])
    readers = [make_tx(f"r{i}", reads=["k"]) for i in range(3)]
    harness.submit_all([writer] + readers)
    order = [t.tx_id for t in harness.blocks[0].transactions]
    assert order == ["writer", "r0", "r1", "r2"]


def test_reordering_places_readers_first():
    harness = OrdererHarness(vanilla_config(reordering=True))
    writer = make_tx("writer", writes=["k"])
    readers = [make_tx(f"r{i}", reads=["k"]) for i in range(3)]
    harness.submit_all([writer] + readers)
    order = [t.tx_id for t in harness.blocks[0].transactions]
    assert order[-1] == "writer"
    assert set(order[:3]) == {"r0", "r1", "r2"}


def test_reordering_aborts_cycles_and_notifies():
    harness = OrdererHarness(vanilla_config(reordering=True))
    a = make_tx("a", reads=["x"], writes=["y"])
    b = make_tx("b", reads=["y"], writes=["x"])
    filler = [make_tx(f"f{i}") for i in range(2)]
    harness.submit_all([a, b] + filler)
    block = harness.blocks[0]
    committed_ids = {t.tx_id for t in block.transactions}
    assert len(committed_ids & {"a", "b"}) == 1
    aborted_id = ({"a", "b"} - committed_ids).pop()
    assert harness.notifications[aborted_id] is TxOutcome.EARLY_ABORT_CYCLE
    assert harness.orderer.txs_early_aborted == 1
    assert len(block.early_aborted) == 1


def test_version_mismatch_early_abort():
    harness = OrdererHarness(vanilla_config(early_abort_ordering=True))
    stale = make_tx("stale", reads=[("k", Version(1, 0))])
    fresh = make_tx("fresh", reads=[("k", Version(2, 0))])
    filler = [make_tx(f"f{i}") for i in range(2)]
    harness.submit_all([stale, fresh] + filler)
    block = harness.blocks[0]
    assert "stale" not in {t.tx_id for t in block.transactions}
    assert harness.notifications["stale"] is TxOutcome.EARLY_ABORT_VERSION


def test_vanilla_never_notifies_or_drops():
    harness = OrdererHarness(vanilla_config())
    stale = make_tx("stale", reads=[("k", Version(1, 0))])
    fresh = make_tx("fresh", reads=[("k", Version(2, 0))])
    a = make_tx("a", reads=["x"], writes=["y"])
    b = make_tx("b", reads=["y"], writes=["x"])
    harness.submit_all([stale, fresh, a, b])
    assert harness.notifications == {}
    assert len(harness.blocks[0]) == 4


def test_counters():
    harness = OrdererHarness(vanilla_config())
    harness.submit_all([make_tx(f"t{i}") for i in range(8)])
    assert harness.orderer.txs_received == 8
    assert harness.orderer.blocks_cut == 2


def test_unique_keys_cut_with_reordering():
    config = vanilla_config(
        reordering=True,
        batch=BatchCutConfig(max_transactions=100, max_unique_keys=4),
    )
    harness = OrdererHarness(config)
    txs = [make_tx(f"t{i}", reads=[f"k{2 * i}", f"k{2 * i + 1}"]) for i in range(4)]
    harness.submit_all(txs)
    # 2 keys per tx: the second tx reaches 4 unique keys -> cut.
    assert len(harness.blocks) == 2
    assert len(harness.blocks[0]) == 2


def test_empty_blocks_never_emitted():
    """If every transaction of a batch is early-aborted, a (possibly
    empty) block is still cut but carries the aborts for the ledger."""
    config = vanilla_config(
        early_abort_ordering=True, batch=BatchCutConfig(max_transactions=2)
    )
    harness = OrdererHarness(config)
    stale = make_tx("stale", reads=[("k", Version(1, 0))])
    fresh = make_tx("fresh", reads=[("k", Version(2, 0))])
    harness.submit_all([stale, fresh])
    assert len(harness.blocks) == 1
    assert [t.tx_id for t in harness.blocks[0].transactions] == ["fresh"]


def test_flush_emits_pending():
    harness = OrdererHarness(vanilla_config(batch=BatchCutConfig()))
    harness.orderer.submit(make_tx("t0"))

    def flusher():
        yield harness.env.timeout(0.01)
        yield from harness.orderer.flush()

    harness.env.process(flusher())
    harness.env.run(until=0.5)  # before the 1s batch timeout
    assert len(harness.blocks) == 1


# -- batch timer vs. stall windows ------------------------------------------
#
# The batch timer must *wait out* an ordering stall rather than cutting a
# block inside it, and a timer armed for an earlier batch generation must
# never cut the batch that follows a size-based cut.

from repro.faults import StallWindow  # noqa: E402


def submit_at(harness, at, transactions):
    """Schedule transactions to arrive at simulated time ``at``."""

    def arrival():
        yield harness.env.timeout(at)
        for tx in transactions:
            harness.orderer.submit(tx)

    harness.env.process(arrival(), name=f"test/submit@{at}")


def test_batch_timer_waits_out_stall():
    harness = OrdererHarness(vanilla_config())
    # Stall covers the timer deadline (t=1.0): [0.5, 1.5).
    harness.orderer.install_stalls((StallWindow(at=0.5, duration=1.0),))
    harness.submit_all([make_tx("t0")])
    assert len(harness.blocks) == 1
    (tx,) = harness.blocks[0].transactions
    # The cut happened after the stall cleared, not inside it.
    assert tx.ordered_at >= 1.5


def test_stale_timer_generation_cannot_cut_next_batch():
    harness = OrdererHarness(vanilla_config())
    # The stale timer (armed at t=0, deadline 1.0) wakes mid-stall and
    # resumes at t=1.15 — after the size cut bumped the generation. If
    # the generation check were missing it would cut t4's batch at 1.15,
    # half a second before its own timer.
    harness.orderer.install_stalls((StallWindow(at=0.95, duration=0.2),))
    submit_at(harness, 0.0, [make_tx("t0")])
    submit_at(harness, 0.2, [make_tx(f"t{i}") for i in (1, 2, 3)])
    submit_at(harness, 0.5, [make_tx("t4")])
    harness.env.run()

    assert len(harness.blocks) == 2
    first, second = harness.blocks
    assert [t.tx_id for t in first.transactions] == ["t0", "t1", "t2", "t3"]
    assert [t.tx_id for t in second.transactions] == ["t4"]
    # First block cut by size just after t=0.2 (plus ordering CPU); the
    # second waits for its *own* timer deadline (0.5 + 1.0), untouched
    # by the stale timer's wakeup at 1.15.
    assert 0.2 <= first.transactions[0].ordered_at < 0.5
    assert second.transactions[0].ordered_at >= 1.5
