"""Unit tests for read/write sets."""

from repro.fabric.rwset import ReadWriteSet
from repro.ledger.state_db import Version

V1 = Version(1, 0)
V2 = Version(2, 0)


def test_empty_rwset():
    rwset = ReadWriteSet()
    assert rwset.is_empty()
    assert rwset.read_keys == frozenset()
    assert rwset.write_keys == frozenset()
    assert rwset.unique_keys == frozenset()


def test_first_read_wins():
    rwset = ReadWriteSet()
    rwset.record_read("k", V1)
    rwset.record_read("k", V2)
    assert rwset.reads["k"] == V1


def test_last_write_wins():
    rwset = ReadWriteSet()
    rwset.record_write("k", 1)
    rwset.record_write("k", 2)
    assert rwset.writes["k"] == 2


def test_read_of_absent_key():
    rwset = ReadWriteSet()
    rwset.record_read("ghost", None)
    assert rwset.reads["ghost"] is None
    assert not rwset.is_empty()


def test_unique_keys_union():
    rwset = ReadWriteSet()
    rwset.record_read("a", V1)
    rwset.record_write("a", 1)
    rwset.record_write("b", 2)
    assert rwset.unique_keys == {"a", "b"}


def test_conflicts_into():
    writer = ReadWriteSet()
    writer.record_write("k", 1)
    reader = ReadWriteSet()
    reader.record_read("k", V1)
    assert writer.conflicts_into(reader)
    assert not reader.conflicts_into(writer)


def test_no_conflict_between_disjoint():
    a = ReadWriteSet()
    a.record_write("x", 1)
    b = ReadWriteSet()
    b.record_read("y", V1)
    assert not a.conflicts_into(b)


def test_equality_semantics():
    a = ReadWriteSet()
    a.record_read("k", V1)
    a.record_write("w", 5)
    b = ReadWriteSet()
    b.record_read("k", V1)
    b.record_write("w", 5)
    assert a == b
    b.record_write("w", 6)
    assert a != b


def test_equality_ignores_insertion_order():
    a = ReadWriteSet()
    a.record_read("k1", V1)
    a.record_read("k2", V1)
    b = ReadWriteSet()
    b.record_read("k2", V1)
    b.record_read("k1", V1)
    assert a == b


def test_canonical_bytes_stable():
    a = ReadWriteSet()
    a.record_read("k1", V1)
    a.record_write("w", 5)
    assert a.canonical_bytes() == a.canonical_bytes()


def test_canonical_bytes_order_independent():
    a = ReadWriteSet()
    a.record_read("k1", V1)
    a.record_read("k2", V2)
    b = ReadWriteSet()
    b.record_read("k2", V2)
    b.record_read("k1", V1)
    assert a.canonical_bytes() == b.canonical_bytes()


def test_canonical_bytes_differ_on_version():
    a = ReadWriteSet()
    a.record_read("k", V1)
    b = ReadWriteSet()
    b.record_read("k", V2)
    assert a.canonical_bytes() != b.canonical_bytes()


def test_canonical_bytes_differ_on_value():
    a = ReadWriteSet()
    a.record_write("k", 1)
    b = ReadWriteSet()
    b.record_write("k", 2)
    assert a.canonical_bytes() != b.canonical_bytes()


def test_canonical_cache_invalidated_on_mutation():
    a = ReadWriteSet()
    a.record_read("k", V1)
    before = a.canonical_bytes()
    a.record_write("w", 1)
    assert a.canonical_bytes() != before


def test_copy_is_independent():
    a = ReadWriteSet()
    a.record_read("k", V1)
    b = a.copy()
    b.record_write("w", 1)
    assert "w" not in a.writes
    assert a.reads == b.reads
