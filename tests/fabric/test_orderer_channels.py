"""Ordering service behaviour across channels and under shared CPU."""

from dataclasses import replace
from typing import List

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.orderer import OrderingService
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Proposal, Transaction
from repro.ledger.state_db import Version
from repro.sim.engine import Environment
from repro.sim.resources import Resource


def make_tx(tx_id, pad_entries=0):
    rwset = ReadWriteSet()
    rwset.record_read("k", Version(1, 0))
    for i in range(pad_entries):
        rwset.record_write(f"pad-{tx_id}-{i}", i)
    proposal = Proposal(tx_id, "client", "ch", "cc", "f", ())
    return Transaction(tx_id, proposal, rwset, [])


def build(env, cpu, channel, blocks, config=None):
    config = config or replace(
        FabricConfig(), batch=BatchCutConfig(max_transactions=4)
    )
    return OrderingService(
        env, channel, config, cpu,
        broadcast=lambda ch, block: blocks.append((ch, block)),
        notify=lambda tx_id, outcome: None,
    )


def test_two_channels_share_one_orderer_machine():
    env = Environment()
    cpu = Resource(env, capacity=2)
    blocks: List = []
    orderer_a = build(env, cpu, "ch0", blocks)
    orderer_b = build(env, cpu, "ch1", blocks)
    for i in range(4):
        orderer_a.submit(make_tx(f"a{i}"))
        orderer_b.submit(make_tx(f"b{i}"))
    env.run()
    channels = [ch for ch, _ in blocks]
    assert channels.count("ch0") == 1
    assert channels.count("ch1") == 1
    # Chains are independent per channel.
    block_a = next(block for ch, block in blocks if ch == "ch0")
    block_b = next(block for ch, block in blocks if ch == "ch1")
    assert block_a.block_id == 1 and block_b.block_id == 1
    assert block_a.header.data_hash != block_b.header.data_hash


def test_block_ids_monotonic_per_channel():
    env = Environment()
    cpu = Resource(env, capacity=1)
    blocks: List = []
    orderer = build(env, cpu, "ch0", blocks)
    for i in range(12):
        orderer.submit(make_tx(f"t{i}"))
    env.run()
    ids = [block.block_id for _, block in blocks]
    assert ids == [1, 2, 3]


def test_cut_by_bytes_in_pipeline():
    env = Environment()
    cpu = Resource(env, capacity=1)
    blocks: List = []
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=1000, max_bytes=9000),
    )
    orderer = build(env, cpu, "ch0", blocks, config=config)
    for i in range(4):
        orderer.submit(make_tx(f"t{i}", pad_entries=40))
    env.run()
    assert blocks, "byte criterion never cut"
    first_block = blocks[0][1]
    assert len(first_block) < 4


def test_timer_respects_generation_across_cuts():
    """A timer armed for batch N must not cut batch N+1 early."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    blocks: List = []
    orderer = build(env, cpu, "ch0", blocks)

    def feed():
        # Fill batch 1 completely at t=0.2 (cut by count).
        yield env.timeout(0.2)
        for i in range(4):
            orderer.submit(make_tx(f"first{i}"))
        # Start batch 2 shortly after; its own timer should cut it a full
        # batch-delay after ITS first transaction.
        yield env.timeout(0.3)
        orderer.submit(make_tx("second0"))

    env.process(feed())
    env.run()
    assert len(blocks) == 2
    second_cut_time = [block for _, block in blocks][1]
    assert len(second_cut_time) == 1
    # The run only ends once the second batch's timeout fired: at least
    # first-tx time (0.5) + max_batch_delay (1.0).
    assert env.now >= 1.5


def test_ordered_at_stamped_on_cut():
    env = Environment()
    cpu = Resource(env, capacity=1)
    blocks: List = []
    orderer = build(env, cpu, "ch0", blocks)
    transactions = [make_tx(f"t{i}") for i in range(4)]
    for tx in transactions:
        orderer.submit(tx)
    env.run()
    assert all(tx.ordered_at is not None for tx in transactions)
    assert all(tx.ordered_at <= env.now for tx in transactions)
