"""Unit tests for the within-block version-mismatch early abort."""

from repro.core.early_abort import filter_stale_within_block
from repro.ledger.state_db import Version
from tests.conftest import rwset

V1 = Version(1, 0)
V2 = Version(2, 0)
V3 = Version(3, 0)


def test_empty_batch():
    assert filter_stale_within_block([]) == ([], [])


def test_no_shared_reads_all_kept():
    batch = [rwset(reads=[("a", V1)]), rwset(reads=[("b", V2)])]
    kept, aborted = filter_stale_within_block(batch)
    assert kept == [0, 1]
    assert aborted == []


def test_same_version_reads_all_kept():
    batch = [rwset(reads=[("k", V1)]), rwset(reads=[("k", V1)])]
    kept, aborted = filter_stale_within_block(batch)
    assert kept == [0, 1]
    assert aborted == []


def test_older_version_reader_aborted():
    """Paper correction to Section 5.2.2: the transaction that read the
    OLDER version (T6 in the example) is the one early aborted."""
    t6 = rwset(reads=[("k", V1)])
    t7 = rwset(reads=[("k", V2)])
    kept, aborted = filter_stale_within_block([t6, t7])
    assert aborted == [0]  # T6 read the older version v1
    assert kept == [1]


def test_order_within_block_does_not_matter():
    t6 = rwset(reads=[("k", V1)])
    t7 = rwset(reads=[("k", V2)])
    kept, aborted = filter_stale_within_block([t7, t6])
    assert aborted == [1]
    assert kept == [0]


def test_majority_old_readers_all_aborted():
    batch = [
        rwset(reads=[("k", V1)]),
        rwset(reads=[("k", V1)]),
        rwset(reads=[("k", V2)]),
    ]
    kept, aborted = filter_stale_within_block(batch)
    assert kept == [2]
    assert aborted == [0, 1]


def test_three_versions_only_newest_kept():
    batch = [
        rwset(reads=[("k", V1)]),
        rwset(reads=[("k", V2)]),
        rwset(reads=[("k", V3)]),
    ]
    kept, aborted = filter_stale_within_block(batch)
    assert kept == [2]
    assert aborted == [0, 1]


def test_absent_read_older_than_concrete():
    """None (key absent) loses against a concrete version."""
    ghost_reader = rwset(reads=[("k", None)])
    fresh_reader = rwset(reads=[("k", V1)])
    kept, aborted = filter_stale_within_block([ghost_reader, fresh_reader])
    assert kept == [1]
    assert aborted == [0]


def test_all_absent_reads_kept():
    batch = [rwset(reads=[("k", None)]), rwset(reads=[("k", None)])]
    kept, aborted = filter_stale_within_block(batch)
    assert kept == [0, 1]


def test_stale_on_any_key_aborts():
    """One stale read anywhere dooms the whole transaction."""
    batch = [
        rwset(reads=[("a", V1), ("b", V1)]),
        rwset(reads=[("b", V2)]),
    ]
    kept, aborted = filter_stale_within_block(batch)
    assert aborted == [0]


def test_writes_do_not_trigger_version_filter():
    batch = [
        rwset(reads=[("k", V1)], writes=["k"]),
        rwset(writes=["k"]),
    ]
    kept, aborted = filter_stale_within_block(batch)
    assert kept == [0, 1]


def test_block_version_comparison_within_same_block_id():
    """tx_id breaks ties within a block id."""
    early = rwset(reads=[("k", Version(5, 1))])
    late = rwset(reads=[("k", Version(5, 9))])
    kept, aborted = filter_stale_within_block([early, late])
    assert kept == [1]
    assert aborted == [0]


def test_indices_are_disjoint_and_complete():
    batch = [
        rwset(reads=[("a", V1)]),
        rwset(reads=[("a", V2), ("b", V1)]),
        rwset(reads=[("b", V1)]),
        rwset(),
    ]
    kept, aborted = filter_stale_within_block(batch)
    assert sorted(kept + aborted) == [0, 1, 2, 3]
    assert not set(kept) & set(aborted)
