"""Unit tests for batch cutting (vanilla criteria + Fabric++ unique keys)."""

import pytest

from repro.core.batch_cutter import BatchCutConfig, BatchCutter, CutReason
from repro.errors import ConfigError
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Proposal, Transaction
from repro.ledger.state_db import Version


def make_tx(tx_id, keys=(), size_entries=0):
    rwset = ReadWriteSet()
    for key in keys:
        rwset.record_read(key, Version(1, 0))
    for i in range(size_entries):
        rwset.record_write(f"pad-{tx_id}-{i}", i)
    proposal = Proposal(tx_id, "client", "ch0", "cc", "f", ())
    return Transaction(tx_id, proposal, rwset, [])


def test_config_validation():
    with pytest.raises(ConfigError):
        BatchCutConfig(max_transactions=0).validate()
    with pytest.raises(ConfigError):
        BatchCutConfig(max_bytes=0).validate()
    with pytest.raises(ConfigError):
        BatchCutConfig(max_batch_delay=0).validate()
    with pytest.raises(ConfigError):
        BatchCutConfig(max_unique_keys=0).validate()
    BatchCutConfig(max_unique_keys=None).validate()  # None disables it


def test_cut_by_transaction_count():
    cutter = BatchCutter(BatchCutConfig(max_transactions=3))
    assert cutter.add(make_tx("t1"), now=0.0) is None
    assert cutter.add(make_tx("t2"), now=0.1) is None
    assert cutter.add(make_tx("t3"), now=0.2) == CutReason.TX_COUNT
    batch = cutter.cut(CutReason.TX_COUNT)
    assert [t.tx_id for t in batch] == ["t1", "t2", "t3"]
    assert cutter.is_empty


def test_cut_by_bytes():
    cutter = BatchCutter(BatchCutConfig(max_transactions=1000, max_bytes=6000))
    assert cutter.add(make_tx("t1", size_entries=10), now=0.0) is None
    reason = cutter.add(make_tx("t2", size_entries=40), now=0.1)
    assert reason == CutReason.BYTES


def test_timeout_deadline():
    cutter = BatchCutter(BatchCutConfig(max_batch_delay=1.0))
    assert cutter.deadline() is None
    cutter.add(make_tx("t1"), now=5.0)
    assert cutter.deadline() == 6.0
    assert not cutter.timeout_due(5.5)
    assert cutter.timeout_due(6.0)


def test_deadline_resets_after_cut():
    cutter = BatchCutter(BatchCutConfig(max_batch_delay=1.0))
    cutter.add(make_tx("t1"), now=0.0)
    cutter.cut(CutReason.TIMEOUT)
    assert cutter.deadline() is None
    cutter.add(make_tx("t2"), now=9.0)
    assert cutter.deadline() == 10.0


def test_unique_keys_criterion_disabled_by_default():
    """Vanilla Fabric does not inspect transaction semantics."""
    cutter = BatchCutter(BatchCutConfig(max_unique_keys=2))
    assert cutter.add(make_tx("t1", keys=["a", "b", "c"]), now=0.0) is None
    assert cutter.unique_keys == 0


def test_unique_keys_criterion_enabled():
    cutter = BatchCutter(
        BatchCutConfig(max_unique_keys=4), track_unique_keys=True
    )
    assert cutter.add(make_tx("t1", keys=["a", "b"]), now=0.0) is None
    assert cutter.unique_keys == 2
    reason = cutter.add(make_tx("t2", keys=["b", "c", "d"]), now=0.1)
    assert reason == CutReason.UNIQUE_KEYS
    assert cutter.unique_keys == 4


def test_unique_keys_counts_duplicates_once():
    cutter = BatchCutter(
        BatchCutConfig(max_unique_keys=100), track_unique_keys=True
    )
    cutter.add(make_tx("t1", keys=["a", "b"]), now=0.0)
    cutter.add(make_tx("t2", keys=["a", "b"]), now=0.1)
    assert cutter.unique_keys == 2


def test_unique_keys_reset_after_cut():
    cutter = BatchCutter(
        BatchCutConfig(max_unique_keys=100), track_unique_keys=True
    )
    cutter.add(make_tx("t1", keys=["a"]), now=0.0)
    cutter.cut(CutReason.FLUSH)
    assert cutter.unique_keys == 0


def test_track_disabled_when_config_none():
    cutter = BatchCutter(
        BatchCutConfig(max_unique_keys=None), track_unique_keys=True
    )
    cutter.add(make_tx("t1", keys=["a", "b"]), now=0.0)
    assert cutter.unique_keys == 0


def test_cut_records_reason():
    cutter = BatchCutter(BatchCutConfig())
    cutter.add(make_tx("t1"), now=0.0)
    cutter.cut(CutReason.TIMEOUT)
    assert cutter.last_cut_reason == CutReason.TIMEOUT


def test_first_arrival_tracked():
    cutter = BatchCutter(BatchCutConfig())
    assert cutter.first_arrival is None
    cutter.add(make_tx("t1"), now=3.5)
    cutter.add(make_tx("t2"), now=4.5)
    assert cutter.first_arrival == 3.5


def test_len_reflects_pending():
    cutter = BatchCutter(BatchCutConfig())
    assert len(cutter) == 0
    cutter.add(make_tx("t1"), now=0.0)
    assert len(cutter) == 1
