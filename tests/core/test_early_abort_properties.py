"""Property-based tests for early abort (hypothesis).

:func:`repro.core.early_abort.filter_stale_within_block` implements the
paper's corrected Section-5.2.2 rule: within one batch, for every key
read at more than one version, only the readers of the newest observed
version survive; reads of an absent key (version ``None``) count as
older than any concrete version. These properties pin the rule against
an independent re-statement instead of hand-picked examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.early_abort import filter_stale_within_block
from repro.fabric.rwset import ReadWriteSet
from repro.ledger.state_db import Version

KEYS = [f"k{i}" for i in range(6)]
VERSIONS = [None, Version(1, 0), Version(1, 3), Version(2, 0)]


@st.composite
def random_rwset(draw):
    keys = draw(st.lists(st.sampled_from(KEYS), max_size=4, unique=True))
    result = ReadWriteSet()
    for key in keys:
        result.record_read(key, draw(st.sampled_from(VERSIONS)))
    for key in draw(st.lists(st.sampled_from(KEYS), max_size=2, unique=True)):
        result.record_write(key, f"v-{key}")
    return result


random_batch = st.lists(random_rwset(), max_size=12)


def newest_versions(batch):
    """Independent oracle: max observed version per key, None lowest."""
    newest = {}
    for rwset in batch:
        for key, version in rwset.reads.items():
            rank = (0,) if version is None else (1, version)
            if key not in newest or rank > newest[key]:
                newest[key] = rank
    return newest


@given(random_batch)
@settings(deadline=None)
def test_kept_plus_aborted_partition_the_batch(batch):
    kept, aborted = filter_stale_within_block(batch)
    assert sorted(kept + aborted) == list(range(len(batch)))
    assert kept == sorted(kept)
    assert aborted == sorted(aborted)


@given(random_batch)
@settings(deadline=None)
def test_matches_independent_newest_version_oracle(batch):
    newest = newest_versions(batch)
    kept, aborted = filter_stale_within_block(batch)
    for index, rwset in enumerate(batch):
        stale = any(
            ((0,) if version is None else (1, version)) != newest[key]
            for key, version in rwset.reads.items()
        )
        assert (index in aborted) == stale


@given(random_batch)
@settings(deadline=None)
def test_readers_of_only_newest_versions_survive(batch):
    """A transaction whose every read saw the newest observed version of
    its key is never early-aborted — the corrected rule only ever drops
    the *older*-version reader."""
    newest = newest_versions(batch)
    kept, _aborted = filter_stale_within_block(batch)
    for index, rwset in enumerate(batch):
        reads_newest = all(
            ((0,) if version is None else (1, version)) == newest[key]
            for key, version in rwset.reads.items()
        )
        if reads_newest:
            assert index in kept


@given(random_batch)
@settings(deadline=None)
def test_filter_is_idempotent_on_survivors(batch):
    """Survivors agree on every shared key's version, so filtering them
    again aborts nobody."""
    kept, _aborted = filter_stale_within_block(batch)
    survivors = [batch[i] for i in kept]
    kept_again, aborted_again = filter_stale_within_block(survivors)
    assert aborted_again == []
    assert kept_again == list(range(len(survivors)))


def test_none_read_is_older_than_any_concrete_version():
    """Unit pin of the ordering edge: an absent-key read loses to any
    concrete read of the same key, and ties of absent reads co-exist."""
    absent = ReadWriteSet()
    absent.record_read("k", None)
    concrete = ReadWriteSet()
    concrete.record_read("k", Version(1, 0))
    also_absent = ReadWriteSet()
    also_absent.record_read("k", None)

    kept, aborted = filter_stale_within_block([absent, concrete])
    assert (kept, aborted) == ([1], [0])
    kept, aborted = filter_stale_within_block([absent, also_absent])
    assert (kept, aborted) == ([0, 1], [])
