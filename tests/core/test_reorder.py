"""Unit tests for the reordering mechanism (Algorithm 1)."""

from repro.core.conflict_graph import build_conflict_graph, schedule_is_serializable
from repro.core.reorder import reorder
from repro.graphalgo import is_acyclic
from tests.conftest import count_valid_in_order, rwset


def test_empty_block():
    result = reorder([])
    assert result.schedule == []
    assert result.aborted == []
    assert result.cycles_found == 0


def test_single_transaction():
    result = reorder([rwset(reads=["a"], writes=["b"])])
    assert result.schedule == [0]
    assert result.aborted == []


def test_independent_transactions_all_kept():
    block = [rwset(reads=[f"r{i}"], writes=[f"w{i}"]) for i in range(10)]
    result = reorder(block)
    assert sorted(result.schedule) == list(range(10))
    assert result.aborted == []


def test_simple_conflict_orders_reader_first():
    writer = rwset(writes=["k"])
    reader = rwset(reads=["k"])
    result = reorder([writer, reader])
    assert result.schedule == [1, 0]  # reader commits before writer
    assert result.aborted == []


def test_two_cycle_aborts_one():
    a = rwset(reads=["x"], writes=["y"])
    b = rwset(reads=["y"], writes=["x"])
    result = reorder([a, b])
    assert len(result.aborted) == 1
    assert len(result.schedule) == 1
    assert result.cycles_found == 1


def test_cycle_tie_breaks_to_smaller_index():
    """Both members of a 2-cycle appear in one cycle; T0 is removed."""
    a = rwset(reads=["x"], writes=["y"])
    b = rwset(reads=["y"], writes=["x"])
    result = reorder([a, b])
    assert result.aborted == [0]


def test_table1_arrival_order_vs_reordered(table1):
    """Paper Tables 1+2: arrival order commits 1 of 4; reordering all 4."""
    arrival_valid = count_valid_in_order(table1, [0, 1, 2, 3])
    assert arrival_valid == 1
    result = reorder(table1)
    assert result.aborted == []
    assert count_valid_in_order(table1, result.schedule) == 4
    # T1 (index 0), the writer of k1, must commit after all its readers.
    assert result.schedule[-1] == 0


def test_table2_order_is_valid(table1):
    """The paper's example order T4 => T2 => T3 => T1 commits all four."""
    assert count_valid_in_order(table1, [3, 1, 2, 0]) == 4


def test_paper_example_schedule(table3):
    """The worked example of Section 5.1.1: T0 and T2 aborted, then
    the final schedule is T5 => T1 => T3 => T4."""
    result = reorder(table3)
    assert result.aborted == [0, 2]
    assert result.schedule == [5, 1, 3, 4]
    assert result.cycles_found == 3


def test_paper_example_schedule_is_serializable(table3):
    result = reorder(table3)
    assert schedule_is_serializable(table3, result.schedule)
    survivors = [table3[i] for i in result.schedule]
    assert is_acyclic(build_conflict_graph(survivors))


def test_schedule_respects_every_edge():
    block = [
        rwset(reads=["a"], writes=["b"]),
        rwset(reads=["b"], writes=["c"]),
        rwset(reads=["c"], writes=["d"]),
    ]
    result = reorder(block)
    # Chain of conflicts 0<-1<-2 in commit terms: 2 writes d (no reader),
    # edges are 1->0 (1 writes b read by... wait 0 reads a, writes b;
    # 1 reads b). Edge 0 -> 1 (0 writes b, 1 reads b), 1 -> 2.
    assert result.aborted == []
    assert schedule_is_serializable(block, result.schedule)
    assert result.schedule.index(1) < result.schedule.index(0)
    assert result.schedule.index(2) < result.schedule.index(1)


def test_blank_transactions_never_aborted():
    block = [rwset() for _ in range(5)]
    result = reorder(block)
    assert len(result.schedule) == 5
    assert result.aborted == []


def test_elapsed_time_recorded():
    result = reorder([rwset(reads=["a"]) for _ in range(50)])
    assert result.elapsed_seconds >= 0


def test_num_kept_property():
    a = rwset(reads=["x"], writes=["y"])
    b = rwset(reads=["y"], writes=["x"])
    result = reorder([a, b, rwset()])
    assert result.num_kept == 2


def test_three_cycle_aborts_one():
    block = [
        rwset(reads=["a"], writes=["b"]),
        rwset(reads=["b"], writes=["c"]),
        rwset(reads=["c"], writes=["a"]),
    ]
    result = reorder(block)
    assert len(result.aborted) == 1
    assert schedule_is_serializable(block, result.schedule)


def test_hub_transaction_aborted_preferentially():
    """A tx in many cycles should be the greedy victim."""
    hub = rwset(reads=["a", "b", "c"], writes=["x"])
    spokes = [
        rwset(reads=["x"], writes=["a"]),
        rwset(reads=["x"], writes=["b"]),
        rwset(reads=["x"], writes=["c"]),
    ]
    result = reorder([hub] + spokes)
    assert result.aborted == [0]
    assert sorted(result.schedule) == [1, 2, 3]


def test_max_cycles_cap_still_serializable():
    """Even with a tiny cycle cap the output must be serializable."""
    block = []
    for i in range(12):
        block.append(rwset(reads=[f"k{i}"], writes=[f"k{(i + 1) % 12}"]))
    # Add cross edges to make many cycles.
    block.append(rwset(reads=["k0", "k3", "k6"], writes=["k1", "k4", "k7"]))
    result = reorder(block, max_cycles=1)
    assert schedule_is_serializable(block, result.schedule)


def test_reordering_beats_arrival_order_on_shifted_pattern():
    """Appendix B.1 pattern: writers before readers in arrival order."""
    n = 32
    writers = [rwset(writes=[f"k{i}"]) for i in range(n)]
    readers = [rwset(reads=[f"k{i}"]) for i in range(n)]
    block = writers + readers  # worst arrival order
    arrival_valid = count_valid_in_order(block, list(range(2 * n)))
    assert arrival_valid == n  # every reader is stale
    result = reorder(block)
    assert result.aborted == []
    assert count_valid_in_order(block, result.schedule) == 2 * n


def test_deterministic_output():
    block = [
        rwset(reads=["a", "b"], writes=["c"]),
        rwset(reads=["c"], writes=["a"]),
        rwset(reads=["c", "a"], writes=["b"]),
        rwset(reads=["b"], writes=["d"]),
    ]
    first = reorder(block)
    second = reorder(block)
    assert first.schedule == second.schedule
    assert first.aborted == second.aborted


def test_paper_table4_cycle_membership(table3):
    """Table 4: per-transaction cycle participation counts —
    T0:2, T1:1, T2:1, T3:2, T4:1, T5:0."""
    from collections import Counter

    from repro.core.conflict_graph import build_conflict_graph
    from repro.graphalgo import simple_cycles, strongly_connected_components

    graph = build_conflict_graph(table3)
    membership = Counter()
    for component in strongly_connected_components(graph):
        if len(component) < 2:
            continue
        for cycle in simple_cycles(graph.subgraph(component)):
            for tx in cycle:
                membership[tx] += 1
    assert dict(membership) == {0: 2, 1: 1, 2: 1, 3: 2, 4: 1}
    assert membership[5] == 0


def test_wall_clock_excluded_from_result_equality():
    """The wall-clock channel: two runs of the same block measure
    different ``elapsed_seconds`` but their results must compare equal —
    the field is observability, not part of the deterministic outcome."""
    block = [
        rwset(reads=["a"], writes=["b"]),
        rwset(reads=["b"], writes=["a"]),
        rwset(reads=["c"], writes=["c2"]),
    ]
    first = reorder(block)
    second = reorder(block)
    assert first == second
    # Both runs did measure a (non-negative, typically distinct) wall clock.
    assert first.elapsed_seconds >= 0.0
    assert second.elapsed_seconds >= 0.0


def test_reorder_measures_wall_clock():
    block = [rwset(reads=[f"r{i}"], writes=[f"w{i}"]) for i in range(50)]
    result = reorder(block)
    assert result.elapsed_seconds > 0.0
