"""Unit tests for conflict-graph construction."""

from repro.core.conflict_graph import (
    KeyUniverse,
    build_conflict_graph,
    rwset_bitvectors,
    schedule_is_serializable,
)
from tests.conftest import rwset


def test_key_universe_assigns_stable_positions():
    universe = KeyUniverse()
    assert universe.position("a") == 0
    assert universe.position("b") == 1
    assert universe.position("a") == 0
    assert len(universe) == 2


def test_key_universe_bitvector():
    universe = KeyUniverse()
    vector = universe.bitvector(["a", "b", "d"])
    universe.position("c")  # c gets position 2... after d? order: a=0,b=1,d=2,c=3
    assert vector == 0b111  # a,b,d occupy the first three positions
    assert universe.bitvector(["c"]) == 0b1000


def test_bitvectors_match_table3(table3):
    """Row T0 of Table 3 reads K0,K1 and writes K2."""
    reads, writes = rwset_bitvectors(table3)
    # The universe assigns positions in first-seen order across rwsets:
    # T0 reads K0,K1 -> bits 0,1; T0 writes K2 -> next bit when seen.
    assert reads[0] & writes[0] == 0
    assert reads[5] == 0  # T5 reads nothing
    assert bin(writes[4]).count("1") == 3  # T4 writes three keys


def test_no_conflict_no_edges():
    graph = build_conflict_graph(
        [rwset(reads=["a"], writes=["b"]), rwset(reads=["c"], writes=["d"])]
    )
    assert graph.num_edges() == 0


def test_write_read_conflict_creates_edge():
    writer = rwset(writes=["k"])
    reader = rwset(reads=["k"])
    graph = build_conflict_graph([writer, reader])
    assert graph.has_edge(0, 1)  # writer -> reader
    assert not graph.has_edge(1, 0)


def test_self_conflict_excluded():
    """A transaction reading and writing the same key has no self-edge."""
    graph = build_conflict_graph([rwset(reads=["k"], writes=["k"])])
    assert graph.num_edges() == 0


def test_mutual_conflict_creates_two_cycle():
    a = rwset(reads=["x"], writes=["y"])
    b = rwset(reads=["y"], writes=["x"])
    graph = build_conflict_graph([a, b])
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 0)


def test_write_write_is_not_a_conflict():
    """Only read-write conflicts matter under Fabric's validation rule."""
    graph = build_conflict_graph([rwset(writes=["k"]), rwset(writes=["k"])])
    assert graph.num_edges() == 0


def test_read_read_is_not_a_conflict():
    graph = build_conflict_graph([rwset(reads=["k"]), rwset(reads=["k"])])
    assert graph.num_edges() == 0


def test_paper_figure3_edges(table3):
    """Exact edge set of the conflict graph in Figure 3."""
    graph = build_conflict_graph(table3)
    expected = {
        (0, 3),  # T0 writes K2, T3 reads K2
        (1, 0),  # T1 writes K0, T0 reads K0
        (2, 1),  # T2 writes K3, T1 reads K3
        (2, 4),  # T2 writes K9, T4 reads K9
        (3, 0),  # T3 writes K1, T0 reads K1
        (3, 1),  # T3 writes K4, T1 reads K4
        (4, 1),  # T4 writes K5, T1 reads K5
        (4, 2),  # T4 writes K6, T2 reads K6
        (4, 3),  # T4 writes K8, T3 reads K8
        (5, 2),  # T5 writes K7, T2 reads K7
    }
    assert set(graph.edges()) == expected


def test_empty_input():
    graph = build_conflict_graph([])
    assert len(graph) == 0


def test_schedule_is_serializable_accepts_good_order():
    writer = rwset(writes=["k"])
    reader = rwset(reads=["k"])
    assert schedule_is_serializable([writer, reader], [1, 0])
    assert not schedule_is_serializable([writer, reader], [0, 1])


def test_schedule_is_serializable_partial_schedule():
    """Aborted transactions are simply absent from the schedule."""
    a = rwset(reads=["x"], writes=["y"])
    b = rwset(reads=["y"], writes=["x"])
    # A cycle: no full schedule works, but either one alone does.
    assert schedule_is_serializable([a, b], [0])
    assert schedule_is_serializable([a, b], [1])
    assert not schedule_is_serializable([a, b], [0, 1])
    assert not schedule_is_serializable([a, b], [1, 0])


def test_edge_orientation_writer_to_reader():
    """Pin the documented orientation end to end on the smallest case:
    T0 writes k, T1 reads k. The edge is 0 -> 1 (writer -> reader), and a
    serializable schedule commits the reader *before* the writer — the
    docstring of :func:`build_conflict_graph` and the check in
    :func:`schedule_is_serializable` agree on this."""
    block = [rwset(writes=["k"]), rwset(reads=["k"])]
    graph = build_conflict_graph(block)
    assert list(graph.edges()) == [(0, 1)]
    assert schedule_is_serializable(block, [1, 0])
    assert not schedule_is_serializable(block, [0, 1])
