"""Unit tests for the baseline schedulers."""

import pytest

from repro.core.baselines import arrival_order, bcc_reorder, optimal_reorder
from repro.core.conflict_graph import schedule_is_serializable
from repro.core.reorder import reorder
from repro.testing import count_valid_in_order, paper_table1_rwsets, rwset


def test_arrival_order_identity():
    assert arrival_order(4) == [0, 1, 2, 3]
    assert arrival_order(0) == []


# -- optimal ------------------------------------------------------------------------


def test_optimal_keeps_everything_when_acyclic():
    block = [rwset(reads=["a"], writes=["b"]), rwset(reads=["b"], writes=["c"])]
    result = optimal_reorder(block)
    assert sorted(result.schedule) == [0, 1]
    assert result.aborted == []
    assert schedule_is_serializable(block, result.schedule)


def test_optimal_breaks_cycle_minimally():
    a = rwset(reads=["x"], writes=["y"])
    b = rwset(reads=["y"], writes=["x"])
    result = optimal_reorder([a, b])
    assert len(result.aborted) == 1
    assert schedule_is_serializable([a, b], result.schedule)


def test_optimal_on_paper_table1():
    block = paper_table1_rwsets()
    result = optimal_reorder(block)
    assert result.aborted == []
    assert count_valid_in_order(block, result.schedule) == 4


def test_optimal_never_below_greedy():
    blocks = [
        [rwset(reads=["a"], writes=["b"]),
         rwset(reads=["b"], writes=["a"]),
         rwset(reads=["a", "b"], writes=["c"]),
         rwset(reads=["c"], writes=["a"])],
        [rwset(reads=[f"k{i}"], writes=[f"k{(i + 1) % 5}"]) for i in range(5)],
    ]
    for block in blocks:
        greedy = reorder(block)
        optimal = optimal_reorder(block)
        assert len(optimal.schedule) >= len(greedy.schedule)
        assert schedule_is_serializable(block, optimal.schedule)


def test_optimal_beats_greedy_on_clique_counterexample():
    """The clique where greedy loses to arrival order: optimal finds more."""
    block = (
        [rwset(reads=["k0"], writes=["k1"])]
        + [rwset(reads=["k0", "k1"], writes=["k0"]) for _ in range(2)]
        + [rwset(reads=["k0"], writes=["k0"])]
        + [rwset(reads=["k0", "k1"], writes=["k0"]) for _ in range(3)]
    )
    greedy = reorder(block)
    optimal = optimal_reorder(block)
    assert len(optimal.schedule) > len(greedy.schedule)
    assert count_valid_in_order(block, optimal.schedule) == len(optimal.schedule)


def test_optimal_rejects_large_inputs():
    block = [rwset(reads=[f"r{i}"]) for i in range(20)]
    with pytest.raises(ValueError):
        optimal_reorder(block, max_transactions=16)


# -- BCC ----------------------------------------------------------------------------


def test_bcc_no_conflicts_all_commit():
    block = [rwset(reads=[f"r{i}"], writes=[f"w{i}"]) for i in range(4)]
    schedule, aborted = bcc_reorder(block)
    assert sorted(schedule) == [0, 1, 2, 3]
    assert aborted == []


def test_bcc_rescues_movable_reader():
    """A stale reader whose writes clash with nothing moves to the front."""
    writer = rwset(reads=["a"], writes=["k"])
    stale_reader = rwset(reads=["k"], writes=["fresh"])
    schedule, aborted = bcc_reorder([writer, stale_reader])
    assert aborted == []
    assert schedule == [1, 0]  # reader rescued to the front
    assert count_valid_in_order([writer, stale_reader], schedule) == 2


def test_bcc_cannot_rescue_write_clash():
    """If something already committed read what the loser writes, the
    begin-time move would invalidate history — abort."""
    t0 = rwset(reads=["x"], writes=["k"])
    t1 = rwset(reads=["k"], writes=["x"])  # writes x, which t0 read
    schedule, aborted = bcc_reorder([t0, t1])
    assert aborted == [1]
    assert schedule == [0]


def test_bcc_weaker_than_full_reordering_on_paper_example():
    """The paper argues BCC 'wastes a lot of optimization potential'
    because commits may only move to the begin time; Table 1's block
    shows it: full reordering keeps all four, BCC loses transactions."""
    block = paper_table1_rwsets()
    bcc_schedule, bcc_aborted = bcc_reorder(block)
    full = reorder(block)
    assert len(full.schedule) == 4
    assert len(bcc_schedule) < 4
    assert len(bcc_aborted) >= 1


def test_bcc_schedule_validates():
    block = [
        rwset(reads=["a"], writes=["b"]),
        rwset(reads=["b"], writes=["c"]),
        rwset(reads=["c", "a"], writes=["d"]),
        rwset(reads=["d"], writes=["a"]),
    ]
    schedule, aborted = bcc_reorder(block)
    assert count_valid_in_order(block, schedule) == len(schedule)
    assert sorted(schedule + aborted) == [0, 1, 2, 3]


def test_optimal_reorder_measures_wall_clock():
    """Regression: ``optimal_reorder`` used to hardcode
    ``elapsed_seconds=0.0`` instead of measuring through the same
    wall-clock channel as :func:`repro.core.reorder.reorder`."""
    block = [
        rwset(reads=["a"], writes=["b"]),
        rwset(reads=["b"], writes=["a"]),
    ]
    result = optimal_reorder(block)
    assert result.elapsed_seconds > 0.0
    # And the measurement never leaks into result equality.
    assert result == optimal_reorder(block)
